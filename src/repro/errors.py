"""Exception hierarchy for the repro engine.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses are
raised close to the failure site and carry a human-readable message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """A catalog object (table, index) is missing or already exists."""


class SchemaError(ReproError):
    """A schema is malformed or a column reference cannot be resolved."""


class TypeMismatchError(SchemaError):
    """A value or expression has an incompatible data type."""


class StorageError(ReproError):
    """Low-level storage invariant violated (rowids, partitions, blocks)."""


class ConstraintError(ReproError):
    """An approximate-constraint definition or validation failed."""


class ThresholdExceededError(ConstraintError):
    """The discovered exception rate exceeds the configured threshold."""

    def __init__(self, column: str, rate: float, threshold: float):
        self.column = column
        self.rate = rate
        self.threshold = threshold
        super().__init__(
            f"column {column!r}: exception rate {rate:.4f} exceeds "
            f"threshold {threshold:.4f}"
        )


class ExecutionError(ReproError):
    """A physical operator failed during query execution."""


class PlanError(ReproError):
    """A logical plan is invalid or cannot be converted to physical form."""


class PlanInvariantError(PlanError):
    """A physical plan violates a statically checkable invariant.

    Raised by the pre-execution plan verifier
    (:mod:`repro.check.plan_verifier`).  *rule* names the violated rule
    from the catalogue in DESIGN.md §6 (e.g. ``"merge-input-order"``),
    so tests and tools can assert on the exact invariant that failed.
    """

    def __init__(self, rule: str, message: str):
        self.rule = rule
        super().__init__(f"[{rule}] {message}")


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class BindError(SqlError):
    """A parsed SQL statement references unknown objects or is unsupported."""


class WalError(ReproError):
    """The write-ahead log is corrupt or cannot be replayed."""


class ProtocolError(ReproError):
    """A client/server wire frame is malformed or violates the protocol.

    Raised on oversized or truncated frames, payloads that are not a
    JSON object, and requests without a recognised ``op``.
    """


class ConnectionClosedError(ReproError):
    """The server connection closed before (or while) a reply arrived."""


class LockOrderError(ReproError):
    """The runtime sanitizer observed a lock-acquisition order inversion.

    Raised by :class:`repro.check.sanitize.SanitizedLock` when a thread
    acquires lock *second* while holding *first*, but some earlier
    acquisition (recorded in the global order graph) took them the other
    way around — the classic two-thread deadlock shape, surfaced on the
    first inverted acquisition instead of the eventual hang.  Carries
    both acquisition stacks so the report names the two call sites that
    disagree about the order.
    """

    def __init__(
        self,
        first: str,
        second: str,
        current_stack: str,
        prior_stack: str,
    ):
        self.first = first
        self.second = second
        self.current_stack = current_stack
        self.prior_stack = prior_stack
        super().__init__(
            f"lock order inversion: acquiring {second!r} while holding "
            f"{first!r}, but the recorded order graph already has "
            f"{second!r} held while acquiring {first!r}\n"
            f"-- this acquisition ({first!r} -> {second!r}) --\n"
            f"{current_stack}\n"
            f"-- recorded acquisition ({second!r} -> {first!r}) --\n"
            f"{prior_stack}"
        )


class ResourceLeakError(ReproError):
    """A sanitized resource balance did not return to zero.

    Raised by :func:`repro.check.sanitize.assert_balanced` when snapshot
    pins, shm segments, or cache accounting are left outstanding at a
    checkpoint the caller declared quiescent (test teardown).  The
    message lists each unbalanced resource with the stack that acquired
    it.
    """
