"""repro — PatchIndex: approximate constraints in self-managing databases.

A full Python reproduction of *PatchIndex — Exploiting Approximate
Constraints in Self-managing Databases* (Klaebe, Sattler, Baumann,
ICDE 2020): a vectorized columnar engine substrate, the PatchIndex
structure for nearly unique / nearly sorted columns, constraint
discovery, the PatchedScan, and the distinct / sort / join query
rewrites, plus a self-management advisor, incremental maintenance and a
rewrite cost model.

Quick start::

    from repro import Database

    db = Database()
    db.sql("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.sql("INSERT INTO t VALUES (1, 10), (2, 20), (2, 30)")
    db.sql("CREATE PATCHINDEX pi_k ON t(k) TYPE UNIQUE")
    print(db.sql("SELECT COUNT(DISTINCT k) AS n FROM t").pretty())
"""

from repro.errors import (
    ReproError,
    CatalogError,
    SchemaError,
    ConstraintError,
    ThresholdExceededError,
    ExecutionError,
    PlanError,
    SqlError,
)
from repro.types import DataType
from repro.storage import (
    Field,
    Schema,
    ColumnVector,
    Table,
    Catalog,
    Database,
    WriteAheadLog,
)
from repro.core import (
    PatchIndex,
    PatchIndexMode,
    PatchSet,
    IdentifierPatches,
    BitmapPatches,
    ConstraintKind,
    ConstraintAdvisor,
    CostModel,
    discover_nuc_patches,
    discover_nsc_patches,
    longest_sorted_subsequence_indices,
)
from repro.exec.result import QueryResult

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "CatalogError",
    "SchemaError",
    "ConstraintError",
    "ThresholdExceededError",
    "ExecutionError",
    "PlanError",
    "SqlError",
    "DataType",
    "Field",
    "Schema",
    "ColumnVector",
    "Table",
    "Catalog",
    "Database",
    "WriteAheadLog",
    "PatchIndex",
    "PatchIndexMode",
    "PatchSet",
    "IdentifierPatches",
    "BitmapPatches",
    "ConstraintKind",
    "ConstraintAdvisor",
    "CostModel",
    "discover_nuc_patches",
    "discover_nsc_patches",
    "longest_sorted_subsequence_indices",
    "QueryResult",
]
