"""repro — PatchIndex: approximate constraints in self-managing databases.

A full Python reproduction of *PatchIndex — Exploiting Approximate
Constraints in Self-managing Databases* (Klaebe, Sattler, Baumann,
ICDE 2020): a vectorized columnar engine substrate, the PatchIndex
structure for nearly unique / nearly sorted columns, constraint
discovery, the PatchedScan, and the distinct / sort / join query
rewrites, plus a self-management advisor, incremental maintenance and a
rewrite cost model.

Quick start::

    import repro

    db = repro.connect()
    db.sql("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.sql("INSERT INTO t VALUES (1, 10), (2, 20), (2, 30)")
    db.sql("CREATE PATCHINDEX pi_k ON t(k) TYPE UNIQUE")
    print(db.sql("SELECT COUNT(DISTINCT k) AS n FROM t").pretty())
    print(db.sql("EXPLAIN ANALYZE SELECT DISTINCT k FROM t").text())
"""

import os as _os

from repro.errors import (
    ReproError,
    CatalogError,
    SchemaError,
    ConstraintError,
    ThresholdExceededError,
    ExecutionError,
    PlanError,
    PlanInvariantError,
    SqlError,
)
from repro.types import DataType
from repro.storage import (
    Field,
    Schema,
    ColumnVector,
    Table,
    Catalog,
    Database,
    WriteAheadLog,
)
from repro.core import (
    PatchIndex,
    PatchIndexMode,
    PatchSet,
    IdentifierPatches,
    BitmapPatches,
    ConstraintKind,
    ConstraintAdvisor,
    CostModel,
    discover_nuc_patches,
    discover_nsc_patches,
    longest_sorted_subsequence_indices,
)
from repro.exec.result import QueryResult
from repro.obs import CardinalityFeedback, MetricsRegistry, QueryProfile

__version__ = "1.0.0"


def connect(
    wal_path: "str | _os.PathLike | None" = None,
    *,
    path: "str | _os.PathLike | None" = None,
    parallelism: int | None = None,
    mmap: bool = False,
    sync: bool = True,
    cache_bytes: int | None = None,
    encoding: str = "auto",
) -> Database:
    """Open a database instance — the canonical entry point.

    *path* opens (or creates) a **durable** database directory: row data
    is WAL-logged, ``CHECKPOINT`` flushes columnar segment files, and
    ``repro.connect(path=...)`` on the same directory recovers tables
    and rebuilds PatchIndexes from data (paper §V).  ``mmap=True``
    memory-maps checkpointed segment payloads instead of loading them
    eagerly.  *cache_bytes* bounds the shared decoded-block cache
    (default ``REPRO_CACHE_BYTES``, else 64 MiB; ``0`` disables it) and
    *encoding* selects the checkpoint segment encoding (``"auto"`` =
    cost-based per-block picker, ``"raw"`` = uncompressed).

    *wal_path* is the historical metadata-only WAL mode
    (``Database.recover`` replays it with user-supplied data loaders);
    *parallelism* sets the instance-default degree of parallelism
    (``None`` resolves ``REPRO_THREADS`` / the CPU count, ``1`` forces
    serial execution).
    """
    return Database(
        wal_path,
        path=path,
        parallelism=parallelism,
        mmap=mmap,
        sync=sync,
        cache_bytes=cache_bytes,
        encoding=encoding,
    )


__all__ = [
    "__version__",
    "connect",
    "ReproError",
    "CatalogError",
    "SchemaError",
    "ConstraintError",
    "ThresholdExceededError",
    "ExecutionError",
    "PlanError",
    "PlanInvariantError",
    "SqlError",
    "DataType",
    "Field",
    "Schema",
    "ColumnVector",
    "Table",
    "Catalog",
    "Database",
    "WriteAheadLog",
    "PatchIndex",
    "PatchIndexMode",
    "PatchSet",
    "IdentifierPatches",
    "BitmapPatches",
    "ConstraintKind",
    "ConstraintAdvisor",
    "CostModel",
    "discover_nuc_patches",
    "discover_nsc_patches",
    "longest_sorted_subsequence_indices",
    "QueryResult",
    "QueryProfile",
    "MetricsRegistry",
    "CardinalityFeedback",
]
