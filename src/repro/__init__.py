"""repro — PatchIndex: approximate constraints in self-managing databases.

A full Python reproduction of *PatchIndex — Exploiting Approximate
Constraints in Self-managing Databases* (Klaebe, Sattler, Baumann,
ICDE 2020): a vectorized columnar engine substrate, the PatchIndex
structure for nearly unique / nearly sorted columns, constraint
discovery, the PatchedScan, and the distinct / sort / join query
rewrites, plus a self-management advisor, incremental maintenance and a
rewrite cost model.

Quick start::

    import repro

    db = repro.connect()
    db.sql("CREATE TABLE t (k BIGINT, v BIGINT)")
    db.sql("INSERT INTO t VALUES (1, 10), (2, 20), (2, 30)")
    db.sql("CREATE PATCHINDEX pi_k ON t(k) TYPE UNIQUE")
    print(db.sql("SELECT COUNT(DISTINCT k) AS n FROM t").pretty())
    print(db.sql("EXPLAIN ANALYZE SELECT DISTINCT k FROM t").text())
"""

import os as _os

from repro.errors import (
    ReproError,
    CatalogError,
    SchemaError,
    ConstraintError,
    ThresholdExceededError,
    ExecutionError,
    PlanError,
    PlanInvariantError,
    SqlError,
    ProtocolError,
    ConnectionClosedError,
)
from repro.types import DataType
from repro.storage import (
    Field,
    Schema,
    ColumnVector,
    Table,
    Catalog,
    Database,
    WriteAheadLog,
)
from repro.core import (
    PatchIndex,
    PatchIndexMode,
    PatchSet,
    IdentifierPatches,
    BitmapPatches,
    ConstraintKind,
    ConstraintAdvisor,
    CostModel,
    discover_nuc_patches,
    discover_nsc_patches,
    longest_sorted_subsequence_indices,
)
from repro.exec.result import QueryResult
from repro.obs import CardinalityFeedback, MetricsRegistry, QueryProfile

__version__ = "1.0.0"


#: WAL-file suffixes the legacy ``connect(wal_path)`` positional used;
#: part of the deprecation heuristic below.
_LEGACY_WAL_SUFFIXES = (".wal", ".jsonl", ".log")


def connect(
    target: "str | _os.PathLike | None" = None,
    *,
    path: "str | _os.PathLike | None" = None,
    parallelism: int | None = None,
    mmap: bool = False,
    sync: bool = True,
    cache_bytes: int | None = None,
    encoding: str = "auto",
    rebuild_threshold: float | None = None,
    timeout: float | None = None,
):
    """Open a database — local or remote — from one *target*.

    The single positional selects the mode:

    - ``repro.connect()`` — a fresh **in-memory** database;
    - ``repro.connect("/data/dir")`` — a **durable** database directory
      (created if missing): row data is WAL-logged, ``CHECKPOINT``
      flushes columnar segment files, and reconnecting to the same
      directory recovers tables and rebuilds PatchIndexes from data
      (paper §V);
    - ``repro.connect("repro://host:port")`` — a **network client**
      (:class:`repro.serve.ServerClient`) speaking to a running
      ``python -m repro serve`` instance; it mirrors the ``Database``
      query surface, and *timeout* bounds the socket connect/replies.

    Durable knobs: ``mmap=True`` memory-maps checkpointed segment
    payloads instead of loading them eagerly; *cache_bytes* bounds the
    shared decoded-block cache (default ``REPRO_CACHE_BYTES``, else
    64 MiB; ``0`` disables it); *encoding* selects the checkpoint
    segment encoding (``"auto"`` = cost-based per-block picker,
    ``"raw"`` = uncompressed); ``sync=False`` skips fsync (benchmarks
    only).  *rebuild_threshold* sets the drift ratio past which a
    PatchIndex is scheduled for a background rebuild (default
    ``REPRO_REBUILD_THRESHOLD``, else 0.02; local databases only — a
    server configures its own).  *parallelism* sets the
    instance-default degree of
    parallelism (``None`` resolves ``REPRO_THREADS`` / the CPU count,
    ``1`` forces serial execution); for a remote target it is applied
    to the server-side session.

    .. deprecated:: 1.1
        Passing a metadata-only WAL *file* path positionally
        (``connect("x.wal")``) is deprecated; construct
        ``Database(wal_path)`` directly for that mode.  The positional
        now means a durable directory (or a ``repro://`` URI).
    """
    if target is not None and path is not None:
        raise ReproError(
            "pass either a connect target positionally or path=, not both"
        )
    if target is not None:
        text = _os.fspath(target) if not isinstance(target, str) else target
        if text.startswith("repro://"):
            if (
                mmap
                or not sync
                or cache_bytes is not None
                or encoding != "auto"
                or rebuild_threshold is not None
            ):
                raise ReproError(
                    "mmap/sync/cache_bytes/encoding/rebuild_threshold are "
                    "storage knobs of the server's database, not the client"
                )
            from repro.serve import ServerClient

            client = ServerClient.from_uri(text, timeout=timeout)
            if parallelism is not None:
                client.parallelism = parallelism
            return client
        looks_like_wal_file = _os.path.isfile(text) or text.endswith(
            _LEGACY_WAL_SUFFIXES
        )
        if looks_like_wal_file:
            import warnings

            warnings.warn(
                "connect(<wal file>) is deprecated: the positional now "
                "names a durable directory or repro:// URI; use "
                "Database(wal_path) for a metadata-only WAL file",
                DeprecationWarning,
                stacklevel=2,
            )
            return Database(target, parallelism=parallelism)
        path = target
    return Database(
        path=path,
        parallelism=parallelism,
        mmap=mmap,
        sync=sync,
        cache_bytes=cache_bytes,
        encoding=encoding,
        rebuild_threshold=rebuild_threshold,
    )


__all__ = [
    "__version__",
    "connect",
    "ReproError",
    "CatalogError",
    "SchemaError",
    "ConstraintError",
    "ThresholdExceededError",
    "ExecutionError",
    "PlanError",
    "PlanInvariantError",
    "SqlError",
    "ProtocolError",
    "ConnectionClosedError",
    "DataType",
    "Field",
    "Schema",
    "ColumnVector",
    "Table",
    "Catalog",
    "Database",
    "WriteAheadLog",
    "PatchIndex",
    "PatchIndexMode",
    "PatchSet",
    "IdentifierPatches",
    "BitmapPatches",
    "ConstraintKind",
    "ConstraintAdvisor",
    "CostModel",
    "discover_nuc_patches",
    "discover_nsc_patches",
    "longest_sorted_subsequence_indices",
    "QueryResult",
    "QueryProfile",
    "MetricsRegistry",
    "CardinalityFeedback",
]
