"""Per-query profiles: instrumented operator trees (EXPLAIN ANALYZE).

Profiling is strictly opt-in: :func:`attach_profile` walks a physical
operator tree *after planning* and swaps each operator's ``open`` /
``next_batch`` for timing wrappers (instance attributes shadowing the
class methods), so an unprofiled query executes the exact same bytecode
as before this module existed — the near-zero-disabled-overhead
property the benchmark ``benchmarks/bench_profile_overhead.py`` checks.

Each operator gets one :class:`ProfileNode` recording rows out, batches
produced, and inclusive wall time (self time is derived at render
time).  Three operator kinds carry extra detail:

- ``PatchSelect`` — rows in, patch hits, mode, index name and physical
  design (via the operator's native opt-in counters);
- ``TableScan`` — table name and base row count, which the cardinality
  feedback loop (:mod:`repro.obs.feedback`) turns into measured scan
  selectivities for the advisor;
- the parallel operators (``Exchange`` and the blocking terminals) —
  planned vs actually-used degree of parallelism, morsel counts, queue
  wait and per-worker busy time, collected by a :class:`ParallelObs`
  hook.  Worker-side fragments are instrumented per morsel and merged
  position-wise into the template subtree, so EXPLAIN ANALYZE shows
  real per-operator actuals inside parallel pipelines too.
"""

from __future__ import annotations

import json
import threading
import time
from typing import TYPE_CHECKING, Callable, Iterator

from repro.exec.operators.base import Operator
from repro.exec.operators.patch_select import PatchSelect
from repro.exec.operators.scan import TableScan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.parallel.morsels import Morsel
    from repro.exec.result import QueryResult


class ProfileNode:
    """Execution statistics of one operator in a profiled query."""

    __slots__ = (
        "label",
        "op_type",
        "estimated_rows",
        "rows",
        "batches",
        "seconds",
        "details",
        "children",
        "_operator",
    )

    def __init__(self, label: str, op_type: str, estimated_rows: int | None):
        self.label = label
        self.op_type = op_type
        self.estimated_rows = estimated_rows
        self.rows = 0
        self.batches = 0
        self.seconds = 0.0
        self.details: dict[str, object] = {}
        self.children: list["ProfileNode"] = []
        self._operator: Operator | None = None

    @property
    def self_seconds(self) -> float:
        """Wall time excluding instrumented children (clamped at 0)."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def walk(self) -> Iterator["ProfileNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> list[str]:
        estimate = (
            f" est~{self.estimated_rows}"
            if self.estimated_rows is not None
            else ""
        )
        line = (
            "  " * indent
            + f"{self.label}  [actual rows={self.rows} "
            + f"batches={self.batches} time={self.seconds * 1e3:.3f}ms"
            + estimate
            + "]"
        )
        if self.details:
            detail = " ".join(
                f"{key}={_fmt_detail(value)}"
                for key, value in sorted(self.details.items())
            )
            line += f" {{{detail}}}"
        lines = [line]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def to_dict(self) -> dict:
        out: dict[str, object] = {
            "label": self.label,
            "op": self.op_type,
            "rows": self.rows,
            "batches": self.batches,
            "seconds": self.seconds,
        }
        if self.estimated_rows is not None:
            out["estimated_rows"] = self.estimated_rows
        if self.details:
            out["details"] = dict(self.details)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProfileNode({self.op_type}, rows={self.rows})"


def _fmt_detail(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class QueryProfile:
    """The profile tree of one executed query."""

    def __init__(self, root: ProfileNode, query: str | None = None):
        self.root = root
        self.query = query
        self.total_seconds = 0.0
        self._parallel_hooks: list[tuple[ProfileNode, "ParallelObs"]] = []
        self._finished = False

    # -- lifecycle ---------------------------------------------------------

    def finish(self, total_seconds: float) -> None:
        """Pull deferred operator counters and merge worker fragments."""
        if self._finished:
            return
        self._finished = True
        self.total_seconds = total_seconds
        for node, obs in self._parallel_hooks:
            obs.finalize(node)
        _finalize_tree(self.root)
        # Cache hit ratios derive from the *merged* raw counters — worker
        # fragments sum position-wise into the template scan node first,
        # so the ratio must never be summed itself.
        for node in self.root.walk():
            hits = node.details.get("cache_hits")
            misses = node.details.get("cache_misses")
            if isinstance(hits, int) and isinstance(misses, int):
                lookups = hits + misses
                if lookups:
                    node.details["cache_hit_ratio"] = round(hits / lookups, 4)

    # -- accessors ---------------------------------------------------------

    def find(self, op_type: str) -> list[ProfileNode]:
        """All nodes of one operator type (e.g. ``"PatchSelect"``)."""
        return [node for node in self.root.walk() if node.op_type == op_type]

    def scan_observations(self) -> list[tuple[str, int, int]]:
        """Measured ``(table, base_rows, post-filter rows)`` per scan.

        The observed rows are taken at the top of the Filter/PatchSelect
        chain directly above each scan — the measured selectivity the
        advisor's cost estimates can use instead of a fixed constant.
        """
        observations: list[tuple[str, int, int]] = []

        def visit(node: ProfileNode, ancestors: list[ProfileNode]) -> None:
            if node.op_type == "TableScan" and "table" in node.details:
                observed = node.rows
                for ancestor in reversed(ancestors):
                    if ancestor.op_type in ("Filter", "PatchSelect"):
                        observed = ancestor.rows
                    else:
                        break
                observations.append(
                    (
                        str(node.details["table"]),
                        int(node.details.get("table_rows", 0)),
                        observed,
                    )
                )
            ancestors.append(node)
            for child in node.children:
                visit(child, ancestors)
            ancestors.pop()

        visit(self.root, [])
        return observations

    # -- rendering ---------------------------------------------------------

    def to_text(self) -> str:
        header = f"== query profile ==  (total {self.total_seconds * 1e3:.3f}ms)"
        return "\n".join([header, *self.root.render()])

    def to_dict(self) -> dict:
        out: dict[str, object] = {
            "total_seconds": self.total_seconds,
            "plan": self.root.to_dict(),
        }
        if self.query is not None:
            out["query"] = self.query
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryProfile(total={self.total_seconds:.6f}s)"


class ParallelObs:
    """Worker-pool observation hook for one parallel operator.

    The profiler installs an instance as the operator's ``obs``
    attribute; the operator's ``open`` then routes every morsel through
    :meth:`submit`, which measures queue wait (submit → start) and
    per-worker busy time.  :meth:`wrap_factory` additionally instruments
    each worker-built fragment tree so per-operator actuals inside the
    fragments survive into the profile (merged by :meth:`finalize`).
    """

    def __init__(self, parallelism: int, morsel_count: int):
        self.parallelism = parallelism
        self.morsel_count = morsel_count
        self._lock = threading.Lock()
        self.morsels_run = 0
        self.queue_wait_seconds = 0.0
        self.worker_busy_seconds: dict[str, float] = {}
        self.fragment_roots: list[ProfileNode] = []
        #: Shared-memory bytes shipped by process-backend tasks; > 0
        #: remote tasks also marks the profile ``backend=process``.
        self.shm_bytes = 0
        self.remote_tasks = 0

    def submit(self, pool, factory: Callable, morsel: "Morsel"):
        """Submit one morsel task with wait/busy accounting."""
        from repro.exec.parallel.exchange import run_fragment

        submitted = time.perf_counter()

        def task():
            started = time.perf_counter()
            try:
                return run_fragment(factory, morsel)
            finally:
                ended = time.perf_counter()
                worker = threading.current_thread().name
                with self._lock:
                    self.morsels_run += 1
                    self.queue_wait_seconds += started - submitted
                    self.worker_busy_seconds[worker] = (
                        self.worker_busy_seconds.get(worker, 0.0)
                        + (ended - started)
                    )

        return pool.submit(task)

    def record_remote(
        self, pid: int, busy_s: float, queue_wait_s: float, shm_bytes: int
    ) -> None:
        """Account one process-backend task gathered from worker *pid*.

        Called by the transport's gather handle on the coordinator
        thread — remote fragments cannot be instrumented in place (their
        operators live in another process), so the worker ships busy
        time and transport bytes back inside the result payload.
        """
        with self._lock:
            self.morsels_run += 1
            self.remote_tasks += 1
            self.queue_wait_seconds += queue_wait_s
            worker = f"proc-{pid}"
            self.worker_busy_seconds[worker] = (
                self.worker_busy_seconds.get(worker, 0.0) + busy_s
            )
            self.shm_bytes += shm_bytes

    def wrap_factory(self, factory: Callable) -> Callable:
        """Instrument every fragment the factory builds."""

        def build(ranges):
            fragment = factory(ranges)
            root = _instrument_tree(fragment)
            with self._lock:
                self.fragment_roots.append(root)
            return fragment

        return build

    def finalize(self, node: ProfileNode) -> None:
        """Write pool metrics into *node* and merge fragment actuals.

        Usually called after the gather completed, but a profile can be
        rendered while late morsel tasks are still accounting — so the
        shared counters are snapshotted under the same lock
        :meth:`submit` and :meth:`wrap_factory` write them under.
        """
        with self._lock:
            dop_used = len(self.worker_busy_seconds)
            morsels_run = self.morsels_run
            queue_wait = self.queue_wait_seconds
            busy = sum(self.worker_busy_seconds.values())
            roots = list(self.fragment_roots)
            remote_tasks = self.remote_tasks
            shm_bytes = self.shm_bytes
        node.details["dop"] = self.parallelism
        node.details["dop_used"] = dop_used
        node.details["morsels"] = self.morsel_count
        node.details["morsels_run"] = morsels_run
        node.details["queue_wait_s"] = round(queue_wait, 6)
        node.details["busy_s"] = round(busy, 6)
        if remote_tasks:
            node.details["backend"] = "process"
            node.details["shm_bytes"] = shm_bytes
        if node.children:
            template = node.children[0]
            for root in roots:
                _finalize_tree(root)
                _merge_nodes(template, root)


# -- instrumentation -----------------------------------------------------------


def attach_profile(operator: Operator, query: str | None = None) -> QueryProfile:
    """Instrument a (not yet opened) operator tree for profiling."""
    profile = QueryProfile(_instrument_tree(None), query)
    profile.root = _instrument_tree(operator, profile)
    return profile


def profile_collect(
    operator: Operator, query: str | None = None
) -> tuple["QueryResult", QueryProfile]:
    """Execute an operator tree with profiling; return result + profile."""
    from repro.exec.result import collect

    profile = attach_profile(operator, query)
    started = time.perf_counter()
    result = collect(operator)
    profile.finish(time.perf_counter() - started)
    return result, profile


def _instrument_tree(
    operator: Operator | None, profile: QueryProfile | None = None
) -> ProfileNode:
    if operator is None:  # placeholder root used during construction
        return ProfileNode("<empty>", "Empty", None)
    node = ProfileNode(
        operator.label(),
        type(operator).__name__,
        getattr(operator, "estimated_rows", None),
    )
    node._operator = operator

    if isinstance(operator, PatchSelect):
        operator.enable_stats()
        node.details["mode"] = operator.mode.value
        node.details["index"] = operator.index.name
        node.details["design"] = operator.index.design
        # Maintenance drift as of execution: how far conservative
        # incremental maintenance has grown this index's patch sets
        # past minimal, and whether a background rebuild is queued.
        # Rendered as a string — numeric details sum across parallel
        # fragments in _merge_nodes, and drift is a property, not a count.
        node.details["drift_rate"] = f"{operator.index.drift_rate():.4f}"
        if getattr(operator.index, "rebuild_pending", False):
            node.details["rebuild_pending"] = True
    elif isinstance(operator, TableScan):
        node.details["table"] = operator.table.name
        node.details["table_rows"] = operator.table.row_count
    elif hasattr(operator, "obs") and hasattr(operator, "fragment_factory"):
        obs = ParallelObs(
            getattr(operator, "parallelism", 1),
            len(getattr(operator, "morsels", ())),
        )
        operator.obs = obs
        operator.fragment_factory = obs.wrap_factory(operator.fragment_factory)
        if profile is not None:
            profile._parallel_hooks.append((node, obs))

    original_next = operator.next_batch
    original_open = operator.open
    perf_counter = time.perf_counter

    def timed_next_batch():
        started = perf_counter()
        batch = original_next()
        node.seconds += perf_counter() - started
        if batch is not None:
            node.batches += 1
            node.rows += len(batch)
        return batch

    def timed_open():
        started = perf_counter()
        original_open()
        node.seconds += perf_counter() - started

    operator.next_batch = timed_next_batch  # type: ignore[method-assign]
    operator.open = timed_open  # type: ignore[method-assign]

    for child in operator.children():
        node.children.append(_instrument_tree(child, profile))
    return node


def _finalize_tree(root: ProfileNode) -> None:
    """Pull deferred native counters (PatchSelect) into the nodes."""
    for node in root.walk():
        operator = node._operator
        if isinstance(operator, PatchSelect) and operator.stats is not None:
            node.details["rows_in"] = operator.stats.rows_in
            node.details["patch_hits"] = operator.stats.patch_hits
        elif isinstance(operator, TableScan):
            io = operator.io
            if io.blocks_decoded or io.cache_hits or io.bytes_decoded:
                # Accumulate raw counts: a parallel template node may be
                # finalized after fragment actuals were merged into it.
                for key, value in (
                    ("blocks_decoded", io.blocks_decoded),
                    ("cache_hits", io.cache_hits),
                    ("cache_misses", io.cache_misses),
                    ("bytes_read", io.bytes_read),
                    ("bytes_decoded", io.bytes_decoded),
                ):
                    node.details[key] = node.details.get(key, 0) + value
        node._operator = None  # release the operator tree


def _merge_nodes(target: ProfileNode, source: ProfileNode) -> None:
    """Accumulate one fragment's actuals into the template subtree.

    Fragments are built by the same factory as the template, so the
    trees are structurally identical; counters and numeric details sum
    position-wise.
    """
    target.rows += source.rows
    target.batches += source.batches
    target.seconds += source.seconds
    for key, value in source.details.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            existing = target.details.get(key, 0)
            if isinstance(existing, (int, float)) and not isinstance(
                existing, bool
            ):
                target.details[key] = existing + value
                continue
        target.details.setdefault(key, value)
    for target_child, source_child in zip(target.children, source.children):
        _merge_nodes(target_child, source_child)
