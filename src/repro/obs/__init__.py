"""Observability: metrics registry, query profiles, cardinality feedback.

See DESIGN.md § Observability for the metric-name catalogue and the
profile tree format.
"""

from repro.obs.feedback import CardinalityFeedback
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    ProfileNode,
    QueryProfile,
    attach_profile,
    profile_collect,
)

__all__ = [
    "CardinalityFeedback",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileNode",
    "QueryProfile",
    "attach_profile",
    "profile_collect",
]
