"""Cardinality feedback: measured scan selectivities for the advisor.

Profiled queries record, per table, the ratio of rows surviving the
scan's Filter/PatchSelect chain to the table's base row count.  The
:class:`~repro.core.advisor.ConstraintAdvisor` consumes the smoothed
ratio to scale its cost-model row counts: a table that the workload
always reads at 2% selectivity should not be costed as if every query
materialized all of it.

Observations are smoothed with an exponentially weighted moving
average so one outlier query does not whipsaw the advisor, while a
genuine workload shift converges within a handful of queries.
"""

from __future__ import annotations

import threading

#: EWMA smoothing factor: the most recent observation contributes 30%.
DEFAULT_ALPHA = 0.3


class CardinalityFeedback:
    """Per-table observed scan selectivities (EWMA-smoothed)."""

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._selectivity: dict[str, float] = {}
        self._observations: dict[str, int] = {}

    def record_scan(self, table: str, base_rows: int, actual_rows: int) -> None:
        """Record one profiled scan of *table*."""
        if base_rows <= 0:
            return
        observed = min(1.0, actual_rows / base_rows)
        with self._lock:
            previous = self._selectivity.get(table)
            if previous is None:
                self._selectivity[table] = observed
            else:
                self._selectivity[table] = (
                    self.alpha * observed + (1.0 - self.alpha) * previous
                )
            self._observations[table] = self._observations.get(table, 0) + 1

    def record_profile(self, profile) -> None:
        """Record every scan observation of a finished QueryProfile."""
        for table, base_rows, actual_rows in profile.scan_observations():
            self.record_scan(table, base_rows, actual_rows)

    def selectivity(self, table: str) -> float | None:
        """Smoothed observed selectivity of *table*, if any."""
        with self._lock:
            return self._selectivity.get(table)

    def observations(self, table: str) -> int:
        with self._lock:
            return self._observations.get(table, 0)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._selectivity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CardinalityFeedback(tables={len(self._selectivity)})"
