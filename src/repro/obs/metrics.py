"""Metric instruments and the registry that owns them.

The observability layer mirrors the self-management premise of the
paper: the engine must *observe its own workload* to decide when
PatchIndexes pay off.  Three instrument kinds cover everything the
engine reports:

- :class:`Counter` — monotonically increasing totals (statements
  executed, patch hits, morsels dispatched);
- :class:`Gauge` — last-written values (current patch ratio of an
  index, the degree of parallelism a query actually used);
- :class:`Histogram` — streaming summaries (count / sum / min / max
  plus fixed power-of-two buckets) for durations and row counts.

A :class:`MetricsRegistry` is a thread-safe, get-or-create namespace of
instruments; every :class:`~repro.storage.database.Database` owns one
(``Database.metrics()``).  Export formats: :meth:`MetricsRegistry.export`
(plain dict), :meth:`~MetricsRegistry.to_json` and a Prometheus-flavoured
:meth:`~MetricsRegistry.to_text`.

Metric names are dotted paths (``query.seconds``,
``patchindex.pi_orders.patch_ratio``); the registry enforces that one
name is only ever used for one instrument kind.
"""

from __future__ import annotations

import json
import math
import threading


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-written value (may move in either direction)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: int | float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


#: Default histogram bucket upper bounds: powers of four spanning
#: microseconds to minutes when observing seconds, and single rows to
#: billions when observing cardinalities.
DEFAULT_BUCKETS = tuple(4.0**exponent for exponent in range(-10, 16))


class Histogram:
    """A streaming summary: count, sum, min, max and bucket counts."""

    __slots__ = (
        "name",
        "_lock",
        "count",
        "total",
        "minimum",
        "maximum",
        "buckets",
        "bucket_counts",
    )

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: int | float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            position = 0
            for bound in self.buckets:
                if value <= bound:
                    break
                position += 1
            self.bucket_counts[position] += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """Exportable summary (omits empty-histogram infinities).

        Taken under the lock so a concurrent :meth:`observe` can never
        produce a torn snapshot (e.g. a count without its sum).
        """
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": self.total / self.count,
                "buckets": {
                    f"le_{bound:g}": count
                    for bound, count in zip(self.buckets, self.bucket_counts)
                    if count
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Thread-safe, get-or-create namespace of metric instruments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_kind(name, self._counters)
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_kind(name, self._gauges)
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            self._check_kind(name, self._histograms)
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, buckets)
            return instrument

    def _check_kind(self, name: str, expected: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not expected and name in family:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    # -- export ------------------------------------------------------------

    def export(self) -> dict:
        """Snapshot of every instrument as a plain dict."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.export(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """Prometheus-flavoured ``name value`` lines, sorted by name."""
        snapshot = self.export()
        lines: list[str] = []
        for name, value in snapshot["counters"].items():
            lines.append(f"{name}_total {value:g}")
        for name, value in snapshot["gauges"].items():
            lines.append(f"{name} {value:g}")
        for name, summary in snapshot["histograms"].items():
            lines.append(f"{name}_count {summary['count']}")
            lines.append(f"{name}_sum {summary['sum']:g}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
