"""Benchmark support: timing harness and result-table reporting."""

from repro.bench.harness import Timer, measure, MeasuredRun
from repro.bench.reporting import format_table, format_series

__all__ = ["Timer", "measure", "MeasuredRun", "format_table", "format_series"]
