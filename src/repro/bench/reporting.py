"""Plain-text tables for the benchmark output.

The benchmarks print the same rows/series the paper's tables and
figures report, so ``bench_output.txt`` can be compared to the paper
side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells))
        if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append(
        " | ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    unit: str = "ms",
) -> str:
    """One row per x value, one column per series — a figure as a table."""
    headers = [x_label] + [f"{name} [{unit}]" for name in series]
    rows = []
    for position, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(values[position])
        rows.append(row)
    return format_table(title, headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
