"""Timing harness shared by the paper-reproduction benchmarks.

``pytest-benchmark`` drives per-figure microbenchmarks; for the
multi-series sweeps (Figures 4–6) the benchmarks also print the full
series the paper plots, which this module measures with a simple
best-of-N wall-clock harness (the paper reports single query runtimes
on a warm system).
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class MeasuredRun:
    """Result of measuring one callable."""

    seconds: float
    repeats: int
    all_seconds: tuple[float, ...]
    result: object

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


def measure(
    func: Callable[[], object],
    repeats: int = 3,
    warmup: int = 1,
) -> MeasuredRun:
    """Best-of-*repeats* wall time of ``func()`` after *warmup* calls."""
    result: object = None
    for __ in range(warmup):
        result = func()
    times: list[float] = []
    for __ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        result = func()
        times.append(time.perf_counter() - started)
    return MeasuredRun(min(times), repeats, tuple(times), result)


class Timer:
    """Context manager measuring one wall-clock interval."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3
