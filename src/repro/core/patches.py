"""Physical patch-set designs: identifier-based (sparse) and bitmap-based (dense).

The PatchIndex maintains the set of patches ``P_c`` (paper §III).  Two
physical designs are implemented, exactly as in paper §V:

- :class:`IdentifierPatches` stores the 64-bit tuple identifiers of all
  patches in a sorted array — memory proportional to ``|P_c|``
  (8 bytes per patch).
- :class:`BitmapPatches` stores one bit per tuple of the relation —
  memory proportional to ``|R|`` (``n / 8`` bytes) and independent of
  ``|P_c|``.

With 1 bit vs 64 bits per element, the identifier design wins on memory
whenever ``|P_c| / |R| <= 1/64 ≈ 1.56 %`` (:data:`CROSSOVER_RATE`).

Both designs answer the same interface: membership masks for contiguous
rowid ranges (the vectorized equivalent of the paper's Algorithm 1 merge
strategy and of the bitmap lookup), full rowid enumeration, and the
maintenance mutations used by :mod:`repro.core.maintenance`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import StorageError

#: Bits per stored patch in the identifier-based design (64-bit rowids).
IDENTIFIER_BITS = 64

#: Exception rate at which both designs use equal memory: 1 bit / 64 bit.
CROSSOVER_RATE = 1.0 / IDENTIFIER_BITS


class PatchSet(abc.ABC):
    """Abstract set of patch rowids over a relation of ``row_count`` tuples."""

    def __init__(self, row_count: int):
        if row_count < 0:
            raise StorageError("row_count must be non-negative")
        self.row_count = row_count

    # -- construction ------------------------------------------------------

    @staticmethod
    def build(
        rowids: np.ndarray, row_count: int, design: str
    ) -> "PatchSet":
        """Build a patch set of the requested *design* from sorted rowids."""
        if design == "identifier":
            return IdentifierPatches(rowids, row_count)
        if design == "bitmap":
            return BitmapPatches.from_rowids(rowids, row_count)
        raise StorageError(f"unknown patch-set design: {design!r}")

    # -- required interface ----------------------------------------------------

    @property
    @abc.abstractmethod
    def design(self) -> str:
        """Design name: ``"identifier"`` or ``"bitmap"``."""

    @abc.abstractmethod
    def patch_count(self) -> int:
        """``|P_c|`` — the number of patches."""

    @abc.abstractmethod
    def rowids(self) -> np.ndarray:
        """All patch rowids, ascending, as int64."""

    @abc.abstractmethod
    def mask_for_range(self, start: int, stop: int) -> np.ndarray:
        """Boolean mask of length ``stop - start``; True where the rowid
        ``start + i`` is a patch.

        This is the batch-at-a-time realization of the paper's
        ``use_patches`` / ``exclude_patches`` selection: callers keep the
        mask for ``use_patches`` and its negation for ``exclude_patches``.
        """

    @abc.abstractmethod
    def contains(self, rowid: int) -> bool:
        """Membership test for a single rowid."""

    @abc.abstractmethod
    def memory_usage_bytes(self) -> int:
        """Payload bytes of the physical representation."""

    # -- maintenance mutations ------------------------------------------------

    @abc.abstractmethod
    def extend(self, new_row_count: int, new_patch_rowids: np.ndarray) -> None:
        """Grow the relation to *new_row_count*, adding patches >= the old
        row count (table append path)."""

    @abc.abstractmethod
    def add(self, rowids: np.ndarray) -> None:
        """Mark existing rowids as patches (update path)."""

    @abc.abstractmethod
    def remove(self, rowids: np.ndarray) -> None:
        """Promote rowids out of the patch set (update re-classification).

        Rowids not currently patched are ignored; the relation size is
        unchanged.
        """

    @abc.abstractmethod
    def remap_after_delete(self, deleted: np.ndarray) -> None:
        """Remove deleted rowids and renumber survivors densely.

        *deleted* must be sorted ascending in the pre-delete rowid space.
        """

    # -- shared helpers ------------------------------------------------------

    def exception_rate(self) -> float:
        """``|P_c| / |R|`` (0.0 for an empty relation)."""
        if self.row_count == 0:
            return 0.0
        return self.patch_count() / self.row_count

    def __len__(self) -> int:
        return self.patch_count()

    def __contains__(self, rowid: object) -> bool:
        return isinstance(rowid, (int, np.integer)) and self.contains(int(rowid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(patches={self.patch_count()}, "
            f"rows={self.row_count})"
        )


def _check_sorted_rowids(rowids: np.ndarray, row_count: int) -> np.ndarray:
    """Validate and normalize a patch rowid array (sorted, unique, in range)."""
    rowids = np.asarray(rowids, dtype=np.int64)
    if rowids.ndim != 1:
        raise StorageError("patch rowids must be one-dimensional")
    if len(rowids):
        if rowids[0] < 0 or rowids[-1] >= row_count:
            raise StorageError(
                f"patch rowid out of range [0, {row_count}): "
                f"[{rowids[0]}, {rowids[-1]}]"
            )
        deltas = np.diff(rowids)
        if (deltas <= 0).any():
            raise StorageError("patch rowids must be strictly ascending")
    return rowids


class IdentifierPatches(PatchSet):
    """Sparse design: sorted array of 64-bit patch rowids (paper §V).

    Both discovery methods produce rowids in ascending order (paper
    §VI-A1), so no sort is needed at creation; the invariant is verified.
    """

    def __init__(self, rowids: np.ndarray, row_count: int):
        super().__init__(row_count)
        self._rowids = _check_sorted_rowids(rowids, row_count)

    @property
    def design(self) -> str:
        return "identifier"

    def patch_count(self) -> int:
        return len(self._rowids)

    def rowids(self) -> np.ndarray:
        return self._rowids

    def mask_for_range(self, start: int, stop: int) -> np.ndarray:
        if not 0 <= start <= stop <= self.row_count:
            raise StorageError(f"range [{start}, {stop}) out of bounds")
        mask = np.zeros(stop - start, dtype=np.bool_)
        # Merge strategy, batch formulation: locate the slice of the
        # sorted patch array overlapping [start, stop) with two binary
        # searches — the batched equivalent of advancing Algorithm 1's
        # patch pointer.
        lo = int(np.searchsorted(self._rowids, start, side="left"))
        hi = int(np.searchsorted(self._rowids, stop, side="left"))
        mask[self._rowids[lo:hi] - start] = True
        return mask

    def contains(self, rowid: int) -> bool:
        slot = int(np.searchsorted(self._rowids, rowid, side="left"))
        return slot < len(self._rowids) and int(self._rowids[slot]) == rowid

    def memory_usage_bytes(self) -> int:
        return len(self._rowids) * (IDENTIFIER_BITS // 8)

    # -- maintenance --------------------------------------------------------

    def extend(self, new_row_count: int, new_patch_rowids: np.ndarray) -> None:
        if new_row_count < self.row_count:
            raise StorageError("extend cannot shrink the relation")
        new_patch_rowids = np.asarray(new_patch_rowids, dtype=np.int64)
        if len(new_patch_rowids):
            if new_patch_rowids.min() < self.row_count:
                raise StorageError(
                    "extend patches must lie in the appended range"
                )
            if len(new_patch_rowids) > 1 and (
                np.diff(new_patch_rowids) <= 0
            ).any():
                new_patch_rowids = np.sort(new_patch_rowids)
            # Validate only the appended tail: the existing prefix is
            # already known-good and every new rowid is >= the old row
            # count, so the concatenation stays strictly ascending.
            tail = _check_sorted_rowids(new_patch_rowids, new_row_count)
            self._rowids = np.concatenate([self._rowids, tail])
        self.row_count = new_row_count

    def add(self, rowids: np.ndarray) -> None:
        rowids = np.asarray(rowids, dtype=np.int64)
        merged = np.union1d(self._rowids, rowids)
        self._rowids = _check_sorted_rowids(merged, self.row_count)

    def remove(self, rowids: np.ndarray) -> None:
        rowids = np.asarray(rowids, dtype=np.int64)
        if len(rowids) == 0:
            return
        self._rowids = self._rowids[~np.isin(self._rowids, rowids)]

    def remap_after_delete(self, deleted: np.ndarray) -> None:
        deleted = np.asarray(deleted, dtype=np.int64)
        if len(deleted) == 0:
            return
        keep = self._rowids[
            ~np.isin(self._rowids, deleted, assume_unique=True)
        ]
        # Each surviving rowid shifts down by the number of deleted
        # rowids below it.
        shift = np.searchsorted(deleted, keep, side="left")
        self.row_count -= len(deleted)
        self._rowids = _check_sorted_rowids(keep - shift, self.row_count)


class BitmapPatches(PatchSet):
    """Dense design: one bit per tuple of the relation (paper §V).

    The bitmap is stored packed (8 rowids per byte, little-endian bit
    order), so :meth:`memory_usage_bytes` reflects the paper's accounting
    of ``n`` bits for ``n`` tuples.
    """

    def __init__(self, bits: np.ndarray, row_count: int):
        super().__init__(row_count)
        expected = (row_count + 7) // 8
        if bits.dtype != np.uint8 or len(bits) != expected:
            raise StorageError(
                f"bitmap must be uint8[{expected}], got {bits.dtype}[{len(bits)}]"
            )
        self._bits = bits
        # Cached popcount; ``exception_rate()`` is consulted on every
        # query-rewrite decision, so |P_c| must not cost an O(n) unpack
        # per call.  Mutations invalidate (or update) the cache.
        self._patch_count: int | None = None

    @classmethod
    def from_rowids(cls, rowids: np.ndarray, row_count: int) -> "BitmapPatches":
        rowids = _check_sorted_rowids(rowids, row_count)
        bits = np.zeros((row_count + 7) // 8, dtype=np.uint8)
        if len(rowids):
            np.bitwise_or.at(
                bits,
                rowids >> 3,
                np.left_shift(np.uint8(1), (rowids & 7).astype(np.uint8)),
            )
        patches = cls(bits, row_count)
        patches._patch_count = len(rowids)  # rowids are unique by contract
        return patches

    @property
    def design(self) -> str:
        return "bitmap"

    def patch_count(self) -> int:
        if self._patch_count is None:
            self._patch_count = int(np.unpackbits(self._bits).sum())
        return self._patch_count

    def rowids(self) -> np.ndarray:
        unpacked = np.unpackbits(self._bits, bitorder="little")
        return np.flatnonzero(unpacked[: self.row_count]).astype(np.int64)

    def mask_for_range(self, start: int, stop: int) -> np.ndarray:
        if not 0 <= start <= stop <= self.row_count:
            raise StorageError(f"range [{start}, {stop}) out of bounds")
        if start == stop:
            return np.zeros(0, dtype=np.bool_)
        first_byte = start >> 3
        last_byte = (stop + 7) >> 3
        unpacked = np.unpackbits(
            self._bits[first_byte:last_byte], bitorder="little"
        )
        offset = start - (first_byte << 3)
        return unpacked[offset : offset + (stop - start)].astype(np.bool_)

    def contains(self, rowid: int) -> bool:
        if not 0 <= rowid < self.row_count:
            return False
        return bool(self._bits[rowid >> 3] & (1 << (rowid & 7)))

    def memory_usage_bytes(self) -> int:
        return len(self._bits)

    # -- maintenance -----------------------------------------------------------

    def extend(self, new_row_count: int, new_patch_rowids: np.ndarray) -> None:
        if new_row_count < self.row_count:
            raise StorageError("extend cannot shrink the relation")
        new_patch_rowids = np.asarray(new_patch_rowids, dtype=np.int64)
        if len(new_patch_rowids) and new_patch_rowids.min() < self.row_count:
            raise StorageError("extend patches must lie in the appended range")
        new_bytes = (new_row_count + 7) // 8
        bits = np.zeros(new_bytes, dtype=np.uint8)
        bits[: len(self._bits)] = self._bits
        self._bits = bits
        self.row_count = new_row_count
        if len(new_patch_rowids):
            self.add(new_patch_rowids)

    def add(self, rowids: np.ndarray) -> None:
        rowids = np.asarray(rowids, dtype=np.int64)
        if len(rowids) == 0:
            return
        if rowids.min() < 0 or rowids.max() >= self.row_count:
            raise StorageError("add rowid out of range")
        np.bitwise_or.at(
            self._bits,
            rowids >> 3,
            np.left_shift(np.uint8(1), (rowids & 7).astype(np.uint8)),
        )
        # Input may repeat rowids or re-mark existing patches; recount
        # lazily on the next patch_count() call.
        self._patch_count = None

    def remove(self, rowids: np.ndarray) -> None:
        rowids = np.asarray(rowids, dtype=np.int64)
        if len(rowids) == 0:
            return
        if rowids.min() < 0 or rowids.max() >= self.row_count:
            raise StorageError("remove rowid out of range")
        np.bitwise_and.at(
            self._bits,
            rowids >> 3,
            np.invert(
                np.left_shift(np.uint8(1), (rowids & 7).astype(np.uint8))
            ),
        )
        self._patch_count = None

    def remap_after_delete(self, deleted: np.ndarray) -> None:
        deleted = np.asarray(deleted, dtype=np.int64)
        if len(deleted) == 0:
            return
        unpacked = np.unpackbits(self._bits, bitorder="little")[: self.row_count]
        keep = np.ones(self.row_count, dtype=np.bool_)
        keep[deleted] = False
        survivors = unpacked[keep]
        self.row_count = len(survivors)
        self._patch_count = int(survivors.sum())
        self._bits = np.packbits(survivors, bitorder="little")
        expected = (self.row_count + 7) // 8
        if len(self._bits) != expected:  # pad for an all-zero tail
            padded = np.zeros(expected, dtype=np.uint8)
            padded[: len(self._bits)] = self._bits
            self._bits = padded
