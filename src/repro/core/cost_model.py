"""Cost model for PatchIndex-aware query rewrites (paper §VIII outlook).

Using a PatchIndex adds overhead — extra selection operators and copied
plan subtrees — so the paper plans "to create a cost model covering
additional costs of the PatchIndex usage and integrate it into query
optimization".  This module implements that: simple analytic per-row
cost formulas for the three rewrite use cases, with tunable constants
that default to values calibrated on this engine's operators.

The model answers one question per use case: *given* ``n`` input rows of
which ``p`` are patches, is the patched plan cheaper than the plain
plan?  The optimizer consults :meth:`CostModel.should_rewrite`; passing
``always_rewrite=True`` to the optimizer bypasses the model (used by the
benchmarks that sweep exception rates across the whole range).

All constants are unit-free relative weights; only ratios matter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostEstimate:
    """Plain vs patched cost for one rewrite decision."""

    use_case: str
    plain_cost: float
    patched_cost: float

    @property
    def use_patches(self) -> bool:
        return self.patched_cost < self.plain_cost

    @property
    def speedup(self) -> float:
        if self.patched_cost == 0:
            return math.inf
        return self.plain_cost / self.patched_cost


@dataclass(frozen=True)
class CostModel:
    """Analytic cost formulas for the three PatchIndex use cases.

    Attributes
    ----------
    hash_agg_weight:
        Cost per row of hash-based (distinct) aggregation.
    sort_weight:
        Cost per comparison of the sort operator (multiplied by
        ``n log2 n``).
    hash_build_weight / hash_probe_weight:
        Per-row cost of hash-join build and probe.
    merge_weight:
        Per-row cost of merge-based operators (MergeJoin, MergeUnion).
    patch_select_weight:
        Per-row overhead of a PatchSelect operator on a scan; applied
        twice (both plan branches rescan the input).
    union_weight:
        Per-row cost of recombining the two branches.
    """

    hash_agg_weight: float = 1.0
    sort_weight: float = 0.25
    hash_build_weight: float = 1.5
    hash_probe_weight: float = 1.0
    merge_weight: float = 0.35
    patch_select_weight: float = 0.05
    union_weight: float = 0.02
    #: Per-exception extra sort work relative to the linear pass — the
    #: engine's run-adaptive (timsort) kernel costs ~O(n) on presorted
    #: data plus this factor per out-of-order element.
    exception_sort_factor: float = 4.0
    #: Per-row overhead of the whole patched sort pipeline (two scans
    #: with PatchSelect plus the MergeUnion) relative to the baseline
    #: sort's linear pass; calibrated on this engine (breakeven ≈ 15 %).
    sort_overhead_weight: float = 0.85
    #: Per-row cost of the scan pipeline, used by the parallel decision.
    scan_weight: float = 0.3
    #: Extra per-row cost of decoding an encoded (RSEG2) block on scan,
    #: paid only on block-cache misses.  Decode is pure CPU work that
    #: divides across workers, so cold encoded scans parallelize earlier
    #: than raw ones; a warm cache cancels the term entirely.
    decode_weight: float = 0.2
    #: Fixed cost of fanning a query out to the worker pool (thread
    #: wake-up, per-query bookkeeping), in row-cost units.
    parallel_startup_weight: float = 32768.0
    #: Per-morsel dispatch/gather overhead (one pool task plus one
    #: fragment operator tree), in row-cost units.
    morsel_dispatch_weight: float = 512.0
    #: Fixed cost of fanning out to the worker-*process* pool: pool
    #: warm-up amortized over its lifetime plus the engine attach the
    #: first task per snapshot pays in each worker.
    process_startup_weight: float = 65536.0
    #: Per-morsel cost of the process backend: task pickling, the shm
    #: (or pickle) result hop, and decode on gather.
    process_dispatch_weight: float = 2048.0

    # -- use cases -----------------------------------------------------

    def distinct(self, n: int, p: int) -> CostEstimate:
        """Distinct aggregation over ``n`` rows with ``p`` patches (§VI-B1)."""
        plain = self.hash_agg_weight * n
        patched = (
            2 * self.patch_select_weight * n  # both branches rescan
            + self.hash_agg_weight * p  # distinct only on the patches
            + self.union_weight * n  # recombine
        )
        return CostEstimate("distinct", plain, patched)

    def sort(self, n: int, p: int) -> CostEstimate:
        """Full sort over ``n`` rows with ``p`` patches (§VI-B2).

        Both plans pay the superlinear work for the ``p`` out-of-order
        values (the baseline inside its run-adaptive full sort, the
        patched plan in its explicit patch sort), so the decision turns
        on the linear terms: one sort pass over ``n`` versus the patched
        pipeline's scan/select/merge overhead.
        """
        exceptions = self.exception_sort_factor * p * _log2(p)
        plain = self.sort_weight * (n + exceptions)
        patched = self.sort_weight * (
            self.sort_overhead_weight * n + exceptions + p
        )
        return CostEstimate("sort", plain, patched)

    def join(self, n_probe: int, p: int, n_build: int) -> CostEstimate:
        """Join with the PatchIndex on the probe side (§VI-B3).

        The plain plan is one HashJoin; the patched plan MergeJoins the
        sorted subsequence and HashJoins only the patches.
        """
        plain = (
            self.hash_build_weight * n_build + self.hash_probe_weight * n_probe
        )
        patched = (
            2 * self.patch_select_weight * n_probe
            + self.merge_weight * (n_probe - p + n_build)  # MergeJoin
            + self.hash_build_weight * min(n_build, p)  # smaller build side
            + self.hash_probe_weight * max(n_build, p)
            + self.union_weight * n_probe
        )
        return CostEstimate("join", plain, patched)

    def effective_scan_weight(
        self, encoded_fraction: float = 0.0, cache_hit_ratio: float = 0.0
    ) -> float:
        """Per-row scan weight given the table's storage state.

        *encoded_fraction* is the fraction of the table's blocks stored
        encoded (RSEG2) and *cache_hit_ratio* the block cache's observed
        hit ratio: every encoded block that misses the cache pays
        :attr:`decode_weight` on top of the base scan cost.
        """
        encoded = min(1.0, max(0.0, encoded_fraction))
        hits = min(1.0, max(0.0, cache_hit_ratio))
        return self.scan_weight + self.decode_weight * encoded * (1.0 - hits)

    def parallel_scan(
        self,
        n: int,
        workers: int,
        morsel_count: int,
        backend: str = "thread",
        *,
        encoded_fraction: float = 0.0,
        cache_hit_ratio: float = 0.0,
    ) -> CostEstimate:
        """Serial vs morsel-parallel execution of an ``n``-row pipeline.

        The parallel plan divides the per-row work across *workers* but
        pays a fixed fan-out cost plus a per-morsel dispatch cost; small
        inputs therefore stay serial.  The *backend* selects the weight
        pair — the process backend's fan-out and dispatch are heavier
        (process warm-up, task pickling, the shm result hop), so its
        breakeven cardinality is higher.  The per-row weight reflects
        the storage state via :meth:`effective_scan_weight`: cold
        encoded scans carry extra decode work (which parallelizes), a
        warm cache removes it again.  ``patched_cost`` plays the role
        of the parallel plan.
        """
        workers = max(1, workers)
        if backend == "process":
            startup = self.process_startup_weight
            dispatch = self.process_dispatch_weight
        else:
            startup = self.parallel_startup_weight
            dispatch = self.morsel_dispatch_weight
        weight = self.effective_scan_weight(encoded_fraction, cache_hit_ratio)
        plain = weight * n
        parallel = (
            weight * n / workers
            + dispatch * morsel_count
            + startup
        )
        return CostEstimate("parallel_scan", plain, parallel)

    def should_parallelize(
        self,
        n: int,
        workers: int,
        morsel_count: int,
        backend: str = "thread",
        *,
        encoded_fraction: float = 0.0,
        cache_hit_ratio: float = 0.0,
    ) -> bool:
        """True when the morsel-parallel plan is estimated cheaper."""
        if workers <= 1 or morsel_count < 2:
            return False
        return self.parallel_scan(
            n,
            workers,
            morsel_count,
            backend,
            encoded_fraction=encoded_fraction,
            cache_hit_ratio=cache_hit_ratio,
        ).use_patches

    # -- decision surface -------------------------------------------------

    def should_rewrite(
        self,
        use_case: str,
        n: int,
        p: int,
        n_build: int | None = None,
    ) -> bool:
        """True when the patched plan is estimated cheaper."""
        return self.estimate(use_case, n, p, n_build).use_patches

    def estimate(
        self,
        use_case: str,
        n: int,
        p: int,
        n_build: int | None = None,
    ) -> CostEstimate:
        if use_case == "distinct":
            return self.distinct(n, p)
        if use_case == "sort":
            return self.sort(n, p)
        if use_case == "join":
            return self.join(n, p, n_build if n_build is not None else n)
        raise ValueError(f"unknown use case: {use_case!r}")

    def breakeven_rate(self, use_case: str, n: int, n_build: int | None = None) -> float:
        """Largest exception rate at which the rewrite still pays off.

        Computed by bisection on ``p/n``; returns 0.0 when the rewrite
        never pays off and 1.0 when it always does.
        """
        if not self.should_rewrite(use_case, n, 0, n_build):
            return 0.0
        if self.should_rewrite(use_case, n, n, n_build):
            return 1.0
        lo, hi = 0.0, 1.0
        for __ in range(40):
            mid = (lo + hi) / 2
            if self.should_rewrite(use_case, n, int(mid * n), n_build):
                lo = mid
            else:
                hi = mid
        return lo


def _log2(value: int) -> float:
    """log2 clamped for tiny inputs so ``p = 0`` costs nothing extra."""
    return math.log2(value) if value > 1 else 1.0
