"""The PatchIndex structure (paper §V).

A PatchIndex maintains the set of patches ``P_c`` for one column of one
table.  Partitioning is transparent: the index holds one
:class:`~repro.core.patches.PatchSet` per table partition in the
partition-local rowid space (paper §VI-A2), and translates global rowid
ranges to the owning partitions when queried by the PatchSelect
operator.

Physical design selection follows §V: the caller picks the
identifier-based or bitmap-based representation explicitly, or leaves it
to ``AUTO`` which selects identifier-based when the discovered exception
rate is at most ``1/64 ≈ 1.56 %`` and bitmap-based otherwise — the
memory crossover point of 64-bit rowids vs 1 bit per tuple.

Index creation runs the discovery of :mod:`repro.core.discovery`
("AppendToIndex" post-query in the paper) and records wall-clock
creation time, which the Figure-6 benchmark reports.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass

import numpy as np

from repro.core.constraints import ConstraintKind
from repro.core.discovery import DiscoveryResult, discover
from repro.core.patches import CROSSOVER_RATE, PatchSet
from repro.errors import StorageError, ThresholdExceededError
from repro.storage.table import Table


class PatchIndexMode(enum.Enum):
    """Physical design selector for the patch sets."""

    AUTO = "auto"
    IDENTIFIER = "identifier"
    BITMAP = "bitmap"

    def resolve(self, rate: float) -> str:
        """Concrete design for a discovered exception *rate*."""
        if self == PatchIndexMode.IDENTIFIER:
            return "identifier"
        if self == PatchIndexMode.BITMAP:
            return "bitmap"
        return "identifier" if rate <= CROSSOVER_RATE else "bitmap"


@dataclass(frozen=True)
class PatchIndexStats:
    """Summary statistics of a PatchIndex (used by EXPLAIN and benchmarks)."""

    name: str
    table_name: str
    column_name: str
    kind: str
    design: str
    row_count: int
    patch_count: int
    exception_rate: float
    memory_bytes: int
    creation_seconds: float
    partition_patch_counts: tuple[int, ...]
    #: How this index came to exist: "user" for explicit creation,
    #: "recovery" for a rebuild-from-data during WAL replay (paper §V).
    provenance: str = "user"


class PatchIndex:
    """An index over the constraint-violating tuples of one column."""

    def __init__(
        self,
        name: str,
        table: Table,
        column_name: str,
        kind: ConstraintKind,
        partition_patches: list[PatchSet],
        threshold: float,
        ascending: bool = True,
        strict: bool = False,
        scope: str = "global",
        creation_seconds: float = 0.0,
        provenance: str = "user",
        mode: PatchIndexMode | None = None,
    ):
        if len(partition_patches) != table.partition_count:
            raise StorageError(
                "one PatchSet per table partition is required "
                f"({len(partition_patches)} != {table.partition_count})"
            )
        self.name = name
        self.table = table
        self.column_name = column_name
        self.constraint_kind = kind
        self.threshold = threshold
        self.ascending = ascending
        self.strict = strict
        self.scope = scope
        self.creation_seconds = creation_seconds
        self.provenance = provenance
        #: Design selector the index was created with; ``None`` for
        #: directly-constructed indexes of unknown provenance.  The plan
        #: verifier uses it to enforce the 1/64 crossover contract.
        self.mode = mode
        self.rebuild_count = 0
        #: Set past the drift threshold by the owning database; a
        #: background sweep (:meth:`Database.run_pending_rebuilds`, the
        #: server's writer loop) rebuilds and clears it.
        self.rebuild_pending = False
        #: Callable ``(index, delta)`` observing every applied
        #: :class:`~repro.core.delta.PatchDelta` — the owning database
        #: wires this to log deltas into the WAL and feed drift gauges.
        #: ``None`` for detached indexes (snapshots, tests).
        self.delta_sink = None
        self._partition_patches = partition_patches
        self._maintainer = None  # lazily built by repro.core.maintenance
        self._listener = self._on_table_event
        table.add_listener(self._listener)

    # -- catalog duck-typed surface ----------------------------------------

    @property
    def table_name(self) -> str:
        return self.table.name

    @property
    def kind(self) -> str:
        """Constraint kind as a string ("unique" / "sorted")."""
        return self.constraint_kind.value

    @property
    def design(self) -> str:
        """Physical design actually in use ("identifier" / "bitmap")."""
        return self._partition_patches[0].design if self._partition_patches else "identifier"

    def detach(self) -> None:
        """Unregister from table mutation events (called on DROP)."""
        try:
            self.table.remove_listener(self._listener)
        except ValueError:  # already detached
            pass

    # -- creation ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        name: str,
        table: Table,
        column_name: str,
        kind: ConstraintKind | str,
        mode: PatchIndexMode = PatchIndexMode.AUTO,
        threshold: float = 1.0,
        ascending: bool = True,
        strict: bool = False,
        scope: str = "global",
        provenance: str = "user",
        enforce_threshold: bool = True,
    ) -> "PatchIndex":
        """Discover patches and build the index (the "AppendToIndex" path).

        Raises :class:`~repro.errors.ThresholdExceededError` when the
        discovered exception rate is above *threshold* — the column then
        is not a NUC/NSC under that threshold (conditions NUC3/NSC2).
        ``enforce_threshold=False`` skips that check: WAL replay rebuilds
        an index that was legitimately created even if maintenance has
        since drifted the column past its threshold (*provenance* then
        records ``"recovery"``).
        """
        if isinstance(kind, str):
            kind = ConstraintKind.from_name(kind)
        table.schema.field(column_name)  # validate the column exists
        started = time.perf_counter()
        result = discover(
            table, column_name, kind, ascending=ascending, strict=strict,
            scope=scope,
        )
        if enforce_threshold and not result.satisfies(threshold):
            raise ThresholdExceededError(
                column_name, result.exception_rate, threshold
            )
        design = mode.resolve(result.exception_rate)
        partition_patches = [
            PatchSet.build(local_rowids, rows, design)
            for local_rowids, rows in zip(
                result.per_partition_rowids, result.partition_row_counts
            )
        ]
        elapsed = time.perf_counter() - started
        return cls(
            name,
            table,
            column_name,
            kind,
            partition_patches,
            threshold,
            ascending=ascending,
            strict=strict,
            scope=scope,
            creation_seconds=elapsed,
            provenance=provenance,
            mode=mode,
        )

    @classmethod
    def from_discovery(
        cls,
        name: str,
        table: Table,
        column_name: str,
        result: DiscoveryResult,
        mode: PatchIndexMode = PatchIndexMode.AUTO,
        threshold: float = 1.0,
        ascending: bool = True,
        strict: bool = False,
        scope: str = "global",
    ) -> "PatchIndex":
        """Build an index from an already-computed discovery result."""
        if not result.satisfies(threshold):
            raise ThresholdExceededError(
                column_name, result.exception_rate, threshold
            )
        design = mode.resolve(result.exception_rate)
        partition_patches = [
            PatchSet.build(local_rowids, rows, design)
            for local_rowids, rows in zip(
                result.per_partition_rowids, result.partition_row_counts
            )
        ]
        return cls(
            name,
            table,
            column_name,
            result.kind,
            partition_patches,
            threshold,
            ascending=ascending,
            strict=strict,
            scope=scope,
            mode=mode,
        )

    # -- query surface (used by PatchSelect) ------------------------------------

    def mask_for_range(self, start: int, stop: int) -> np.ndarray:
        """Boolean patch-membership mask for the global rowid range
        ``[start, stop)``, stitched across partitions.

        This is what both PatchSelect modes consume: ``use_patches``
        keeps rows where the mask is True, ``exclude_patches`` keeps the
        complement.
        """
        if start == stop:
            return np.zeros(0, dtype=np.bool_)
        pieces: list[np.ndarray] = []
        covered = start
        for partition, patches in zip(
            self.table.partitions, self._partition_patches
        ):
            p_start, p_stop = partition.rowid_range
            lo = max(covered, p_start)
            hi = min(stop, p_stop)
            if lo >= hi:
                continue
            pieces.append(
                patches.mask_for_range(lo - p_start, hi - p_start)
            )
            covered = hi
        if covered != stop:
            raise StorageError(
                f"rowid range [{start}, {stop}) exceeds table "
                f"(covered up to {covered})"
            )
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def partition_patches(self, partition_id: int) -> PatchSet:
        """The partition-local patch set (partition-transparent access)."""
        return self._partition_patches[partition_id]

    def rowids(self) -> np.ndarray:
        """All patch rowids in the global rowid space, ascending."""
        pieces = [
            patches.rowids() + partition.base_rowid
            for partition, patches in zip(
                self.table.partitions, self._partition_patches
            )
        ]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def contains(self, rowid: int) -> bool:
        partition = self.table.partition_of_rowid(rowid)
        patches = self._partition_patches[partition.partition_id]
        return patches.contains(rowid - partition.base_rowid)

    # -- statistics ----------------------------------------------------------------

    @property
    def patch_count(self) -> int:
        return sum(patches.patch_count() for patches in self._partition_patches)

    @property
    def exception_rate(self) -> float:
        rows = self.table.row_count
        if rows == 0:
            return 0.0
        return self.patch_count / rows

    def memory_usage_bytes(self) -> int:
        return sum(
            patches.memory_usage_bytes() for patches in self._partition_patches
        )

    def stats(self) -> PatchIndexStats:
        return PatchIndexStats(
            name=self.name,
            table_name=self.table_name,
            column_name=self.column_name,
            kind=self.kind,
            design=self.design,
            row_count=self.table.row_count,
            patch_count=self.patch_count,
            exception_rate=self.exception_rate,
            memory_bytes=self.memory_usage_bytes(),
            creation_seconds=self.creation_seconds,
            partition_patch_counts=tuple(
                patches.patch_count() for patches in self._partition_patches
            ),
            provenance=self.provenance,
        )

    def describe(self) -> str:
        stats = self.stats()
        return (
            f"patchindex {stats.name} on {stats.table_name}({stats.column_name}) "
            f"kind={stats.kind} design={stats.design} "
            f"patches={stats.patch_count}/{stats.row_count} "
            f"({stats.exception_rate:.2%}) mem={stats.memory_bytes}B"
        )

    # -- maintenance plumbing ------------------------------------------------------

    def maintenance_stats(self):
        """Counters describing patch-set drift since creation, or None
        when the table has not been mutated (see
        :class:`repro.core.maintenance.MaintenanceStats`)."""
        if self._maintainer is None:
            return None
        return self._maintainer.stats

    def drift_rate(self) -> float:
        """Patches added by conservative maintenance relative to the
        table size — a self-management tool's rebuild signal."""
        stats = self.maintenance_stats()
        if stats is None or self.table.row_count == 0:
            return 0.0
        return stats.patches_added / self.table.row_count

    def rebuild(self) -> None:
        """Re-run discovery to restore a minimal patch set (and the
        design choice), discarding maintenance drift.

        Emits an ``invalidate`` :class:`~repro.core.delta.PatchDelta`
        through the sink: the logged delta stream no longer describes
        the rebuilt patch sets, so WAL replay encountering the marker
        falls back to the paper's rebuild-from-data recovery.
        """
        from repro.core.delta import PatchDelta, invalidate_op
        from repro.core.discovery import discover
        from repro.core.patches import PatchSet

        result = discover(
            self.table,
            self.column_name,
            self.constraint_kind,
            ascending=self.ascending,
            strict=self.strict,
            scope=self.scope,
        )
        design = PatchIndexMode.AUTO.resolve(result.exception_rate)
        self._partition_patches = [
            PatchSet.build(local_rowids, rows, design)
            for local_rowids, rows in zip(
                result.per_partition_rowids, result.partition_row_counts
            )
        ]
        self._maintainer = None
        self.mode = PatchIndexMode.AUTO
        self.rebuild_count += 1
        self.rebuild_pending = False
        if self.delta_sink is not None:
            self.delta_sink(
                self,
                PatchDelta(
                    index_name=self.name,
                    table_name=self.table_name,
                    event="rebuild",
                    ops=(invalidate_op(),),
                ),
            )

    def apply_external_delta(self, delta) -> None:
        """Replay one :class:`~repro.core.delta.PatchDelta` produced
        elsewhere (WAL recovery, snapshot advance) onto this index,
        folding it into the maintenance stats."""
        from repro.core.maintenance import IndexMaintainer

        if self._maintainer is None:
            self._maintainer = IndexMaintainer(self)
        self._maintainer.apply_external(delta)

    def seed_maintenance_stats(self, stats) -> None:
        """Install persisted drift counters on a restored index."""
        from repro.core.maintenance import IndexMaintainer

        if self._maintainer is None:
            self._maintainer = IndexMaintainer(self)
        self._maintainer.stats = stats

    def _on_table_event(self, event: str, payload: dict) -> None:
        """Forward table mutations to the incremental maintainer."""
        from repro.core.maintenance import IndexMaintainer

        if self._maintainer is None:
            self._maintainer = IndexMaintainer(self)
        delta = self._maintainer.handle(event, payload)
        if delta is not None and self.delta_sink is not None:
            self.delta_sink(self, delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PatchIndex({self.describe()})"
