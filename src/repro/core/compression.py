"""Patch-aware column compression (paper §VIII outlook).

The paper closes with: "we plan to investigate on opportunities the
PatchIndex offers for data compression, potentially increasing
compression ratios when treating discovered set of patches separately
and this way basing compression algorithms on discovered properties of
data."  That is the patch-processing lineage the paper cites — PFOR /
PFOR-DELTA (Zukowski et al., ICDE 2006) make compression robust by
storing outliers separately.

This module implements the idea for nearly sorted columns: with the
NSC patches removed, the remaining values are non-decreasing, so their
deltas are small non-negative integers that bit-pack tightly
(delta + frame-of-reference).  The patches — exactly the values that
would otherwise blow up the delta width — are stored verbatim on the
side, addressed by the same sorted rowid list the PatchIndex maintains.

For comparison (and for the ablation benchmark), a plain
frame-of-reference encoder without patch separation is included: on
nearly sorted data with even a few exceptions its delta domain includes
large *negative* jumps, forcing a zig-zag encoding with a much wider
bit width.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.discovery import discover_nsc_patches
from repro.errors import StorageError
from repro.storage.blocks import BlockStats
from repro.storage.column import ColumnVector
from repro.types import DataType


def _required_width(values: np.ndarray) -> int:
    """Bits needed to represent every value of a non-negative array."""
    if len(values) == 0:
        return 0
    peak = int(values.max())
    if peak < 0:
        raise StorageError("bit packing requires non-negative values")
    return max(1, peak.bit_length())


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack non-negative int64 values into ``width`` bits each.

    Vectorized via per-bit decomposition; returns a uint8 buffer of
    ``ceil(n * width / 8)`` bytes.
    """
    if width < 1 or width > 63:
        raise StorageError(f"bit width out of range: {width}")
    values = np.asarray(values, dtype=np.uint64)
    bits = (
        (values[:, None] >> np.arange(width, dtype=np.uint64)) & np.uint64(1)
    ).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little")


def unpack_bits(buffer: np.ndarray, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns int64 values."""
    bits = np.unpackbits(buffer, bitorder="little")[: count * width]
    bits = bits.reshape(count, width).astype(np.uint64)
    weights = np.uint64(1) << np.arange(width, dtype=np.uint64)
    return (bits * weights).sum(axis=1).astype(np.int64)


@dataclass(frozen=True)
class CompressedSortedColumn:
    """Delta+FOR encoding of a nearly sorted INT64 column with patches.

    The kept (sorted) values are stored as ``base`` plus bit-packed
    non-negative deltas; the patch rows are stored verbatim next to
    their sorted rowids.  NULL rows are always patches (NSC invariant),
    recorded in ``exception_nulls``.
    """

    row_count: int
    base: int
    delta_width: int
    packed_deltas: np.ndarray
    kept_count: int
    exception_rowids: np.ndarray
    exception_values: np.ndarray
    exception_nulls: np.ndarray

    def size_bytes(self) -> int:
        """Payload bytes (ignoring Python object overhead)."""
        return (
            8  # base
            + 1  # width
            + len(self.packed_deltas)
            + len(self.exception_rowids) * 8
            + len(self.exception_values) * 8
            + (len(self.exception_nulls) + 7) // 8
        )

    def decompress(self) -> ColumnVector:
        """Reconstruct the exact original column (values and NULLs)."""
        values = np.zeros(self.row_count, dtype=np.int64)
        is_exception = np.zeros(self.row_count, dtype=np.bool_)
        is_exception[self.exception_rowids] = True
        if self.kept_count:
            deltas = unpack_bits(
                self.packed_deltas, self.delta_width, self.kept_count
            ) if self.delta_width else np.zeros(self.kept_count, dtype=np.int64)
            kept = np.cumsum(
                np.concatenate([[self.base], deltas[1:]])
            ) if self.kept_count > 1 else np.asarray([self.base])
            values[~is_exception] = kept
        values[self.exception_rowids] = self.exception_values
        if self.exception_nulls.any():
            validity = np.ones(self.row_count, dtype=np.bool_)
            validity[self.exception_rowids[self.exception_nulls]] = False
            return ColumnVector(DataType.INT64, values, validity)
        return ColumnVector(DataType.INT64, values)


def compress_sorted(
    column: ColumnVector,
    patch_rowids: np.ndarray | None = None,
) -> CompressedSortedColumn:
    """Compress a nearly sorted INT64 column using its patch set.

    When *patch_rowids* is None the NSC patches are discovered first
    (the self-managing path: the compressor reuses the PatchIndex's
    knowledge when one exists, and falls back to discovery).
    """
    if column.dtype != DataType.INT64:
        raise StorageError("compress_sorted supports INT64 columns")
    n = len(column)
    if patch_rowids is None:
        patch_rowids = discover_nsc_patches(column)
    patch_rowids = np.asarray(patch_rowids, dtype=np.int64)
    is_exception = np.zeros(n, dtype=np.bool_)
    is_exception[patch_rowids] = True
    validity = column.validity_or_all_true()
    if (~validity & ~is_exception).any():
        raise StorageError("NULL rows must be patches")

    kept = column.values[~is_exception]
    if len(kept) > 1:
        deltas = np.diff(kept)
        if (deltas < 0).any():
            raise StorageError("kept values are not sorted; bad patch set")
        full = np.concatenate([[0], deltas])
    else:
        full = np.zeros(len(kept), dtype=np.int64)
    width = _required_width(full) if len(full) else 0
    packed = (
        pack_bits(full, width)
        if width and len(full)
        else np.zeros(0, dtype=np.uint8)
    )
    exception_values = column.values[patch_rowids]
    exception_nulls = ~validity[patch_rowids] if column.validity is not None else np.zeros(
        len(patch_rowids), dtype=np.bool_
    )
    return CompressedSortedColumn(
        row_count=n,
        base=int(kept[0]) if len(kept) else 0,
        delta_width=width,
        packed_deltas=packed,
        kept_count=len(kept),
        exception_rowids=patch_rowids,
        exception_values=np.asarray(exception_values, dtype=np.int64),
        exception_nulls=exception_nulls,
    )


@dataclass(frozen=True)
class CompressedForColumn:
    """Plain frame-of-reference + zig-zag delta encoding (no patches).

    The baseline the ablation compares against: one bit width must fit
    *every* delta, including the large negative jumps that the
    exceptions introduce.
    """

    row_count: int
    base: int
    width: int
    packed: np.ndarray

    def size_bytes(self) -> int:
        return 8 + 1 + len(self.packed)

    def decompress(self) -> ColumnVector:
        if self.row_count == 0:
            return ColumnVector.empty(DataType.INT64)
        zigzag = unpack_bits(self.packed, self.width, self.row_count) if self.width else np.zeros(
            self.row_count, dtype=np.int64
        )
        deltas = (zigzag >> 1) ^ -(zigzag & 1)
        values = np.cumsum(np.concatenate([[self.base], deltas[1:]]))
        return ColumnVector(DataType.INT64, values.astype(np.int64))


def compress_for(column: ColumnVector) -> CompressedForColumn:
    """Delta-encode without patch separation (zig-zag for negatives)."""
    if column.dtype != DataType.INT64:
        raise StorageError("compress_for supports INT64 columns")
    if column.has_nulls:
        raise StorageError("compress_for does not support NULLs")
    n = len(column)
    if n == 0:
        return CompressedForColumn(0, 0, 0, np.zeros(0, dtype=np.uint8))
    deltas = np.concatenate([[0], np.diff(column.values)])
    zigzag = (deltas << 1) ^ (deltas >> 63)
    width = _required_width(zigzag)
    return CompressedForColumn(
        row_count=n,
        base=int(column.values[0]),
        width=width,
        packed=pack_bits(zigzag, width),
    )


def compression_report(
    column: ColumnVector, patch_rowids: np.ndarray | None = None
) -> dict[str, float]:
    """Sizes and ratios of raw vs FOR vs patch-aware encodings."""
    raw = len(column) * 8
    patched = compress_sorted(column, patch_rowids)
    out = {
        "raw_bytes": float(raw),
        "patch_aware_bytes": float(patched.size_bytes()),
        "patch_aware_ratio": raw / max(1, patched.size_bytes()),
    }
    if not column.has_nulls:
        plain = compress_for(column)
        out["for_bytes"] = float(plain.size_bytes())
        out["for_ratio"] = raw / max(1, plain.size_bytes())
    return out


# ---------------------------------------------------------------------------
# Block-level codecs (the RSEG2 segment format)
# ---------------------------------------------------------------------------
#
# The durable RSEG2 format (repro.storage.segment) encodes each block of
# a column independently so a scan can decode only the blocks it visits.
# The codecs below operate on *physical* int64 value arrays — NULL slots
# already hold their fill value; validity lives at the segment level —
# and return self-contained little-endian payloads.  Every encoder
# returns ``None`` when it cannot represent the block or cannot beat the
# raw size, so raw is always the fallback.

#: Block encoding tags as stored in the RSEG2 header.
BLOCK_ENCODINGS = ("raw", "rle", "for", "pfor", "dict")

_FOR_HEADER = struct.Struct("<qB")  # base, delta bit width
_PFOR_HEADER = struct.Struct("<qBII")  # base, width, kept count, exc count
_RLE_HEADER = struct.Struct("<I")  # run count


def _delta_chain(values: np.ndarray) -> np.ndarray:
    """Leading-zero delta array such that ``base + cumsum`` restores values."""
    deltas = np.empty(len(values), dtype=np.int64)
    deltas[0] = 0
    np.subtract(values[1:], values[:-1], out=deltas[1:])
    return deltas


def _restore_chain(base: int, deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_delta_chain` (int64 wraparound round-trips)."""
    return (np.cumsum(deltas, dtype=np.int64) + np.int64(base)).astype(np.int64)


def encode_block_rle(values: np.ndarray) -> bytes | None:
    """Run-length encode one block; ``None`` unless it beats raw."""
    n = len(values)
    if n == 0:
        return None
    starts = np.concatenate(
        [[0], np.flatnonzero(values[1:] != values[:-1]) + 1]
    ).astype(np.int64)
    if _RLE_HEADER.size + 12 * len(starts) >= 8 * n:
        return None
    lengths = np.diff(np.concatenate([starts, [n]]))
    return (
        _RLE_HEADER.pack(len(starts))
        + values[starts].astype("<i8").tobytes()
        + lengths.astype("<u4").tobytes()
    )


def decode_block_rle(data: bytes, count: int) -> np.ndarray:
    """Decode an RLE block payload back into int64 values."""
    (runs,) = _RLE_HEADER.unpack_from(data)
    offset = _RLE_HEADER.size
    run_values = np.frombuffer(data, dtype="<i8", count=runs, offset=offset)
    offset += 8 * runs
    lengths = np.frombuffer(data, dtype="<u4", count=runs, offset=offset)
    values = np.repeat(run_values.astype(np.int64), lengths)
    if len(values) != count:
        raise StorageError("corrupt RLE block: run lengths do not cover block")
    return values


def encode_block_for(values: np.ndarray) -> bytes | None:
    """Frame-of-reference + zig-zag delta encode; ``None`` if not smaller."""
    n = len(values)
    if n == 0:
        return None
    deltas = _delta_chain(values)
    zigzag = (deltas << 1) ^ (deltas >> 63)
    if (zigzag < 0).any():  # delta overflow: the domain needs 64+ bits
        return None
    width = _required_width(zigzag)
    if _FOR_HEADER.size + (n * width + 7) // 8 >= 8 * n:
        return None
    return _FOR_HEADER.pack(int(values[0]), width) + pack_bits(
        zigzag, width
    ).tobytes()


def decode_block_for(data: bytes, count: int) -> np.ndarray:
    """Decode a FOR block payload back into int64 values."""
    base, width = _FOR_HEADER.unpack_from(data)
    packed = np.frombuffer(data, dtype=np.uint8, offset=_FOR_HEADER.size)
    zigzag = unpack_bits(packed, width, count)
    deltas = (zigzag >> 1) ^ -(zigzag & 1)
    return _restore_chain(base, deltas)


def encode_block_pfor(
    values: np.ndarray, exception_positions: np.ndarray
) -> bytes | None:
    """Patch-aware FOR: exceptions verbatim, kept values delta-packed.

    *exception_positions* are block-local row offsets (the PatchIndex
    rowids restricted to this block, plus any NULL slots).  The kept
    values must be non-decreasing — the NSC invariant — otherwise the
    block cannot use this codec and ``None`` is returned.
    """
    n = len(values)
    if n == 0:
        return None
    exceptions = np.unique(np.asarray(exception_positions, dtype=np.int64))
    if len(exceptions) and (
        exceptions[0] < 0 or exceptions[-1] >= n or len(exceptions) >= n
    ):
        return None
    keep = np.ones(n, dtype=np.bool_)
    keep[exceptions] = False
    kept = values[keep]
    if len(kept):
        deltas = _delta_chain(kept)
        if (deltas < 0).any():  # patch set does not cover the disorder
            return None
        width = _required_width(deltas)
    else:
        width = 0
    size = (
        _PFOR_HEADER.size
        + (len(kept) * width + 7) // 8
        + 12 * len(exceptions)
    )
    if size >= 8 * n:
        return None
    packed = (
        pack_bits(deltas, width).tobytes() if len(kept) and width else b""
    )
    return (
        _PFOR_HEADER.pack(
            int(kept[0]) if len(kept) else 0,
            width,
            len(kept),
            len(exceptions),
        )
        + packed
        + exceptions.astype("<u4").tobytes()
        + values[exceptions].astype("<i8").tobytes()
    )


def decode_block_pfor(data: bytes, count: int) -> np.ndarray:
    """Decode a patch-aware FOR block payload back into int64 values."""
    base, width, kept_count, exc_count = _PFOR_HEADER.unpack_from(data)
    offset = _PFOR_HEADER.size
    packed_len = (kept_count * width + 7) // 8
    if kept_count and width:
        packed = np.frombuffer(
            data, dtype=np.uint8, count=packed_len, offset=offset
        )
        deltas = unpack_bits(packed, width, kept_count)
    else:
        deltas = np.zeros(kept_count, dtype=np.int64)
    offset += packed_len
    positions = np.frombuffer(
        data, dtype="<u4", count=exc_count, offset=offset
    ).astype(np.int64)
    offset += 4 * exc_count
    exc_values = np.frombuffer(data, dtype="<i8", count=exc_count, offset=offset)
    if kept_count + exc_count != count:
        raise StorageError("corrupt PFOR block: counts do not cover block")
    out = np.empty(count, dtype=np.int64)
    keep = np.ones(count, dtype=np.bool_)
    keep[positions] = False
    if kept_count:
        out[keep] = _restore_chain(base, deltas)
    out[positions] = exc_values.astype(np.int64)
    return out


def encode_block_codes(codes: np.ndarray, width: int) -> bytes:
    """Pack per-block dictionary codes at a fixed *width* (0 = constant)."""
    payload = struct.pack("<B", width)
    if width:
        payload += pack_bits(codes, width).tobytes()
    return payload


def decode_block_codes(data: bytes, count: int) -> np.ndarray:
    """Unpack per-block dictionary codes; returns int64 code ids."""
    (width,) = struct.unpack_from("<B", data)
    if not width:
        return np.zeros(count, dtype=np.int64)
    packed = np.frombuffer(data, dtype=np.uint8, offset=1)
    return unpack_bits(packed, width, count)


def build_string_dictionary(
    values: np.ndarray,
) -> tuple[list[str], np.ndarray, int]:
    """Sorted unique strings, per-row codes, and the per-code bit width."""
    unique, codes = np.unique(values, return_inverse=True)
    width = (
        max(1, int(len(unique) - 1).bit_length()) if len(unique) > 1 else 0
    )
    return list(unique), codes.astype(np.int64), width


def pick_int_block_encoding(
    values: np.ndarray,
    exception_positions: np.ndarray | None = None,
    stats: BlockStats | None = None,
) -> tuple[str, bytes | None]:
    """Choose the cheapest encoding for one int64 block.

    Cost-based: candidate payloads are produced and the smallest wins,
    with raw (``None`` payload) as the floor.  The per-block min/max/null
    sketch short-circuits hopeless candidates: a constant block goes
    straight to RLE, and a value span needing 60+ delta bits skips the
    FOR attempt entirely.
    """
    n = len(values)
    best: tuple[str, bytes | None] = ("raw", None)
    best_size = 8 * n
    if n == 0:
        return best

    constant = (
        stats is not None
        and stats.null_count == 0
        and stats.minimum is not None
        and stats.minimum == stats.maximum
    )
    rle = encode_block_rle(values)
    if rle is not None and len(rle) < best_size:
        best, best_size = ("rle", rle), len(rle)
        if constant:
            return best  # nothing beats one run

    try_for = True
    if (
        stats is not None
        and stats.minimum is not None
        and stats.maximum is not None
        and isinstance(stats.minimum, int)
        and isinstance(stats.maximum, int)
    ):
        span = stats.maximum - stats.minimum
        try_for = span >= 0 and (2 * span).bit_length() < 60
    if try_for:
        encoded = encode_block_for(values)
        if encoded is not None and len(encoded) < best_size:
            best, best_size = ("for", encoded), len(encoded)

    if exception_positions is not None and len(exception_positions):
        encoded = encode_block_pfor(values, exception_positions)
        if encoded is not None and len(encoded) < best_size:
            best, best_size = ("pfor", encoded), len(encoded)
    return best
