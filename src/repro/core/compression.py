"""Patch-aware column compression (paper §VIII outlook).

The paper closes with: "we plan to investigate on opportunities the
PatchIndex offers for data compression, potentially increasing
compression ratios when treating discovered set of patches separately
and this way basing compression algorithms on discovered properties of
data."  That is the patch-processing lineage the paper cites — PFOR /
PFOR-DELTA (Zukowski et al., ICDE 2006) make compression robust by
storing outliers separately.

This module implements the idea for nearly sorted columns: with the
NSC patches removed, the remaining values are non-decreasing, so their
deltas are small non-negative integers that bit-pack tightly
(delta + frame-of-reference).  The patches — exactly the values that
would otherwise blow up the delta width — are stored verbatim on the
side, addressed by the same sorted rowid list the PatchIndex maintains.

For comparison (and for the ablation benchmark), a plain
frame-of-reference encoder without patch separation is included: on
nearly sorted data with even a few exceptions its delta domain includes
large *negative* jumps, forcing a zig-zag encoding with a much wider
bit width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.discovery import discover_nsc_patches
from repro.errors import StorageError
from repro.storage.column import ColumnVector
from repro.types import DataType


def _required_width(values: np.ndarray) -> int:
    """Bits needed to represent every value of a non-negative array."""
    if len(values) == 0:
        return 0
    peak = int(values.max())
    if peak < 0:
        raise StorageError("bit packing requires non-negative values")
    return max(1, peak.bit_length())


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack non-negative int64 values into ``width`` bits each.

    Vectorized via per-bit decomposition; returns a uint8 buffer of
    ``ceil(n * width / 8)`` bytes.
    """
    if width < 1 or width > 63:
        raise StorageError(f"bit width out of range: {width}")
    values = np.asarray(values, dtype=np.uint64)
    bits = (
        (values[:, None] >> np.arange(width, dtype=np.uint64)) & np.uint64(1)
    ).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little")


def unpack_bits(buffer: np.ndarray, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns int64 values."""
    bits = np.unpackbits(buffer, bitorder="little")[: count * width]
    bits = bits.reshape(count, width).astype(np.uint64)
    weights = np.uint64(1) << np.arange(width, dtype=np.uint64)
    return (bits * weights).sum(axis=1).astype(np.int64)


@dataclass(frozen=True)
class CompressedSortedColumn:
    """Delta+FOR encoding of a nearly sorted INT64 column with patches.

    The kept (sorted) values are stored as ``base`` plus bit-packed
    non-negative deltas; the patch rows are stored verbatim next to
    their sorted rowids.  NULL rows are always patches (NSC invariant),
    recorded in ``exception_nulls``.
    """

    row_count: int
    base: int
    delta_width: int
    packed_deltas: np.ndarray
    kept_count: int
    exception_rowids: np.ndarray
    exception_values: np.ndarray
    exception_nulls: np.ndarray

    def size_bytes(self) -> int:
        """Payload bytes (ignoring Python object overhead)."""
        return (
            8  # base
            + 1  # width
            + len(self.packed_deltas)
            + len(self.exception_rowids) * 8
            + len(self.exception_values) * 8
            + (len(self.exception_nulls) + 7) // 8
        )

    def decompress(self) -> ColumnVector:
        """Reconstruct the exact original column (values and NULLs)."""
        values = np.zeros(self.row_count, dtype=np.int64)
        is_exception = np.zeros(self.row_count, dtype=np.bool_)
        is_exception[self.exception_rowids] = True
        if self.kept_count:
            deltas = unpack_bits(
                self.packed_deltas, self.delta_width, self.kept_count
            ) if self.delta_width else np.zeros(self.kept_count, dtype=np.int64)
            kept = np.cumsum(
                np.concatenate([[self.base], deltas[1:]])
            ) if self.kept_count > 1 else np.asarray([self.base])
            values[~is_exception] = kept
        values[self.exception_rowids] = self.exception_values
        if self.exception_nulls.any():
            validity = np.ones(self.row_count, dtype=np.bool_)
            validity[self.exception_rowids[self.exception_nulls]] = False
            return ColumnVector(DataType.INT64, values, validity)
        return ColumnVector(DataType.INT64, values)


def compress_sorted(
    column: ColumnVector,
    patch_rowids: np.ndarray | None = None,
) -> CompressedSortedColumn:
    """Compress a nearly sorted INT64 column using its patch set.

    When *patch_rowids* is None the NSC patches are discovered first
    (the self-managing path: the compressor reuses the PatchIndex's
    knowledge when one exists, and falls back to discovery).
    """
    if column.dtype != DataType.INT64:
        raise StorageError("compress_sorted supports INT64 columns")
    n = len(column)
    if patch_rowids is None:
        patch_rowids = discover_nsc_patches(column)
    patch_rowids = np.asarray(patch_rowids, dtype=np.int64)
    is_exception = np.zeros(n, dtype=np.bool_)
    is_exception[patch_rowids] = True
    validity = column.validity_or_all_true()
    if (~validity & ~is_exception).any():
        raise StorageError("NULL rows must be patches")

    kept = column.values[~is_exception]
    if len(kept) > 1:
        deltas = np.diff(kept)
        if (deltas < 0).any():
            raise StorageError("kept values are not sorted; bad patch set")
        full = np.concatenate([[0], deltas])
    else:
        full = np.zeros(len(kept), dtype=np.int64)
    width = _required_width(full) if len(full) else 0
    packed = (
        pack_bits(full, width)
        if width and len(full)
        else np.zeros(0, dtype=np.uint8)
    )
    exception_values = column.values[patch_rowids]
    exception_nulls = ~validity[patch_rowids] if column.validity is not None else np.zeros(
        len(patch_rowids), dtype=np.bool_
    )
    return CompressedSortedColumn(
        row_count=n,
        base=int(kept[0]) if len(kept) else 0,
        delta_width=width,
        packed_deltas=packed,
        kept_count=len(kept),
        exception_rowids=patch_rowids,
        exception_values=np.asarray(exception_values, dtype=np.int64),
        exception_nulls=exception_nulls,
    )


@dataclass(frozen=True)
class CompressedForColumn:
    """Plain frame-of-reference + zig-zag delta encoding (no patches).

    The baseline the ablation compares against: one bit width must fit
    *every* delta, including the large negative jumps that the
    exceptions introduce.
    """

    row_count: int
    base: int
    width: int
    packed: np.ndarray

    def size_bytes(self) -> int:
        return 8 + 1 + len(self.packed)

    def decompress(self) -> ColumnVector:
        if self.row_count == 0:
            return ColumnVector.empty(DataType.INT64)
        zigzag = unpack_bits(self.packed, self.width, self.row_count) if self.width else np.zeros(
            self.row_count, dtype=np.int64
        )
        deltas = (zigzag >> 1) ^ -(zigzag & 1)
        values = np.cumsum(np.concatenate([[self.base], deltas[1:]]))
        return ColumnVector(DataType.INT64, values.astype(np.int64))


def compress_for(column: ColumnVector) -> CompressedForColumn:
    """Delta-encode without patch separation (zig-zag for negatives)."""
    if column.dtype != DataType.INT64:
        raise StorageError("compress_for supports INT64 columns")
    if column.has_nulls:
        raise StorageError("compress_for does not support NULLs")
    n = len(column)
    if n == 0:
        return CompressedForColumn(0, 0, 0, np.zeros(0, dtype=np.uint8))
    deltas = np.concatenate([[0], np.diff(column.values)])
    zigzag = (deltas << 1) ^ (deltas >> 63)
    width = _required_width(zigzag)
    return CompressedForColumn(
        row_count=n,
        base=int(column.values[0]),
        width=width,
        packed=pack_bits(zigzag, width),
    )


def compression_report(
    column: ColumnVector, patch_rowids: np.ndarray | None = None
) -> dict[str, float]:
    """Sizes and ratios of raw vs FOR vs patch-aware encodings."""
    raw = len(column) * 8
    patched = compress_sorted(column, patch_rowids)
    out = {
        "raw_bytes": float(raw),
        "patch_aware_bytes": float(patched.size_bytes()),
        "patch_aware_ratio": raw / max(1, patched.size_bytes()),
    }
    if not column.has_nulls:
        plain = compress_for(column)
        out["for_bytes"] = float(plain.size_bytes())
        out["for_ratio"] = raw / max(1, plain.size_bytes())
    return out
