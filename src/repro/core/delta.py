"""Typed patch-set deltas: the single mutation channel for PatchIndexes.

Incremental maintenance (:mod:`repro.core.maintenance`) used to mutate
patch sets ad hoc inside its event handlers; this module turns every
such mutation into a first-class :class:`PatchDelta` — an ordered tuple
of :class:`DeltaOp` membership operations plus bookkeeping counters —
that the rest of the stack can log, replay and observe:

- the maintainer *classifies* a table mutation into a delta and applies
  it through :func:`apply_ops` (the only code path allowed to call the
  :class:`~repro.core.patches.PatchSet` mutation methods — lint rule
  L10 enforces this);
- the durable engine serializes deltas into ``patch_delta`` WAL records
  (:meth:`PatchDelta.to_payload`, CRC-32 checksummed) and replays them
  over checkpoint-persisted patch sets on recovery, falling back to the
  paper's rebuild-from-data path when a delta is missing or corrupt;
- :func:`record_delta_stats` updates
  :class:`~repro.core.maintenance.MaintenanceStats` identically on the
  live path and on replay, so a recovered index reports the same drift
  it had before the crash.

Every op is *self-contained*: applying a delta needs only the patch
sets, never the table state at the time the delta was produced.  That
is what makes pure replay possible — recovery restores table data first
(the existing path, untouched) and then replays deltas separately.

Op vocabulary (all rowids are partition-local):

``extend``
    Grow one partition's relation to ``row_count`` rows and mark the
    listed appended rowids as patches (append / load classification).
``add``
    Mark existing rowids as patches (demotions, update path).
``remove``
    Promote rowids out of the patch set (update re-classification).
``remap``
    Delete the listed rowids and renumber survivors densely (the
    delete path; rowids are in the pre-delete numbering).
``invalidate``
    The index was rebuilt from data; the delta stream no longer
    describes the patch sets.  Replay must fall back to rebuild.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.maintenance import MaintenanceStats
    from repro.core.patches import PatchSet

OP_EXTEND = "extend"
OP_ADD = "add"
OP_REMOVE = "remove"
OP_REMAP = "remap"
OP_INVALIDATE = "invalidate"

_KNOWN_OPS = frozenset({OP_EXTEND, OP_ADD, OP_REMOVE, OP_REMAP, OP_INVALIDATE})

#: Delta events mirroring the table mutations that produce them, plus
#: ``rebuild`` for the invalidation marker a live rebuild emits.
_KNOWN_EVENTS = frozenset({"append", "load", "delete", "update", "rebuild"})


@dataclass(frozen=True)
class DeltaOp:
    """One patch-membership operation against one partition's patch set."""

    op: str
    partition_id: int = -1
    #: Partition-local rowids: appended patches for ``extend``, existing
    #: rows for ``add``/``remove``, deleted rows (pre-delete numbering,
    #: ascending) for ``remap``.  Unused by ``invalidate``.
    rowids: tuple[int, ...] = ()
    #: Post-op relation size of the partition (``extend`` only).
    row_count: int = -1

    def to_json(self) -> dict:
        out: dict = {"op": self.op}
        if self.op != OP_INVALIDATE:
            out["partition_id"] = self.partition_id
            out["rowids"] = list(self.rowids)
        if self.op == OP_EXTEND:
            out["row_count"] = self.row_count
        return out

    @classmethod
    def from_json(cls, raw: dict) -> "DeltaOp":
        op = raw.get("op")
        if op not in _KNOWN_OPS:
            raise StorageError(f"unknown delta op: {op!r}")
        return cls(
            op=op,
            partition_id=int(raw.get("partition_id", -1)),
            rowids=tuple(int(r) for r in raw.get("rowids", ())),
            row_count=int(raw.get("row_count", -1)),
        )


def extend_op(
    partition_id: int, row_count: int, rowids: Iterable[int]
) -> DeltaOp:
    return DeltaOp(
        OP_EXTEND,
        partition_id=partition_id,
        rowids=tuple(int(r) for r in rowids),
        row_count=int(row_count),
    )


def add_op(partition_id: int, rowids: Iterable[int]) -> DeltaOp:
    return DeltaOp(
        OP_ADD, partition_id=partition_id, rowids=tuple(int(r) for r in rowids)
    )


def remove_op(partition_id: int, rowids: Iterable[int]) -> DeltaOp:
    return DeltaOp(
        OP_REMOVE,
        partition_id=partition_id,
        rowids=tuple(int(r) for r in rowids),
    )


def remap_op(partition_id: int, deleted: Iterable[int]) -> DeltaOp:
    return DeltaOp(
        OP_REMAP,
        partition_id=partition_id,
        rowids=tuple(int(r) for r in deleted),
    )


def invalidate_op() -> DeltaOp:
    return DeltaOp(OP_INVALIDATE)


@dataclass(frozen=True)
class PatchDelta:
    """All patch-set changes one index derived from one table mutation."""

    index_name: str
    table_name: str
    #: The table mutation that produced the delta (or ``"rebuild"``).
    event: str
    ops: tuple[DeltaOp, ...] = ()
    #: Rows the mutation touched (appended/loaded count, 1 for update,
    #: deleted count) — drives the handled-event stat counters.
    rows: int = 0
    #: Previously-kept rows the delta demoted into the patch set.
    demoted: int = 0

    def __post_init__(self) -> None:
        if self.event not in _KNOWN_EVENTS:
            raise StorageError(f"unknown delta event: {self.event!r}")

    @property
    def invalidates(self) -> bool:
        """True when replaying past this delta is impossible (rebuild)."""
        return any(op.op == OP_INVALIDATE for op in self.ops)

    def patches_added(self) -> int:
        return sum(
            len(op.rowids) for op in self.ops if op.op in (OP_EXTEND, OP_ADD)
        )

    def patches_removed(self) -> int:
        return sum(len(op.rowids) for op in self.ops if op.op == OP_REMOVE)

    # -- WAL payload (de)serialization ----------------------------------

    def _body(self, applies_to: int | None) -> dict:
        return {
            "index": self.index_name,
            "table": self.table_name,
            "event": self.event,
            "applies_to": applies_to,
            "rows": self.rows,
            "demoted": self.demoted,
            "ops": [op.to_json() for op in self.ops],
        }

    def to_payload(self, applies_to: int | None = None) -> dict:
        """WAL-record payload: the delta body plus a CRC-32 checksum.

        *applies_to* links the delta to the LSN of the data record whose
        mutation produced it; recovery uses the link to detect gaps (a
        data record without its delta forces the rebuild fallback).
        """
        body = self._body(applies_to)
        body["checksum"] = delta_checksum(body)
        return body

    @classmethod
    def from_payload(cls, payload: dict) -> "tuple[PatchDelta, int | None]":
        """Parse and checksum-verify a WAL payload.

        Returns ``(delta, applies_to)``.  Raises
        :class:`~repro.errors.StorageError` on a malformed payload or a
        checksum mismatch — recovery treats either as "delta absent" and
        falls back to rebuild-from-data.
        """
        if not isinstance(payload, dict):
            raise StorageError(f"malformed patch-delta payload: {payload!r}")
        body = {key: value for key, value in payload.items() if key != "checksum"}
        expected = payload.get("checksum")
        actual = delta_checksum(body)
        if expected != actual:
            raise StorageError(
                f"patch-delta checksum mismatch: {expected!r} != {actual}"
            )
        try:
            applies_to = body["applies_to"]
            delta = cls(
                index_name=body["index"],
                table_name=body["table"],
                event=body["event"],
                ops=tuple(DeltaOp.from_json(raw) for raw in body["ops"]),
                rows=int(body.get("rows", 0)),
                demoted=int(body.get("demoted", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(
                f"malformed patch-delta payload: {payload!r}"
            ) from exc
        if applies_to is not None and not isinstance(applies_to, int):
            raise StorageError(f"malformed applies_to: {applies_to!r}")
        return delta, applies_to


def delta_checksum(body: dict) -> int:
    """CRC-32 over the canonical JSON form of a delta body."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


# -- application --------------------------------------------------------------


def apply_ops(
    partition_patches: Sequence["PatchSet"], ops: Iterable[DeltaOp]
) -> None:
    """Apply membership ops to per-partition patch sets, in order.

    This is the *only* place patch-set mutation methods may be called
    from outside :mod:`repro.core.patches` itself (lint rule L10): the
    live maintainer, WAL-delta recovery and snapshot replay all funnel
    through here, so every path mutates membership identically.
    """
    for op in ops:
        if op.op == OP_INVALIDATE:
            raise StorageError(
                "an invalidate delta cannot be applied; the index must be "
                "rebuilt from data"
            )
        if not 0 <= op.partition_id < len(partition_patches):
            raise StorageError(
                f"delta op references partition {op.partition_id} of "
                f"{len(partition_patches)}"
            )
        patches = partition_patches[op.partition_id]
        rowids = np.asarray(op.rowids, dtype=np.int64)
        if op.op == OP_EXTEND:
            patches.extend(op.row_count, rowids)
        elif op.op == OP_ADD:
            patches.add(rowids)
        elif op.op == OP_REMOVE:
            patches.remove(rowids)
        elif op.op == OP_REMAP:
            patches.remap_after_delete(rowids)
        else:  # pragma: no cover - _KNOWN_OPS guards construction
            raise StorageError(f"unknown delta op: {op.op!r}")


def record_delta_stats(stats: "MaintenanceStats", delta: PatchDelta) -> None:
    """Fold one applied delta into the drift counters.

    Shared by the live maintainer and WAL-delta replay so a restored
    index reports exactly the drift it had accumulated before the crash
    (cache-invalidation counts excepted — replay holds no caches).
    """
    if delta.event == "append":
        stats.appends_handled += 1
        stats.rows_appended += delta.rows
    elif delta.event == "load":
        stats.loads_handled += 1
        stats.rows_appended += delta.rows
    elif delta.event == "delete":
        stats.deletes_handled += 1
    elif delta.event == "update":
        stats.updates_handled += 1
    stats.patches_added += delta.patches_added()
    stats.patches_removed += delta.patches_removed()
    stats.kept_rows_demoted += delta.demoted
