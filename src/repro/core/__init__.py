"""The paper's primary contribution: PatchIndex and approximate constraints.

Public surface:

- :class:`~repro.core.patch_index.PatchIndex` — the index structure
  maintaining the set of patches ``P_c`` for a column.
- :class:`~repro.core.patches.PatchSet` and its two physical designs,
  :class:`~repro.core.patches.IdentifierPatches` (sparse) and
  :class:`~repro.core.patches.BitmapPatches` (dense).
- :mod:`~repro.core.discovery` — NUC/NSC discovery producing patch sets.
- :mod:`~repro.core.constraints` — formal NUC/NSC definitions and
  validators.
- :class:`~repro.core.advisor.ConstraintAdvisor` — self-management tool
  proposing and creating PatchIndexes automatically.
- :mod:`~repro.core.maintenance` — incremental patch maintenance under
  inserts/deletes/updates (paper §VIII outlook).
- :mod:`~repro.core.cost_model` — rewrite cost model (paper §VIII
  outlook).
"""

from repro.core.patches import (
    PatchSet,
    IdentifierPatches,
    BitmapPatches,
    IDENTIFIER_BITS,
    CROSSOVER_RATE,
)
from repro.core.patch_index import PatchIndex, PatchIndexMode, PatchIndexStats
from repro.core.constraints import (
    ConstraintKind,
    check_nuc,
    check_nsc,
    exception_rate,
)
from repro.core.discovery import (
    discover_nuc_patches,
    discover_nsc_patches,
    DiscoveryResult,
)
from repro.core.lis import longest_sorted_subsequence_indices
from repro.core.advisor import ConstraintAdvisor, AdvisorProposal
from repro.core.cost_model import CostModel, CostEstimate
from repro.core.compression import (
    compress_sorted,
    compress_for,
    compression_report,
    CompressedSortedColumn,
    CompressedForColumn,
)

__all__ = [
    "PatchSet",
    "IdentifierPatches",
    "BitmapPatches",
    "IDENTIFIER_BITS",
    "CROSSOVER_RATE",
    "PatchIndex",
    "PatchIndexMode",
    "PatchIndexStats",
    "ConstraintKind",
    "check_nuc",
    "check_nsc",
    "exception_rate",
    "discover_nuc_patches",
    "discover_nsc_patches",
    "DiscoveryResult",
    "longest_sorted_subsequence_indices",
    "ConstraintAdvisor",
    "AdvisorProposal",
    "CostModel",
    "CostEstimate",
    "compress_sorted",
    "compress_for",
    "compression_report",
    "CompressedSortedColumn",
    "CompressedForColumn",
]
