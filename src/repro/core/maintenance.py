"""Incremental PatchIndex maintenance under inserts, loads, deletes and updates.

The paper names lightweight support for table mutations as the key
follow-up feature of PatchIndexes (§VIII): because the index already
*maintains exceptions*, a mutation that would violate the constraint can
simply add the offending tuples to the patch set instead of forcing a
full table scan or rejecting the write.

This module implements that idea with a deliberately *conservative*
policy: the maintained patch set always remains **correct** (all NUC/NSC
conditions keep holding over ``R \\ P_c``) but is allowed to drift away
from **minimal**.  Re-creating the index re-establishes minimality; the
drift is observable through :class:`MaintenanceStats` so a
self-management tool can schedule a rebuild.

Every handler is a pure *classifier*: it derives a
:class:`~repro.core.delta.PatchDelta` from the mutation event and
applies it through the delta layer (:func:`repro.core.delta.apply_ops`)
— never by mutating patch sets directly.  The owning database logs the
delta into the WAL (durable engines), so recovery can replay the exact
same membership changes over checkpoint-persisted patch sets instead of
rebuilding every index from data.

Policies per event:

**append** (new rows at the end of the last partition)
    - NSC: greedy extension — an appended value that does not break the
      partition's sorted tail is kept, anything else (including NULL)
      becomes a patch.  ``O(1)`` per row.
    - NUC: a value equal to a kept value moves *both* rows into the
      patch set (condition NUC2); values equal to existing patch values
      and NULLs become patches; fresh values are kept.  ``O(1)``
      expected per row using a kept-value hash map built lazily on the
      first mutation.

**load** (bulk rows appended to the tail of every partition)
    - classified like appends, per partition in rowid order.  A
      global-scope NSC additionally patches every new row landing in a
      partition *before* the last one — those rows sit between existing
      kept rows in global rowid order, so only the final partition's
      tail can extend the global sorted subsequence.

**delete**
    - patch sets are remapped to the new dense rowid numbering; deleting
      rows never un-sorts a sorted remainder nor un-uniquifies unique
      values, so no new patches arise.  Cached kept-value and
      sorted-tail snapshots are invalidated in one place for both
      constraint kinds (they rebuild lazily).

**update** (point update of the indexed column)
    - the updated row is re-classified: it joins the patch set when the
      new value violates the constraint (for NUC, a kept row holding the
      same value is demoted as well — NUC2), and a patched NUC row whose
      new value is fresh is *promoted* back out of the patch set.
      Updates to other columns are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core import delta as delta_layer
from repro.core.constraints import ConstraintKind
from repro.core.delta import DeltaOp, PatchDelta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.patch_index import PatchIndex


@dataclass
class MaintenanceStats:
    """Counters describing how far the patch set drifted from minimal."""

    appends_handled: int = 0
    loads_handled: int = 0
    deletes_handled: int = 0
    updates_handled: int = 0
    rows_appended: int = 0
    patches_added: int = 0
    patches_removed: int = 0
    kept_rows_demoted: int = 0
    invalidations: int = 0
    extra: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        """JSON form persisted with the checkpointed patch sets."""
        return {
            "appends_handled": self.appends_handled,
            "loads_handled": self.loads_handled,
            "deletes_handled": self.deletes_handled,
            "updates_handled": self.updates_handled,
            "rows_appended": self.rows_appended,
            "patches_added": self.patches_added,
            "patches_removed": self.patches_removed,
            "kept_rows_demoted": self.kept_rows_demoted,
            "invalidations": self.invalidations,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MaintenanceStats":
        stats = cls()
        for name in (
            "appends_handled",
            "loads_handled",
            "deletes_handled",
            "updates_handled",
            "rows_appended",
            "patches_added",
            "patches_removed",
            "kept_rows_demoted",
            "invalidations",
        ):
            setattr(stats, name, int(payload.get(name, 0)))
        return stats


class IndexMaintainer:
    """Derives and applies PatchDeltas for one index's table mutations."""

    def __init__(self, index: "PatchIndex"):
        self.index = index
        self.stats = MaintenanceStats()
        # NUC state (lazy): python-level kept value -> global rowid, and
        # the set of values currently present among (valid) patches.
        self._kept_value_rowids: dict | None = None
        self._patch_values: set | None = None
        # NSC state (lazy): per-partition value of the last kept row.
        self._last_kept: list[object] | None = None
        # Demotions the lazy NUC state build discovered (self-healing a
        # snapshot taken mid-update); drained into the next delta so the
        # WAL stream stays complete.
        self._pending_ops: list[DeltaOp] = []
        self._pending_demoted = 0

    # -- event dispatch ---------------------------------------------------

    def handle(self, event: str, payload: dict) -> PatchDelta | None:
        """Classify one table mutation; apply and return its delta.

        Returns ``None`` for events that do not concern the index (an
        update of another column, unknown event kinds) — replay expects
        a logged delta exactly when this returns one.
        """
        if event == "append":
            ops, rows, demoted = self._classify_append(payload)
        elif event == "load":
            ops, rows, demoted = self._classify_load()
        elif event == "delete":
            ops, rows, demoted = self._classify_delete(payload)
        elif event == "update":
            if payload["column"] != self.index.column_name:
                return None
            ops, rows, demoted = self._classify_update(payload)
        else:
            # Unknown events are ignored: forward compatibility with new
            # table mutations that do not affect constraint validity.
            return None
        pending = self._pending_ops
        pending_demoted = self._pending_demoted
        self._pending_ops = []
        self._pending_demoted = 0
        delta = PatchDelta(
            index_name=self.index.name,
            table_name=self.index.table_name,
            event=event,
            ops=tuple(pending) + tuple(ops),
            rows=rows,
            demoted=demoted + pending_demoted,
        )
        self._apply(delta)
        return delta

    def _apply(self, delta: PatchDelta) -> None:
        """Apply a classified delta and keep the lazy caches honest."""
        delta_layer.apply_ops(self.index._partition_patches, delta.ops)
        delta_layer.record_delta_stats(self.stats, delta)
        if delta.event == "delete":
            # Kept-value rowids and sorted tails shifted with the dense
            # renumbering; both caches rebuild lazily — the one place
            # that policy lives for both constraint kinds.
            self._invalidate()

    def apply_external(self, delta: PatchDelta) -> None:
        """Apply a replayed delta (recovery / snapshot) with stats."""
        delta_layer.apply_ops(self.index._partition_patches, delta.ops)
        delta_layer.record_delta_stats(self.stats, delta)
        self._invalidate()

    # -- lazy state ----------------------------------------------------------

    def _ensure_nuc_state(self) -> tuple[dict, set]:
        """Kept-value → rowid map and patch-value set, built lazily.

        Returns the live state objects (never ``None``), so callers can
        mutate them in place without re-checking optionals.
        """
        if self._kept_value_rowids is not None and self._patch_values is not None:
            return self._kept_value_rowids, self._patch_values
        index = self.index
        kept: dict = {}
        patch_values: set = set()
        # The patch set's row_count is the number of rows it has already
        # accounted for; during an append the partition may briefly hold
        # more (the event's new rows are handled by the append logic,
        # not by this snapshot).
        masks: list[np.ndarray] = []
        for partition, patches in zip(
            index.table.partitions, index._partition_patches
        ):
            column = partition.column(index.column_name)
            mask = patches.mask_for_range(0, patches.row_count)
            masks.append(mask)
            for local in np.flatnonzero(mask):
                value = column[int(local)]
                if value is not None:
                    patch_values.add(value)
        # Kept pass, after all patch values are known: a snapshot taken
        # mid-update may show NUC2 violations, which are self-healed by
        # queueing demotions for the offending kept rows (the ops ride
        # along with the next delta, so the WAL stream stays complete).
        for partition, mask in zip(index.table.partitions, masks):
            column = partition.column(index.column_name)
            for local in np.flatnonzero(~mask):
                value = column[int(local)]
                global_rowid = partition.base_rowid + int(local)
                if value in patch_values:
                    self._pending_ops.extend(self._demote_ops([global_rowid]))
                    self._pending_demoted += 1
                elif value in kept:
                    self._pending_ops.extend(
                        self._demote_ops([kept.pop(value), global_rowid])
                    )
                    patch_values.add(value)
                    self._pending_demoted += 2
                else:
                    kept[value] = global_rowid
        self._kept_value_rowids = kept
        self._patch_values = patch_values
        return kept, patch_values

    def _ensure_nsc_state(self) -> list[object]:
        """Per-partition sorted-tail snapshot, built lazily (never
        ``None``; the returned list is the live state, mutated in
        place by the append handler)."""
        if self._last_kept is not None:
            return self._last_kept
        last_kept: list[object] = []
        for partition, patches in zip(
            self.index.table.partitions, self.index._partition_patches
        ):
            # See _ensure_nuc_state: only the rows the patch set has
            # already accounted for belong in the snapshot.
            mask = patches.mask_for_range(0, patches.row_count)
            kept_positions = np.flatnonzero(~mask)
            if len(kept_positions) == 0:
                last_kept.append(None)
            else:
                column = partition.column(self.index.column_name)
                last_kept.append(column[int(kept_positions[-1])])
        if self.index.scope == "global":
            # Appended rows must extend the *global* sorted order, whose
            # tail is the last kept value of the last non-empty
            # partition in rowid order.
            tail = None
            for value in last_kept:
                if value is not None:
                    tail = value
            last_kept = [tail] * len(last_kept)
        self._last_kept = last_kept
        return last_kept

    def _invalidate(self) -> None:
        if (
            self._kept_value_rowids is not None
            or self._patch_values is not None
            or self._last_kept is not None
        ):
            self.stats.invalidations += 1
        self._kept_value_rowids = None
        self._patch_values = None
        self._last_kept = None

    # -- append -----------------------------------------------------------------

    def _classify_append(
        self, payload: dict
    ) -> tuple[list[DeltaOp], int, int]:
        partition_id = payload["partition_id"]
        column = payload["columns"][self.index.column_name]
        row_count = payload["row_count"]
        values = [column[offset] for offset in range(row_count)]
        return self._classify_tail(partition_id, values, row_count)

    def _classify_tail(
        self, partition_id: int, values: list, row_count: int
    ) -> tuple[list[DeltaOp], int, int]:
        """Classify *values* appended to the tail of one partition."""
        index = self.index
        patches = index._partition_patches[partition_id]
        old_partition_rows = patches.row_count
        new_partition_rows = old_partition_rows + row_count
        partition_base = index.table.partitions[partition_id].base_rowid
        ops: list[DeltaOp] = []
        demoted = 0

        if index.constraint_kind == ConstraintKind.SORTED:
            last_kept = self._ensure_nsc_state()
            last = last_kept[partition_id]
            new_local_patches: list[int] = []
            for offset, value in enumerate(values):
                if value is None or not self._extends(last, value):
                    new_local_patches.append(old_partition_rows + offset)
                else:
                    last = value
            if index.scope == "global":
                # The global tail is shared by every slot (see
                # _ensure_nsc_state); keep the broadcast in sync.
                for slot in range(len(last_kept)):
                    last_kept[slot] = last
            else:
                last_kept[partition_id] = last
            ops.append(
                delta_layer.extend_op(
                    partition_id, new_partition_rows, new_local_patches
                )
            )
        else:
            kept_value_rowids, patch_values = self._ensure_nuc_state()
            new_local_patches = []
            demoted_global: list[int] = []
            for offset, value in enumerate(values):
                local = old_partition_rows + offset
                global_rowid = partition_base + local
                if value is None:
                    new_local_patches.append(local)
                elif value in patch_values:
                    new_local_patches.append(local)
                elif value in kept_value_rowids:
                    # NUC2: demote the previously-kept twin as well.
                    demoted_global.append(kept_value_rowids.pop(value))
                    patch_values.add(value)
                    new_local_patches.append(local)
                else:
                    kept_value_rowids[value] = global_rowid
            ops.append(
                delta_layer.extend_op(
                    partition_id, new_partition_rows, new_local_patches
                )
            )
            ops.extend(self._demote_ops(demoted_global))
            demoted = len(demoted_global)
        return ops, row_count, demoted

    def _extends(self, last: object, value: object) -> bool:
        """Does *value* extend the sorted tail ending at *last*?"""
        if last is None:
            return True
        if self.index.ascending:
            return last < value if self.index.strict else last <= value
        return last > value if self.index.strict else last >= value

    def _demote_ops(self, rowids: list[int]) -> list[DeltaOp]:
        """Ops moving previously-kept rows (global rowids) into patches."""
        ops: list[DeltaOp] = []
        for global_rowid in rowids:
            partition = self.index.table.partition_of_rowid(global_rowid)
            ops.append(
                delta_layer.add_op(
                    partition.partition_id,
                    [global_rowid - partition.base_rowid],
                )
            )
        return ops

    # -- load --------------------------------------------------------------------

    def _classify_load(self) -> tuple[list[DeltaOp], int, int]:
        """Classify the freshly-loaded tail of every partition.

        The load payload does not say which partition received which
        rows, but each patch set remembers the row count it has already
        accounted for — everything beyond it in the partition is the
        loaded tail.  A global-scope NSC can only extend its sorted
        subsequence in the *last* partition: rows loaded into earlier
        partitions sit between existing kept rows in global rowid order
        and are patched wholesale (conservative, still correct).
        """
        index = self.index
        # Loading into any partition but the last shifts the base rowids
        # of the partitions after it, so cached kept-value maps (keyed by
        # global rowid) and tail snapshots are stale; rebuild them lazily
        # over the pre-load rows, which keep their local positions.
        self._invalidate()
        ops: list[DeltaOp] = []
        rows = 0
        demoted = 0
        global_nsc = (
            index.constraint_kind == ConstraintKind.SORTED
            and index.scope == "global"
        )
        last_partition = len(index.table.partitions) - 1
        for partition, patches in zip(
            index.table.partitions, index._partition_patches
        ):
            old_rows = patches.row_count
            new_rows = partition.row_count
            if new_rows == old_rows:
                continue
            tail = partition.column(index.column_name)
            values = [tail[offset] for offset in range(old_rows, new_rows)]
            if global_nsc and partition.partition_id != last_partition:
                self._ensure_nsc_state()  # keep the tail snapshot warm
                ops.append(
                    delta_layer.extend_op(
                        partition.partition_id,
                        new_rows,
                        range(old_rows, new_rows),
                    )
                )
                rows += len(values)
            else:
                tail_ops, tail_rows, tail_demoted = self._classify_tail(
                    partition.partition_id, values, len(values)
                )
                ops.extend(tail_ops)
                rows += tail_rows
                demoted += tail_demoted
        return ops, rows, demoted

    # -- delete ---------------------------------------------------------------------

    def _classify_delete(
        self, payload: dict
    ) -> tuple[list[DeltaOp], int, int]:
        ops: list[DeltaOp] = []
        rows = 0
        for partition_id, local_deleted in payload["per_partition"]:
            if len(local_deleted) == 0:
                continue
            ops.append(delta_layer.remap_op(partition_id, local_deleted))
            rows += len(local_deleted)
        return ops, rows, 0

    # -- update ----------------------------------------------------------------------

    def _classify_update(
        self, payload: dict
    ) -> tuple[list[DeltaOp], int, int]:
        index = self.index
        rowid = payload["rowid"]
        partition = index.table.partitions[payload["partition_id"]]
        patches = index._partition_patches[partition.partition_id]
        local = rowid - partition.base_rowid
        was_patch = patches.contains(local)
        new_value = payload["value"]
        old_value = payload["old_value"]
        ops: list[DeltaOp] = []
        demoted = 0

        if index.constraint_kind == ConstraintKind.UNIQUE:
            kept_value_rowids, patch_values = self._ensure_nuc_state()
            if not was_patch and kept_value_rowids.get(old_value) == rowid:
                del kept_value_rowids[old_value]
            if new_value is None or new_value in patch_values:
                if not was_patch:
                    ops.append(delta_layer.add_op(partition.partition_id, [local]))
                if new_value is not None:
                    patch_values.add(new_value)
            else:
                twin = kept_value_rowids.get(new_value)
                if twin is not None and twin != rowid:
                    # NUC2: demote the kept row already holding the value.
                    del kept_value_rowids[new_value]
                    ops.extend(self._demote_ops([twin]))
                    demoted += 1
                    patch_values.add(new_value)
                    if not was_patch:
                        ops.append(
                            delta_layer.add_op(partition.partition_id, [local])
                        )
                elif was_patch:
                    # Fresh value: the patched row is unique again —
                    # promote it back out of the patch set.
                    ops.append(
                        delta_layer.remove_op(partition.partition_id, [local])
                    )
                    kept_value_rowids[new_value] = rowid
                else:
                    kept_value_rowids[new_value] = rowid
        else:
            if not was_patch:
                # The updated row leaves the sorted subsequence; any
                # cached tail snapshot may reference it (and may even
                # have been built after the new value was written), so
                # recompute lazily once the row is in the patch set.
                self._last_kept = None
                ops.append(delta_layer.add_op(partition.partition_id, [local]))
        return ops, 1, demoted
