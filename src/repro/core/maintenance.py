"""Incremental PatchIndex maintenance under inserts, deletes and updates.

The paper names lightweight support for table mutations as the key
follow-up feature of PatchIndexes (§VIII): because the index already
*maintains exceptions*, a mutation that would violate the constraint can
simply add the offending tuples to the patch set instead of forcing a
full table scan or rejecting the write.

This module implements that idea with a deliberately *conservative*
policy: the maintained patch set always remains **correct** (all NUC/NSC
conditions keep holding over ``R \\ P_c``) but is allowed to drift away
from **minimal**.  Re-creating the index re-establishes minimality; the
drift is observable through :class:`MaintenanceStats` so a
self-management tool can schedule a rebuild.

Policies per event:

**append** (new rows at the end of the last partition)
    - NSC: greedy extension — an appended value that does not break the
      partition's sorted tail is kept, anything else (including NULL)
      becomes a patch.  ``O(1)`` per row.
    - NUC: a value equal to a kept value moves *both* rows into the
      patch set (condition NUC2); values equal to existing patch values
      and NULLs become patches; fresh values are kept.  ``O(1)``
      expected per row using a kept-value hash map built lazily on the
      first mutation.

**delete**
    - patch sets are remapped to the new dense rowid numbering; deleting
      rows never un-sorts a sorted remainder nor un-uniquifies unique
      values, so no new patches arise.  (A patch value whose duplicates
      were all deleted could be *promoted* back; we skip promotion —
      conservative, still correct.)

**update** (point update of the indexed column)
    - the updated row joins the patch set; for NUC, a kept row holding
      the new value is demoted as well (NUC2).  Updates to other columns
      are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.constraints import ConstraintKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.patch_index import PatchIndex


@dataclass
class MaintenanceStats:
    """Counters describing how far the patch set drifted from minimal."""

    appends_handled: int = 0
    deletes_handled: int = 0
    updates_handled: int = 0
    rows_appended: int = 0
    patches_added: int = 0
    kept_rows_demoted: int = 0
    invalidations: int = 0
    extra: dict = field(default_factory=dict)


class IndexMaintainer:
    """Applies table mutation events to one PatchIndex."""

    def __init__(self, index: "PatchIndex"):
        self.index = index
        self.stats = MaintenanceStats()
        # NUC state (lazy): python-level kept value -> global rowid, and
        # the set of values currently present among (valid) patches.
        self._kept_value_rowids: dict | None = None
        self._patch_values: set | None = None
        # NSC state (lazy): per-partition value of the last kept row.
        self._last_kept: list[object] | None = None

    # -- event dispatch ---------------------------------------------------

    def handle(self, event: str, payload: dict) -> None:
        if event == "append":
            self._handle_append(payload)
        elif event == "delete":
            self._handle_delete(payload)
        elif event == "update":
            self._handle_update(payload)
        elif event == "load":
            # A bulk load reshapes every partition; cached kept-value /
            # sorted-tail snapshots are stale, rebuild them lazily.
            self._invalidate()
        # Unknown events are ignored: forward compatibility with new
        # table mutations that do not affect constraint validity.

    # -- lazy state ----------------------------------------------------------

    def _ensure_nuc_state(self) -> tuple[dict, set]:
        """Kept-value → rowid map and patch-value set, built lazily.

        Returns the live state objects (never ``None``), so callers can
        mutate them in place without re-checking optionals.
        """
        if self._kept_value_rowids is not None and self._patch_values is not None:
            return self._kept_value_rowids, self._patch_values
        index = self.index
        kept: dict = {}
        patch_values: set = set()
        # The patch set's row_count is the number of rows it has already
        # accounted for; during an append the partition may briefly hold
        # more (the event's new rows are handled by the append logic,
        # not by this snapshot).
        masks: list[np.ndarray] = []
        for partition, patches in zip(
            index.table.partitions, index._partition_patches
        ):
            column = partition.column(index.column_name)
            mask = patches.mask_for_range(0, patches.row_count)
            masks.append(mask)
            for local in np.flatnonzero(mask):
                value = column[int(local)]
                if value is not None:
                    patch_values.add(value)
        # Kept pass, after all patch values are known: a snapshot taken
        # mid-update may show NUC2 violations, which are self-healed by
        # demoting the offending kept rows.
        for partition, mask in zip(index.table.partitions, masks):
            column = partition.column(index.column_name)
            for local in np.flatnonzero(~mask):
                value = column[int(local)]
                global_rowid = partition.base_rowid + int(local)
                if value in patch_values:
                    self._demote_global_rowids([global_rowid])
                    self.stats.kept_rows_demoted += 1
                elif value in kept:
                    self._demote_global_rowids([kept.pop(value), global_rowid])
                    patch_values.add(value)
                    self.stats.kept_rows_demoted += 2
                else:
                    kept[value] = global_rowid
        self._kept_value_rowids = kept
        self._patch_values = patch_values
        return kept, patch_values

    def _ensure_nsc_state(self) -> list[object]:
        """Per-partition sorted-tail snapshot, built lazily (never
        ``None``; the returned list is the live state, mutated in
        place by the append handler)."""
        if self._last_kept is not None:
            return self._last_kept
        last_kept: list[object] = []
        for partition, patches in zip(
            self.index.table.partitions, self.index._partition_patches
        ):
            # See _ensure_nuc_state: only the rows the patch set has
            # already accounted for belong in the snapshot.
            mask = patches.mask_for_range(0, patches.row_count)
            kept_positions = np.flatnonzero(~mask)
            if len(kept_positions) == 0:
                last_kept.append(None)
            else:
                column = partition.column(self.index.column_name)
                last_kept.append(column[int(kept_positions[-1])])
        if self.index.scope == "global":
            # Appended rows must extend the *global* sorted order, whose
            # tail is the last kept value of the last non-empty
            # partition in rowid order.
            tail = None
            for value in last_kept:
                if value is not None:
                    tail = value
            last_kept = [tail] * len(last_kept)
        self._last_kept = last_kept
        return last_kept

    def _invalidate(self) -> None:
        if (
            self._kept_value_rowids is not None
            or self._patch_values is not None
            or self._last_kept is not None
        ):
            self.stats.invalidations += 1
        self._kept_value_rowids = None
        self._patch_values = None
        self._last_kept = None

    # -- append -----------------------------------------------------------------

    def _handle_append(self, payload: dict) -> None:
        index = self.index
        partition_id = payload["partition_id"]
        columns = payload["columns"]
        row_count = payload["row_count"]
        column = columns[index.column_name]
        patches = index._partition_patches[partition_id]
        old_partition_rows = patches.row_count
        new_partition_rows = old_partition_rows + row_count
        partition_base = index.table.partitions[partition_id].base_rowid

        if index.constraint_kind == ConstraintKind.SORTED:
            last_kept = self._ensure_nsc_state()
            last = last_kept[partition_id]
            new_local_patches: list[int] = []
            for offset in range(row_count):
                value = column[offset]
                if value is None or not self._extends(last, value):
                    new_local_patches.append(old_partition_rows + offset)
                else:
                    last = value
            last_kept[partition_id] = last
            patches.extend(
                new_partition_rows,
                np.asarray(new_local_patches, dtype=np.int64),
            )
            self.stats.patches_added += len(new_local_patches)
        else:
            kept_value_rowids, patch_values = self._ensure_nuc_state()
            new_local_patches: list[int] = []
            demoted_global: list[int] = []
            for offset in range(row_count):
                value = column[offset]
                local = old_partition_rows + offset
                global_rowid = partition_base + local
                if value is None:
                    new_local_patches.append(local)
                elif value in patch_values:
                    new_local_patches.append(local)
                elif value in kept_value_rowids:
                    # NUC2: demote the previously-kept twin as well.
                    demoted_global.append(kept_value_rowids.pop(value))
                    patch_values.add(value)
                    new_local_patches.append(local)
                else:
                    kept_value_rowids[value] = global_rowid
            patches.extend(
                new_partition_rows,
                np.asarray(new_local_patches, dtype=np.int64),
            )
            self._demote_global_rowids(demoted_global)
            self.stats.patches_added += len(new_local_patches) + len(demoted_global)
            self.stats.kept_rows_demoted += len(demoted_global)

        self.stats.appends_handled += 1
        self.stats.rows_appended += row_count

    def _extends(self, last: object, value: object) -> bool:
        """Does *value* extend the sorted tail ending at *last*?"""
        if last is None:
            return True
        if self.index.ascending:
            return last < value if self.index.strict else last <= value
        return last > value if self.index.strict else last >= value

    def _demote_global_rowids(self, rowids: list[int]) -> None:
        """Move previously-kept rows (global rowids) into the patch sets."""
        if not rowids:
            return
        index = self.index
        for global_rowid in rowids:
            partition = index.table.partition_of_rowid(global_rowid)
            patches = index._partition_patches[partition.partition_id]
            patches.add(
                np.asarray([global_rowid - partition.base_rowid], dtype=np.int64)
            )

    # -- delete ---------------------------------------------------------------------

    def _handle_delete(self, payload: dict) -> None:
        index = self.index
        for partition_id, local_deleted in payload["per_partition"]:
            if len(local_deleted) == 0:
                continue
            index._partition_patches[partition_id].remap_after_delete(
                np.asarray(local_deleted, dtype=np.int64)
            )
        # Kept-value rowids and sorted tails may have shifted; rebuild on
        # the next mutation that needs them.
        self._invalidate()
        self.stats.deletes_handled += 1

    # -- update ----------------------------------------------------------------------

    def _handle_update(self, payload: dict) -> None:
        index = self.index
        if payload["column"] != index.column_name:
            return
        rowid = payload["rowid"]
        partition = index.table.partitions[payload["partition_id"]]
        patches = index._partition_patches[partition.partition_id]
        local = rowid - partition.base_rowid
        was_patch = patches.contains(local)
        new_value = payload["value"]
        old_value = payload["old_value"]

        if index.constraint_kind == ConstraintKind.UNIQUE:
            kept_value_rowids, patch_values = self._ensure_nuc_state()
            if not was_patch and kept_value_rowids.get(old_value) == rowid:
                del kept_value_rowids[old_value]
            if new_value is not None:
                twin = kept_value_rowids.pop(new_value, None)
                if twin is not None and twin != rowid:
                    self._demote_global_rowids([twin])
                    self.stats.kept_rows_demoted += 1
                patch_values.add(new_value)
        else:
            if not was_patch:
                # The updated row leaves the sorted subsequence; any
                # cached tail snapshot may reference it (and may even
                # have been built after the new value was written), so
                # recompute lazily once the row is in the patch set.
                self._last_kept = None

        if not was_patch:
            patches.add(np.asarray([local], dtype=np.int64))
            self.stats.patches_added += 1
        self.stats.updates_handled += 1
