"""Longest sorted (non-decreasing) subsequence in O(n log n).

NSC discovery (paper §IV) computes the *longest sorted subsequence* of a
column with the classic patience-sorting / binary-search algorithm
attributed to Fredman (1975): for every prefix length ``k`` the
algorithm maintains the smallest possible tail value of a sorted
subsequence of length ``k``, plus predecessor links to reconstruct one
maximum-length subsequence.  Inverting the selected positions yields a
*minimum* set of patches.

The paper's order relation ``⊲`` is arbitrary; we support ascending and
descending, strict and non-strict variants.  The default matches the
paper's evaluation ("we focused on discovering ascending orders") with
duplicates allowed (non-strict), since equal neighboring values do not
violate a sortedness guarantee used by MergeJoin/MergeUnion.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np


def longest_sorted_subsequence_indices(
    values: np.ndarray,
    ascending: bool = True,
    strict: bool = False,
) -> np.ndarray:
    """Return positions (sorted, int64) of one longest sorted subsequence.

    Parameters
    ----------
    values:
        One-dimensional array.  Any dtype with a total order works,
        including ``object`` arrays of strings.
    ascending:
        Direction of the order relation.
    strict:
        When True, require strictly increasing (or decreasing) values;
        when False (default), allow equal consecutive values.

    Notes
    -----
    Runs in ``O(n log n)`` time and ``O(n)`` space.  For numeric input
    the tail search uses :func:`numpy.searchsorted` over a growing tails
    array; for object input it falls back to :mod:`bisect` over a Python
    list.  Ties in length are broken toward the lexicographically
    earliest positions that the classic algorithm produces.
    """
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    keys = values
    if ascending is False:
        # Reduce descending to ascending by negating numerics; for
        # object dtype we flip the comparison inside the bisect wrapper.
        if keys.dtype != np.dtype(object):
            keys = _negate(keys)
            ascending = True

    if keys.dtype == np.dtype(object) or not ascending:
        return _lis_object(keys, ascending=ascending, strict=strict)
    return _lis_numeric(keys, strict=strict)


def _negate(values: np.ndarray) -> np.ndarray:
    """Return an order-reversing transform of a numeric array."""
    if np.issubdtype(values.dtype, np.bool_):
        return ~values
    return -values.astype(np.float64) if values.dtype.kind == "u" else -values


def _lis_numeric(values: np.ndarray, strict: bool) -> np.ndarray:
    """Patience algorithm over a NumPy tails buffer (numeric fast path)."""
    n = len(values)
    tails = np.empty(n, dtype=values.dtype)
    # tail_positions[k] = index into `values` of the element currently
    # ending the best subsequence of length k+1.
    tail_positions = np.empty(n, dtype=np.int64)
    predecessors = np.full(n, -1, dtype=np.int64)
    length = 0
    side = "left" if strict else "right"
    for position in range(n):
        value = values[position]
        slot = int(np.searchsorted(tails[:length], value, side=side))
        tails[slot] = value
        tail_positions[slot] = position
        if slot > 0:
            predecessors[position] = tail_positions[slot - 1]
        if slot == length:
            length += 1
    return _reconstruct(predecessors, int(tail_positions[length - 1]), length)


def _lis_object(values: np.ndarray, ascending: bool, strict: bool) -> np.ndarray:
    """Patience algorithm using bisect (object dtype / descending path)."""
    n = len(values)
    tails: list[object] = []
    tail_positions: list[int] = []
    predecessors = np.full(n, -1, dtype=np.int64)

    if ascending:
        locate = bisect_left if strict else bisect_right
        key = None
    else:
        locate = bisect_left if strict else bisect_right
        key = _ReverseKey

    for position in range(n):
        value = values[position]
        probe = key(value) if key is not None else value
        slot = locate(tails, probe)
        if slot == len(tails):
            tails.append(probe)
            tail_positions.append(position)
        else:
            tails[slot] = probe
            tail_positions[slot] = position
        if slot > 0:
            predecessors[position] = tail_positions[slot - 1]
    return _reconstruct(
        predecessors, tail_positions[len(tails) - 1], len(tails)
    )


class _ReverseKey:
    """Wrapper inverting comparisons, turning descending into ascending."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.value < self.value

    def __le__(self, other: "_ReverseKey") -> bool:
        return other.value <= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseKey) and other.value == self.value


def _reconstruct(
    predecessors: np.ndarray, last_position: int, length: int
) -> np.ndarray:
    """Walk predecessor links backwards and return positions ascending."""
    out = np.empty(length, dtype=np.int64)
    position = last_position
    for slot in range(length - 1, -1, -1):
        out[slot] = position
        position = predecessors[position]
    return out


def longest_sorted_subsequence_length(
    values: np.ndarray, ascending: bool = True, strict: bool = False
) -> int:
    """Length of the longest sorted subsequence (no reconstruction)."""
    return len(
        longest_sorted_subsequence_indices(values, ascending=ascending, strict=strict)
    )
