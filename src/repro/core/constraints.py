"""Formal NUC / NSC definitions and validators (paper §III).

A column ``c`` of relation ``R`` with patch set ``P_c`` is a

- **nearly unique column (NUC)** when
  (NUC1) ``PROJ(R\\P, c)`` is unique,
  (NUC2) ``PROJ(R\\P, c) ∩ PROJ(R_P, c) = ∅``, and
  (NUC3) ``|P_c| / |R| <= nuc_threshold``;
- **nearly sorted column (NSC)** when
  (NSC1) ``R\\P`` is sorted on ``c`` in rowid order under the order
  relation, and
  (NSC2) ``|P_c| / |R| <= nsc_threshold``.

NULL values always belong to the patch set for both constraint kinds.
The validators here are the ground truth used by the test suite
(including property-based tests) to check everything the discovery code
and the maintenance code produce.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.storage.column import ColumnVector


class ConstraintKind(enum.Enum):
    """The two approximate constraints handled by the PatchIndex."""

    UNIQUE = "unique"
    SORTED = "sorted"

    @classmethod
    def from_name(cls, name: str) -> "ConstraintKind":
        return cls(name.strip().lower())


def exception_rate(patch_count: int, row_count: int) -> float:
    """``|P_c| / |R|`` with the empty-relation convention of 0.0."""
    if row_count == 0:
        return 0.0
    return patch_count / row_count


def _split(column: ColumnVector, patch_rowids: np.ndarray):
    """Split a column into (kept values, patch values, kept validity, patch validity)."""
    is_patch = np.zeros(len(column), dtype=np.bool_)
    is_patch[patch_rowids] = True
    kept = column.filter(~is_patch)
    patched = column.filter(is_patch)
    return kept, patched


def check_nuc(
    column: ColumnVector,
    patch_rowids: np.ndarray,
    threshold: float = 1.0,
) -> bool:
    """Validate conditions NUC1–NUC3 for a proposed patch set."""
    patch_rowids = np.asarray(patch_rowids, dtype=np.int64)
    if exception_rate(len(patch_rowids), len(column)) > threshold:
        return False  # NUC3
    kept, patched = _split(column, patch_rowids)
    if kept.has_nulls:
        return False  # NULLs must be patches
    kept_values = kept.values
    if len(kept_values) != len(set(kept_values.tolist())):
        return False  # NUC1
    if patched.validity is None:
        patched_values = patched.values
    else:
        patched_values = patched.values[patched.validity]
    kept_set = set(kept_values.tolist())
    if any(value in kept_set for value in patched_values.tolist()):
        return False  # NUC2
    return True


def check_nsc(
    column: ColumnVector,
    patch_rowids: np.ndarray,
    threshold: float = 1.0,
    ascending: bool = True,
    strict: bool = False,
) -> bool:
    """Validate conditions NSC1–NSC2 for a proposed patch set."""
    patch_rowids = np.asarray(patch_rowids, dtype=np.int64)
    if exception_rate(len(patch_rowids), len(column)) > threshold:
        return False  # NSC2
    kept, __ = _split(column, patch_rowids)
    if kept.has_nulls:
        return False  # NULLs must be patches
    return values_are_sorted(kept.values, ascending=ascending, strict=strict)


def values_are_sorted(
    values: np.ndarray, ascending: bool = True, strict: bool = False
) -> bool:
    """True when *values* is sorted under the given order relation."""
    if len(values) < 2:
        return True
    if values.dtype == np.dtype(object):
        pairs = zip(values[:-1], values[1:])
        if ascending and strict:
            return all(a < b for a, b in pairs)
        if ascending:
            return all(a <= b for a, b in pairs)
        if strict:
            return all(a > b for a, b in pairs)
        return all(a >= b for a, b in pairs)
    left, right = values[:-1], values[1:]
    if ascending and strict:
        return bool((left < right).all())
    if ascending:
        return bool((left <= right).all())
    if strict:
        return bool((left > right).all())
    return bool((left >= right).all())
