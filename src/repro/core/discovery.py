"""Discovery of approximate constraints (paper §IV).

NUC discovery mirrors the paper's SQL-level approach — a grouping of the
column joined back against the table so that *all* occurrences of a
duplicated value become patches (condition NUC2), with NULLs always
assigned to the patch set.  Here the grouping+join is evaluated directly
with a vectorized unique/count, which computes the identical patch set;
:func:`nuc_discovery_sql` renders the paper's actual SQL text for
integration with external self-management tools.

NSC discovery computes the longest sorted subsequence (Fredman 1975,
``O(n log n)``) and inverts it, which yields a *minimum* patch set;
NULLs are assigned to the patch set to keep sorting queries correct.

Table-level discovery follows §VI-A2 partition semantics:

- NSC: the sorted subsequence is computed *per partition*, so sorts and
  MergeJoins can be evaluated partition-locally.
- NUC: the grouping is *global* (a value duplicated across partitions is
  still a duplicate); each partition then receives the patches falling
  into its rowid range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.constraints import ConstraintKind, exception_rate
from repro.core.lis import longest_sorted_subsequence_indices
from repro.storage.column import ColumnVector
from repro.storage.table import Table


@dataclass(frozen=True)
class DiscoveryResult:
    """Outcome of a discovery run over a (partitioned) column.

    ``per_partition_rowids`` holds partition-local patch rowids, one
    sorted int64 array per partition in partition order.
    """

    kind: ConstraintKind
    row_count: int
    per_partition_rowids: list[np.ndarray] = field(repr=False)
    partition_row_counts: list[int] = field(repr=False)

    @property
    def patch_count(self) -> int:
        return sum(len(rowids) for rowids in self.per_partition_rowids)

    @property
    def exception_rate(self) -> float:
        return exception_rate(self.patch_count, self.row_count)

    def global_rowids(self) -> np.ndarray:
        """All patch rowids in the table-global rowid space, ascending."""
        pieces: list[np.ndarray] = []
        base = 0
        for rowids, rows in zip(
            self.per_partition_rowids, self.partition_row_counts
        ):
            pieces.append(rowids + base)
            base += rows
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def satisfies(self, threshold: float) -> bool:
        """NUC3 / NSC2: is the exception rate within *threshold*?"""
        return self.exception_rate <= threshold


# -- column-level discovery --------------------------------------------------


def discover_nuc_patches(column: ColumnVector) -> np.ndarray:
    """Patch rowids making *column* unique: duplicates (all occurrences)
    plus NULLs.  Returned sorted ascending."""
    n = len(column)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    validity = column.validity_or_all_true()
    is_patch = ~validity
    valid_positions = np.flatnonzero(validity)
    if len(valid_positions):
        valid_values = column.values[valid_positions]
        __, inverse, counts = np.unique(
            valid_values, return_inverse=True, return_counts=True
        )
        duplicated = counts[inverse] > 1
        is_patch[valid_positions[duplicated]] = True
    return np.flatnonzero(is_patch).astype(np.int64)


def discover_nsc_patches(
    column: ColumnVector,
    ascending: bool = True,
    strict: bool = False,
) -> np.ndarray:
    """Minimum patch rowids making *column* sorted, via longest sorted
    subsequence; NULLs are always patches.  Returned sorted ascending."""
    n = len(column)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    validity = column.validity_or_all_true()
    valid_positions = np.flatnonzero(validity)
    keep = np.zeros(n, dtype=np.bool_)
    if len(valid_positions):
        subsequence = longest_sorted_subsequence_indices(
            column.values[valid_positions], ascending=ascending, strict=strict
        )
        keep[valid_positions[subsequence]] = True
    return np.flatnonzero(~keep).astype(np.int64)


# -- table-level discovery (partition semantics, §VI-A2) -------------------------


def discover_table_nuc(table: Table, column_name: str) -> DiscoveryResult:
    """NUC discovery with a global grouping, split per partition."""
    full_column = table.read_column(column_name)
    global_patches = discover_nuc_patches(full_column)
    per_partition: list[np.ndarray] = []
    row_counts: list[int] = []
    for partition in table.partitions:
        start, stop = partition.rowid_range
        lo = int(np.searchsorted(global_patches, start, side="left"))
        hi = int(np.searchsorted(global_patches, stop, side="left"))
        per_partition.append(global_patches[lo:hi] - start)
        row_counts.append(partition.row_count)
    return DiscoveryResult(
        ConstraintKind.UNIQUE, table.row_count, per_partition, row_counts
    )


def discover_table_nsc(
    table: Table,
    column_name: str,
    ascending: bool = True,
    strict: bool = False,
    scope: str = "global",
) -> DiscoveryResult:
    """NSC discovery, with selectable sortedness scope.

    ``scope="partition"`` is the paper's §VI-A2 design: the longest
    sorted subsequence is computed per partition, so the exclude stream
    of each partition is an independently sorted run — the right choice
    for partition-parallel execution where an exchange merges streams.

    ``scope="global"`` (default here) computes one subsequence across
    the whole table in rowid order, so the exclude stream is *globally*
    sorted.  In this serial engine that is the performance-equivalent
    realization: there is no parallel exchange to absorb the run merge,
    and a globally sorted exclude stream feeds MergeUnion/MergeJoin
    directly.  Patches are still stored partition-locally.
    """
    if scope not in ("global", "partition"):
        raise ValueError(f"unknown NSC scope {scope!r}")
    row_counts = [partition.row_count for partition in table.partitions]
    if scope == "partition":
        per_partition = [
            discover_nsc_patches(
                partition.column(column_name), ascending=ascending, strict=strict
            )
            for partition in table.partitions
        ]
        return DiscoveryResult(
            ConstraintKind.SORTED, table.row_count, per_partition, row_counts
        )
    global_patches = discover_nsc_patches(
        table.read_column(column_name), ascending=ascending, strict=strict
    )
    per_partition = []
    for partition in table.partitions:
        start, stop = partition.rowid_range
        lo = int(np.searchsorted(global_patches, start, side="left"))
        hi = int(np.searchsorted(global_patches, stop, side="left"))
        per_partition.append(global_patches[lo:hi] - start)
    return DiscoveryResult(
        ConstraintKind.SORTED, table.row_count, per_partition, row_counts
    )


def discover(
    table: Table,
    column_name: str,
    kind: ConstraintKind | str,
    ascending: bool = True,
    strict: bool = False,
    scope: str = "global",
) -> DiscoveryResult:
    """Dispatch to the NUC or NSC table-level discovery."""
    if isinstance(kind, str):
        kind = ConstraintKind.from_name(kind)
    if kind == ConstraintKind.UNIQUE:
        return discover_table_nuc(table, column_name)
    return discover_table_nsc(
        table, column_name, ascending=ascending, strict=strict, scope=scope
    )


def nuc_discovery_sql(table_name: str, column_name: str) -> str:
    """The paper's SQL-level NUC discovery query (§IV), verbatim shape.

    Returns the tuple identifiers of all tuples whose value for
    *column_name* is duplicated or NULL.
    """
    return (
        f"select {table_name}.tid from {table_name}\n"
        f"left outer join\n"
        f"        (select {column_name} from {table_name}\n"
        f"        group by {column_name}\n"
        f"        having count(*) > 1)\n"
        f"        as temp\n"
        f"on {table_name}.{column_name} = temp.{column_name}\n"
        f"where temp.{column_name} is not null\n"
        f"or {table_name}.{column_name} is null"
    )
