"""Self-management: automatic discovery and creation of PatchIndexes.

The paper positions PatchIndexes as the piece that lets self-managing
tools define constraints on *unclean* data (§I): where exact-constraint
discovery fails because a handful of tuples violate uniqueness or
sortedness, approximate constraints still capture the information.

:class:`ConstraintAdvisor` is that tool: it profiles candidate columns,
measures NUC/NSC exception rates (optionally on a row sample first, to
cheaply prune hopeless candidates), ranks the survivors by estimated
query-time benefit using the :class:`~repro.core.cost_model.CostModel`,
and can create the chosen PatchIndexes through the
:class:`~repro.storage.database.Database` DDL path (so creation is
WAL-logged like any user-issued DDL).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import ConstraintKind
from repro.core.cost_model import CostModel
from repro.core.discovery import (
    discover_nsc_patches,
    discover_nuc_patches,
    discover_table_nsc,
    discover_table_nuc,
)
from repro.core.patches import CROSSOVER_RATE
from repro.storage.database import Database
from repro.storage.table import Table
from repro.types import is_orderable


@dataclass(frozen=True)
class AdvisorProposal:
    """One recommended PatchIndex."""

    table_name: str
    column_name: str
    kind: ConstraintKind
    exception_rate: float
    patch_count: int
    row_count: int
    recommended_design: str
    estimated_speedup: float
    #: Measured scan selectivity of the table from profiled queries
    #: (EWMA, see :class:`repro.obs.feedback.CardinalityFeedback`);
    #: ``None`` when the workload has not been profiled.
    observed_selectivity: float | None = None

    @property
    def index_name(self) -> str:
        suffix = "nuc" if self.kind == ConstraintKind.UNIQUE else "nsc"
        return f"pidx_{self.table_name}_{self.column_name}_{suffix}"

    def describe(self) -> str:
        base = (
            f"{self.table_name}.{self.column_name}: {self.kind.value} "
            f"rate={self.exception_rate:.2%} design={self.recommended_design} "
            f"est. speedup {self.estimated_speedup:.2f}x"
        )
        if self.observed_selectivity is not None:
            base += f" (observed scan selectivity {self.observed_selectivity:.2%})"
        return base


class ConstraintAdvisor:
    """Profiles tables and proposes/creates PatchIndexes."""

    def __init__(
        self,
        database: Database,
        *,
        nuc_threshold: float = 0.1,
        nsc_threshold: float = 0.1,
        sample_rows: int | None = 100_000,
        cost_model: CostModel | None = None,
        min_speedup: float = 1.05,
        feedback=None,
    ):
        """
        Parameters (all keyword-only)
        ----------
        nuc_threshold / nsc_threshold:
            The paper's threshold variables: columns whose exception
            rate exceeds them are not NUC/NSC candidates.
        sample_rows:
            When a table is larger than this, candidate pruning first
            estimates the rate on a contiguous-block sample and drops
            candidates whose *sampled* rate already exceeds twice the
            threshold; ``None`` disables sampling.
        min_speedup:
            Proposals whose cost-model speedup estimate for the
            representative query falls below this are dropped.
        feedback:
            A :class:`~repro.obs.feedback.CardinalityFeedback` with
            measured scan selectivities from profiled queries; defaults
            to the database's own.  Cost-model row counts are scaled by
            the observed selectivity, so a table the workload reads at
            2% selectivity is not costed as if queries materialized all
            of it.
        """
        self.database = database
        self.nuc_threshold = nuc_threshold
        self.nsc_threshold = nsc_threshold
        self.sample_rows = sample_rows
        self.cost_model = cost_model or CostModel()
        self.min_speedup = min_speedup
        self.feedback = (
            feedback if feedback is not None else getattr(database, "feedback", None)
        )

    # -- profiling -------------------------------------------------------

    def analyze_table(
        self,
        table_name: str,
        columns: list[str] | None = None,
    ) -> list[AdvisorProposal]:
        """Profile one table and return ranked proposals."""
        table = self.database.table(table_name)
        names = list(columns) if columns is not None else list(table.schema.names)
        proposals: list[AdvisorProposal] = []
        for name in names:
            proposals.extend(self._analyze_column(table, name))
        proposals.sort(key=lambda proposal: -proposal.estimated_speedup)
        return proposals

    def analyze_all(self) -> list[AdvisorProposal]:
        """Profile every table in the catalog."""
        proposals: list[AdvisorProposal] = []
        for name in self.database.catalog.table_names():
            proposals.extend(self.analyze_table(name))
        proposals.sort(key=lambda proposal: -proposal.estimated_speedup)
        return proposals

    def _analyze_column(self, table: Table, name: str) -> list[AdvisorProposal]:
        field = table.schema.field(name)
        rows = table.row_count
        if rows == 0:
            return []
        effective_rows, selectivity = self._effective_rows(table)
        out: list[AdvisorProposal] = []
        if self._worth_full_scan(table, name, ConstraintKind.UNIQUE):
            result = discover_table_nuc(table, name)
            rate = result.exception_rate
            if rate <= self.nuc_threshold:
                estimate = self.cost_model.distinct(
                    effective_rows, self._scale(result.patch_count, selectivity)
                )
                if estimate.speedup >= self.min_speedup:
                    out.append(
                        self._proposal(table, name, ConstraintKind.UNIQUE, result, estimate.speedup, selectivity)
                    )
        if is_orderable(field.dtype) and self._worth_full_scan(
            table, name, ConstraintKind.SORTED
        ):
            result = discover_table_nsc(table, name)
            rate = result.exception_rate
            if rate <= self.nsc_threshold:
                estimate = self.cost_model.sort(
                    effective_rows, self._scale(result.patch_count, selectivity)
                )
                if estimate.speedup >= self.min_speedup:
                    out.append(
                        self._proposal(table, name, ConstraintKind.SORTED, result, estimate.speedup, selectivity)
                    )
        return out

    def _effective_rows(self, table: Table) -> tuple[int, float | None]:
        """Cost-model row count scaled by observed scan selectivity.

        With no profiled observations for the table, the full row count
        is used — exactly the pre-feedback behaviour.
        """
        rows = table.row_count
        if self.feedback is None:
            return rows, None
        selectivity = self.feedback.selectivity(table.name)
        if selectivity is None:
            return rows, None
        return max(1, round(rows * selectivity)), selectivity

    @staticmethod
    def _scale(count: int, selectivity: float | None) -> int:
        if selectivity is None:
            return count
        return min(count, max(0, round(count * selectivity)))

    def _proposal(
        self, table, name, kind, result, speedup, selectivity=None
    ) -> AdvisorProposal:
        rate = result.exception_rate
        return AdvisorProposal(
            table_name=table.name,
            column_name=name,
            kind=kind,
            exception_rate=rate,
            patch_count=result.patch_count,
            row_count=result.row_count,
            recommended_design="identifier" if rate <= CROSSOVER_RATE else "bitmap",
            estimated_speedup=speedup,
            observed_selectivity=selectivity,
        )

    def _worth_full_scan(
        self, table: Table, name: str, kind: ConstraintKind
    ) -> bool:
        """Sample-based candidate pruning (cheap upper-level filter).

        Samples a contiguous prefix block of each partition.  For NUC the
        sampled duplicate rate *underestimates* the global rate, so the
        filter only prunes when the sample alone already exceeds twice
        the threshold; for NSC a contiguous block's disorder rate is an
        unbiased local signal, pruned with the same slack.
        """
        if self.sample_rows is None or table.row_count <= self.sample_rows:
            return True
        per_partition = max(1, self.sample_rows // table.partition_count)
        threshold = (
            self.nuc_threshold
            if kind == ConstraintKind.UNIQUE
            else self.nsc_threshold
        )
        sampled = 0
        patched = 0
        for partition in table.partitions:
            take = min(per_partition, partition.row_count)
            if take == 0:
                continue
            chunk = partition.column(name).slice(0, take)
            if kind == ConstraintKind.UNIQUE:
                patched += len(discover_nuc_patches(chunk))
            else:
                patched += len(discover_nsc_patches(chunk))
            sampled += take
        if sampled == 0:
            return True
        return patched / sampled <= 2 * threshold

    # -- enactment ------------------------------------------------------------

    def apply(self, proposals: list[AdvisorProposal]) -> list[str]:
        """Create the proposed PatchIndexes (skipping ones that exist).

        Returns the names of the indexes actually created.
        """
        created: list[str] = []
        for proposal in proposals:
            existing = self.database.catalog.find_index(
                proposal.table_name, proposal.column_name, proposal.kind.value
            )
            if existing is not None:
                continue
            threshold = (
                self.nuc_threshold
                if proposal.kind == ConstraintKind.UNIQUE
                else self.nsc_threshold
            )
            self.database.create_patch_index(
                proposal.index_name,
                proposal.table_name,
                proposal.column_name,
                kind=proposal.kind.value,
                mode="auto",
                threshold=threshold,
            )
            created.append(proposal.index_name)
        return created

    def run(self) -> list[str]:
        """One full self-management cycle: analyze everything, apply."""
        return self.apply(self.analyze_all())

    # -- index upkeep ----------------------------------------------------------

    def recommend_rebuilds(self, max_drift: float | None = None) -> list[str]:
        """Indexes whose conservative maintenance drifted past *max_drift*.

        Incremental maintenance keeps patch sets correct but not
        minimal (see :mod:`repro.core.maintenance`); once the drift — the
        fraction of rows the maintainer demoted — exceeds the threshold,
        a rebuild restores minimality.  *max_drift* defaults to the
        database's ``maintenance.rebuild_threshold`` knob, so the
        advisor and the background sweep agree on what "drifted" means.
        """
        if max_drift is None:
            max_drift = getattr(self.database, "rebuild_threshold", 0.02)
        return [
            index.name
            for index in self.database.catalog.indexes()
            if index.drift_rate() > max_drift
        ]

    def rebuild_drifted(self, max_drift: float | None = None) -> list[str]:
        """Rebuild every index past the drift threshold; returns names."""
        names = self.recommend_rebuilds(max_drift)
        for name in names:
            self.database.catalog.index(name).rebuild()
        return names
