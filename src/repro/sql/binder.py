"""Binder: resolve a parsed SELECT against the catalog into a logical plan.

Naming model
------------
For single-source queries, columns keep their base names, so the
optimizer's pipeline matcher sees base column names directly.  As soon
as a query has joins, every source is wrapped in a rename-only
projection mapping ``col`` to ``alias.col``; collisions become
impossible and the pipeline matcher still recovers base columns through
its rename tracking.

The virtual ``tid`` column (tuple identifiers, used by the paper's NUC
discovery query) is materialized on a scan whenever the query
references it.

Aggregation queries are normalized into::

    Project(final expressions)
      [Filter(HAVING)]
        Aggregate(group keys, collected aggregate calls)
          <bound FROM/WHERE subtree>

with every distinct aggregate call assigned a stable internal alias so
that SELECT, HAVING and ORDER BY can all refer to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindError
from repro.exec import expressions as ex
from repro.exec.operators.aggregate import AggregateSpec
from repro.exec.operators.scan import TID_COLUMN
from repro.exec.operators.sort import SortKey
from repro.plan import logical as lp
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.types import DataType


@dataclass
class _Source:
    """One bound FROM item."""

    binding: str  # alias or table name
    plan: lp.LogicalPlan
    columns: list[str]  # column names as visible inside this source
    qualified: bool  # True when plan outputs "binding.col" names

    def output_name(self, column: str) -> str:
        return f"{self.binding}.{column}" if self.qualified else column


class _Scope:
    """Column resolution over the bound sources of one SELECT."""

    def __init__(self, sources: list[_Source]):
        self.sources = sources

    def resolve(self, column: ast.SqlColumn) -> str:
        """Resolve to the bound (possibly qualified) output name."""
        matches: list[str] = []
        for source in self.sources:
            if column.qualifier is not None and source.binding != column.qualifier:
                continue
            if column.name in source.columns:
                matches.append(source.output_name(column.name))
        if not matches:
            raise BindError(f"unknown column: {column.display()}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column: {column.display()}")
        return matches[0]


class Binder:
    """Bind parsed SELECT statements to logical plans."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- entry point ------------------------------------------------------

    def bind_select(self, select: ast.SqlSelect) -> lp.LogicalPlan:
        if select.from_table is None:
            raise BindError("SELECT without FROM is not supported")
        referenced = _collect_columns(select)
        sources = [self._bind_source(select.from_table, select, referenced)]
        qualified = bool(select.joins)
        if qualified:
            sources[0] = self._qualify(sources[0])
        plan = sources[0].plan
        for join in select.joins:
            source = self._qualify(
                self._bind_source(join.table, select, referenced)
            )
            plan = self._bind_join(plan, sources, source, join)
            sources.append(source)
        scope = _Scope(sources)
        # The running plan replaces each source's individual plan for
        # expression binding purposes.
        if select.where is not None:
            plan = lp.LogicalFilter(
                plan, self._bind_expr(select.where, scope, plan)
            )
        has_aggregates = (
            bool(select.group_by)
            or _has_aggregate(select.items)
            or (select.having is not None)
        )
        if has_aggregates:
            plan, output_names = self._bind_aggregate_query(select, scope, plan)
        else:
            plan, output_names = self._bind_plain_select(select, scope, plan)
        if select.distinct:
            plan = lp.LogicalDistinct(plan)
        if select.order_by:
            plan = lp.LogicalSort(
                plan, tuple(self._bind_order(select, item, plan) for item in select.order_by)
            )
        if select.limit is not None:
            plan = lp.LogicalLimit(plan, select.limit, select.offset)
        del output_names
        return plan

    # -- FROM -----------------------------------------------------------------

    def _bind_source(
        self,
        table_ref: ast.SqlTableRef,
        select: ast.SqlSelect,
        referenced: list[ast.SqlColumn],
    ) -> _Source:
        if isinstance(table_ref, ast.SqlNamedTable):
            table = self.catalog.table(table_ref.name)
            binding = table_ref.binding_name
            with_tid = _references_tid(referenced, binding, table.schema.names)
            # Projection pushdown: scan only the columns the query can
            # possibly touch (SELECT * keeps everything).
            if select.items:
                needed = {
                    column.name
                    for column in referenced
                    if column.qualifier is None or column.qualifier == binding
                }
                projected = tuple(
                    name for name in table.schema.names if name in needed
                )
                if not projected:
                    # Keep at least one column so the scan yields rows
                    # (e.g. SELECT COUNT(*) FROM t).
                    projected = (table.schema.names[0],)
            else:
                projected = None
            scan = lp.LogicalScan(table, projected, with_tid=with_tid)
            columns = (
                list(projected)
                if projected is not None
                else list(table.schema.names)
            )
            if with_tid:
                columns.append(TID_COLUMN)
            return _Source(binding, scan, columns, qualified=False)
        if isinstance(table_ref, ast.SqlDerivedTable):
            subplan = self.bind_select(table_ref.query)
            return _Source(
                table_ref.alias,
                subplan,
                list(subplan.schema.names),
                qualified=False,
            )
        raise BindError(f"unsupported FROM item: {table_ref!r}")

    @staticmethod
    def _qualify(source: _Source) -> _Source:
        """Wrap a source so its outputs are named ``binding.col``."""
        if source.qualified:
            return source
        outputs = tuple(
            (f"{source.binding}.{name}", ex.ColumnRef(name))
            for name in source.columns
        )
        return _Source(
            source.binding,
            lp.LogicalProject(source.plan, outputs),
            source.columns,
            qualified=True,
        )

    def _bind_join(
        self,
        plan: lp.LogicalPlan,
        bound_sources: list[_Source],
        new_source: _Source,
        join: ast.SqlJoinClause,
    ) -> lp.LogicalPlan:
        left_scope = _Scope(bound_sources)
        right_scope = _Scope([new_source])
        left_key, right_key = self._resolve_join_keys(
            join, left_scope, right_scope
        )
        return lp.LogicalJoin(
            plan, new_source.plan, left_key, right_key, join.kind
        )

    @staticmethod
    def _resolve_join_keys(
        join: ast.SqlJoinClause, left_scope: _Scope, right_scope: _Scope
    ) -> tuple[str, str]:
        """Assign the two ON columns to the correct join sides."""

        def try_resolve(scope: _Scope, column: ast.SqlColumn) -> str | None:
            try:
                return scope.resolve(column)
            except BindError:
                return None

        first_left = try_resolve(left_scope, join.on_left)
        first_right = try_resolve(right_scope, join.on_left)
        second_left = try_resolve(left_scope, join.on_right)
        second_right = try_resolve(right_scope, join.on_right)
        if first_left is not None and second_right is not None:
            return first_left, second_right
        if second_left is not None and first_right is not None:
            return second_left, first_right
        raise BindError(
            f"cannot resolve join condition "
            f"{join.on_left.display()} = {join.on_right.display()}"
        )

    # -- plain (non-aggregate) SELECT ---------------------------------------------

    def _bind_plain_select(
        self,
        select: ast.SqlSelect,
        scope: _Scope,
        plan: lp.LogicalPlan,
    ) -> tuple[lp.LogicalPlan, list[str]]:
        if not select.items:  # SELECT *
            return plan, list(plan.schema.names)
        outputs: list[tuple[str, ex.Expression]] = []
        used: set[str] = set()
        for position, item in enumerate(select.items):
            expression = self._bind_expr(item.expression, scope, plan)
            name = _output_name(item, position, used)
            outputs.append((name, expression))
        return lp.LogicalProject(plan, tuple(outputs)), [
            name for name, __ in outputs
        ]

    # -- aggregation ------------------------------------------------------------------

    def _bind_aggregate_query(
        self,
        select: ast.SqlSelect,
        scope: _Scope,
        plan: lp.LogicalPlan,
    ) -> tuple[lp.LogicalPlan, list[str]]:
        group_names = [scope.resolve(column) for column in select.group_by]
        # Collect every distinct aggregate call across SELECT / HAVING /
        # ORDER BY and give each a stable internal alias.
        calls: dict[ast.SqlAggregate, str] = {}
        for item in select.items:
            _collect_aggregates(item.expression, calls)
        if select.having is not None:
            _collect_aggregates(select.having, calls)
        for order in select.order_by:
            _collect_aggregates(order.expression, calls)
        if not calls and not group_names:
            raise BindError("aggregate query without aggregates or GROUP BY")
        specs: list[AggregateSpec] = []
        for call, alias in calls.items():
            specs.append(self._aggregate_spec(call, alias, scope))
        aggregate = lp.LogicalAggregate(plan, tuple(group_names), tuple(specs))
        current: lp.LogicalPlan = aggregate
        agg_scope = _AggScope(group_names, calls, aggregate)
        if select.having is not None:
            current = lp.LogicalFilter(
                current, self._bind_agg_expr(select.having, agg_scope)
            )
        if not select.items:
            raise BindError("aggregate queries require an explicit SELECT list")
        outputs: list[tuple[str, ex.Expression]] = []
        used: set[str] = set()
        for position, item in enumerate(select.items):
            expression = self._bind_agg_expr(item.expression, agg_scope)
            name = _output_name(item, position, used)
            outputs.append((name, expression))
        return lp.LogicalProject(current, tuple(outputs)), [
            name for name, __ in outputs
        ]

    def _aggregate_spec(
        self, call: ast.SqlAggregate, alias: str, scope: _Scope
    ) -> AggregateSpec:
        if call.argument is None:
            return AggregateSpec("count_star", None, alias)
        column = scope.resolve(call.argument)
        if call.func == "count" and call.distinct:
            return AggregateSpec("count_distinct", column, alias)
        if call.distinct:
            raise BindError(f"DISTINCT is only supported inside COUNT")
        return AggregateSpec(call.func, column, alias)

    def _bind_agg_expr(
        self, expression: ast.SqlExpr, agg_scope: "_AggScope"
    ) -> ex.Expression:
        """Bind an expression over aggregate outputs and group keys."""
        if isinstance(expression, ast.SqlAggregate):
            return ex.ColumnRef(agg_scope.alias_of(expression))
        if isinstance(expression, ast.SqlColumn):
            return ex.ColumnRef(agg_scope.resolve_group_column(expression))
        if isinstance(expression, ast.SqlLiteral):
            return self._bind_literal(expression, None)
        if isinstance(expression, ast.SqlBinary):
            return self._combine_binary(
                expression,
                self._bind_agg_expr(expression.left, agg_scope),
                self._bind_agg_expr(expression.right, agg_scope),
                agg_scope.schema,
            )
        if isinstance(expression, ast.SqlNot):
            return ex.Not(self._bind_agg_expr(expression.operand, agg_scope))
        if isinstance(expression, ast.SqlIsNull):
            return ex.IsNull(
                self._bind_agg_expr(expression.operand, agg_scope),
                expression.negated,
            )
        if isinstance(expression, ast.SqlIn):
            return self._bind_in(
                self._bind_agg_expr(expression.operand, agg_scope), expression
            )
        if isinstance(expression, ast.SqlBetween):
            return self._bind_between(
                expression,
                lambda sub: self._bind_agg_expr(sub, agg_scope),
                agg_scope.schema,
            )
        raise BindError(f"unsupported expression: {expression!r}")

    # -- scalar expression binding -------------------------------------------------------

    def _bind_expr(
        self,
        expression: ast.SqlExpr,
        scope: _Scope,
        plan: lp.LogicalPlan,
    ) -> ex.Expression:
        if isinstance(expression, ast.SqlColumn):
            return ex.ColumnRef(scope.resolve(expression))
        if isinstance(expression, ast.SqlLiteral):
            return self._bind_literal(expression, None)
        if isinstance(expression, ast.SqlBinary):
            left = self._bind_expr(expression.left, scope, plan)
            right = self._bind_expr(expression.right, scope, plan)
            return self._combine_binary(expression, left, right, plan.schema)
        if isinstance(expression, ast.SqlNot):
            return ex.Not(self._bind_expr(expression.operand, scope, plan))
        if isinstance(expression, ast.SqlIsNull):
            return ex.IsNull(
                self._bind_expr(expression.operand, scope, plan),
                expression.negated,
            )
        if isinstance(expression, ast.SqlIn):
            return self._bind_in(
                self._bind_expr(expression.operand, scope, plan), expression
            )
        if isinstance(expression, ast.SqlBetween):
            return self._bind_between(
                expression,
                lambda sub: self._bind_expr(sub, scope, plan),
                plan.schema,
            )
        if isinstance(expression, ast.SqlAggregate):
            raise BindError(
                f"aggregate {expression.display()} not allowed here"
            )
        raise BindError(f"unsupported expression: {expression!r}")

    @staticmethod
    def _bind_in(operand: ex.Expression, expression: ast.SqlIn) -> ex.Expression:
        import datetime as _dt

        from repro.types.datatypes import date_to_days

        values = tuple(
            date_to_days(value)
            if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime)
            else value
            for value in expression.values
        )
        return ex.InList(operand, values, expression.negated)

    def _bind_between(
        self, expression: ast.SqlBetween, bind, schema
    ) -> ex.Expression:
        operand = bind(expression.operand)
        low = self._retype_null(bind(expression.low), operand, schema)
        high = self._retype_null(bind(expression.high), operand, schema)
        inside = ex.And(
            ex.Comparison(">=", operand, low),
            ex.Comparison("<=", operand, high),
        )
        return ex.Not(inside) if expression.negated else inside

    def _combine_binary(
        self,
        expression: ast.SqlBinary,
        left: ex.Expression,
        right: ex.Expression,
        schema,
    ) -> ex.Expression:
        op = expression.op
        if op == "and":
            return ex.And(left, right)
        if op == "or":
            return ex.Or(left, right)
        if op in ("+", "-", "*", "/"):
            return ex.Arithmetic(op, left, right)
        # Comparison: give untyped NULL literals the other side's type.
        left = self._retype_null(left, right, schema)
        right = self._retype_null(right, left, schema)
        return ex.Comparison(op, left, right)

    @staticmethod
    def _retype_null(
        candidate: ex.Expression, other: ex.Expression, schema
    ) -> ex.Expression:
        if (
            isinstance(candidate, ex.Literal)
            and candidate.value is None
            and candidate.dtype is None
        ):
            return ex.Literal(None, other.output_type(schema))
        return candidate

    @staticmethod
    def _bind_literal(
        literal: ast.SqlLiteral, dtype: DataType | None
    ) -> ex.Expression:
        if literal.value is None:
            return ex.Literal(None, dtype)
        return ex.literal(literal.value)

    # -- ORDER BY ---------------------------------------------------------------------------

    def _bind_order(
        self,
        select: ast.SqlSelect,
        item: ast.SqlOrderItem,
        plan: lp.LogicalPlan,
    ) -> SortKey:
        expression = item.expression
        if not isinstance(expression, ast.SqlColumn):
            raise BindError("ORDER BY supports column references only")
        names = plan.schema.names
        candidates = [
            name
            for name in names
            if name == expression.name
            or name == f"{expression.qualifier}.{expression.name}"
            or (expression.qualifier is None and name.endswith(f".{expression.name}"))
        ]
        if not candidates:
            raise BindError(
                f"ORDER BY column {expression.display()} is not in the output"
            )
        if len(candidates) > 1:
            raise BindError(f"ambiguous ORDER BY column {expression.display()}")
        return SortKey(candidates[0], item.ascending)


class _AggScope:
    """Resolution scope above an aggregation."""

    def __init__(
        self,
        group_names: list[str],
        calls: dict[ast.SqlAggregate, str],
        aggregate: lp.LogicalAggregate,
    ):
        self._group_names = group_names
        self._calls = calls
        self.schema = aggregate.schema

    def alias_of(self, call: ast.SqlAggregate) -> str:
        try:
            return self._calls[call]
        except KeyError:  # pragma: no cover - collected beforehand
            raise BindError(f"aggregate {call.display()} was not collected")

    def resolve_group_column(self, column: ast.SqlColumn) -> str:
        matches = [
            name
            for name in self._group_names
            if name == column.name
            or name == f"{column.qualifier}.{column.name}"
            or (column.qualifier is None and name.endswith(f".{column.name}"))
        ]
        if not matches:
            raise BindError(
                f"column {column.display()} must appear in GROUP BY"
            )
        if len(matches) > 1:
            raise BindError(f"ambiguous column {column.display()}")
        return matches[0]


# -- AST walking helpers -------------------------------------------------------------


def _collect_columns(select: ast.SqlSelect) -> list[ast.SqlColumn]:
    """All column references in one SELECT (not descending into derived
    tables — those bind in their own scope)."""
    found: list[ast.SqlColumn] = []

    def walk(expression: ast.SqlExpr | None) -> None:
        if expression is None:
            return
        if isinstance(expression, ast.SqlColumn):
            found.append(expression)
        elif isinstance(expression, ast.SqlBinary):
            walk(expression.left)
            walk(expression.right)
        elif isinstance(expression, ast.SqlNot):
            walk(expression.operand)
        elif isinstance(expression, ast.SqlIsNull):
            walk(expression.operand)
        elif isinstance(expression, ast.SqlIn):
            walk(expression.operand)
        elif isinstance(expression, ast.SqlBetween):
            walk(expression.operand)
            walk(expression.low)
            walk(expression.high)
        elif isinstance(expression, ast.SqlAggregate):
            if expression.argument is not None:
                found.append(expression.argument)

    for item in select.items:
        walk(item.expression)
    for join in select.joins:
        found.append(join.on_left)
        found.append(join.on_right)
    walk(select.where)
    found.extend(select.group_by)
    walk(select.having)
    for order in select.order_by:
        walk(order.expression)
    return found


def _references_tid(
    referenced: list[ast.SqlColumn],
    binding: str,
    table_columns: tuple[str, ...],
) -> bool:
    if TID_COLUMN in table_columns:
        return False  # a real column shadows the virtual one
    for column in referenced:
        if column.name != TID_COLUMN:
            continue
        if column.qualifier is None or column.qualifier == binding:
            return True
    return False


def _has_aggregate(items: tuple[ast.SqlSelectItem, ...]) -> bool:
    def walk(expression: ast.SqlExpr) -> bool:
        if isinstance(expression, ast.SqlAggregate):
            return True
        if isinstance(expression, ast.SqlBinary):
            return walk(expression.left) or walk(expression.right)
        if isinstance(expression, ast.SqlNot):
            return walk(expression.operand)
        if isinstance(expression, ast.SqlIsNull):
            return walk(expression.operand)
        if isinstance(expression, (ast.SqlIn, ast.SqlBetween)):
            return walk(expression.operand)
        return False

    return any(walk(item.expression) for item in items)


def _collect_aggregates(
    expression: ast.SqlExpr, calls: dict[ast.SqlAggregate, str]
) -> None:
    if isinstance(expression, ast.SqlAggregate):
        if expression not in calls:
            calls[expression] = f"__agg_{len(calls)}"
        return
    if isinstance(expression, ast.SqlBinary):
        _collect_aggregates(expression.left, calls)
        _collect_aggregates(expression.right, calls)
    elif isinstance(expression, ast.SqlNot):
        _collect_aggregates(expression.operand, calls)
    elif isinstance(expression, ast.SqlIsNull):
        _collect_aggregates(expression.operand, calls)
    elif isinstance(expression, (ast.SqlIn, ast.SqlBetween)):
        _collect_aggregates(expression.operand, calls)


def _output_name(
    item: ast.SqlSelectItem, position: int, used: set[str]
) -> str:
    if item.alias:
        name = item.alias
    elif isinstance(item.expression, ast.SqlColumn):
        name = item.expression.name
    elif isinstance(item.expression, ast.SqlAggregate):
        name = item.expression.display()
    else:
        name = f"col_{position}"
    base = name
    suffix = 1
    while name in used:
        name = f"{base}_{suffix}"
        suffix += 1
    used.add(name)
    return name
