"""SQL tokenizer.

Produces a flat list of :class:`Token` with kinds: ``keyword``,
``identifier``, ``number``, ``string``, ``operator``, ``punct`` and
``eof``.  Keywords are case-insensitive; identifiers are normalized to
lower case (quoted identifiers via double quotes preserve case).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset(
    """
    select distinct from where group by having order asc desc limit offset
    join inner left outer on as and or not null is true false in between
    count sum min max avg
    create drop table patchindex insert into values delete update set
    type mode threshold partitions explain analyze checkpoint
    date integer bigint int float
    double real varchar char text bool boolean string
    unique sorted identifier bitmap auto ascending descending
    scope global partition
    """.split()
)

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.value in words

    def __str__(self) -> str:  # pragma: no cover - error messages
        return f"{self.value!r}" if self.kind != "eof" else "<end of input>"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text, raising :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue
        if char == "'":
            value, position = _read_string(text, position)
            tokens.append(Token("string", value, position))
            continue
        if char == '"':
            value, position = _read_quoted_identifier(text, position)
            tokens.append(Token("identifier", value, position))
            continue
        if char.isdigit() or (
            char == "." and position + 1 < length and text[position + 1].isdigit()
        ):
            value, position = _read_number(text, position)
            tokens.append(Token("number", value, position))
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (
                text[position].isalnum() or text[position] == "_"
            ):
                position += 1
            word = text[start:position]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, start))
            else:
                tokens.append(Token("identifier", lowered, start))
            continue
        matched = False
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                tokens.append(Token("operator", operator, position))
                position += len(operator)
                matched = True
                break
        if matched:
            continue
        if char in _PUNCT:
            tokens.append(Token("punct", char, position))
            position += 1
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", position)
    tokens.append(Token("eof", "", length))
    return tokens


def _read_string(text: str, position: int) -> tuple[str, int]:
    """Read a single-quoted string literal ('' escapes a quote)."""
    start = position
    position += 1
    pieces: list[str] = []
    while position < len(text):
        char = text[position]
        if char == "'":
            if text.startswith("''", position):
                pieces.append("'")
                position += 2
                continue
            return "".join(pieces), position + 1
        pieces.append(char)
        position += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_quoted_identifier(text: str, position: int) -> tuple[str, int]:
    start = position
    position += 1
    end = text.find('"', position)
    if end == -1:
        raise SqlSyntaxError("unterminated quoted identifier", start)
    return text[position:end], end + 1


def _read_number(text: str, position: int) -> tuple[str, int]:
    start = position
    seen_dot = False
    seen_exp = False
    while position < len(text):
        char = text[position]
        if char.isdigit():
            position += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            position += 1
        elif char in "eE" and not seen_exp and position > start:
            seen_exp = True
            position += 1
            if position < len(text) and text[position] in "+-":
                position += 1
        else:
            break
    return text[start:position], position
