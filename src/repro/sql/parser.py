"""Recursive-descent parser for the SQL subset.

Expression precedence (loosest to tightest): OR, AND, NOT, comparison /
IS [NOT] NULL, additive (+, -), multiplicative (*, /), unary minus,
primary (literal / column / parenthesized expression / aggregate).
"""

from __future__ import annotations

import datetime as _dt

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

_AGG_KEYWORDS = ("count", "sum", "min", "max", "avg")
_TYPE_KEYWORDS = (
    "integer",
    "bigint",
    "int",
    "float",
    "double",
    "real",
    "varchar",
    "char",
    "text",
    "bool",
    "boolean",
    "date",
    "string",
)


def parse_statement(text: str) -> ast.SqlStatement:
    """Parse one SQL statement (a trailing semicolon is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    parser.accept_punct(";")
    parser.expect_eof()
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token plumbing ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._position + offset, len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        self._position += 1
        return token

    def accept_keyword(self, *words: str) -> Token | None:
        if self.peek().is_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, *words: str) -> Token:
        token = self.accept_keyword(*words)
        if token is None:
            raise SqlSyntaxError(
                f"expected {' / '.join(word.upper() for word in words)}, "
                f"found {self.peek()}",
                self.peek().position,
            )
        return token

    def accept_punct(self, char: str) -> bool:
        if self.peek().kind == "punct" and self.peek().value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise SqlSyntaxError(
                f"expected {char!r}, found {self.peek()}", self.peek().position
            )

    def accept_operator(self, *operators: str) -> Token | None:
        token = self.peek()
        if token.kind == "operator" and token.value in operators:
            return self.advance()
        return None

    def expect_identifier(self) -> str:
        token = self.peek()
        if token.kind == "identifier":
            return self.advance().value
        # Non-reserved keywords usable as identifiers in practice.
        if token.kind == "keyword" and token.value in _TYPE_KEYWORDS + (
            "type",
            "mode",
            "threshold",
            "checkpoint",
            "count",
            "sum",
            "min",
            "max",
            "avg",
            "values",
        ):
            return self.advance().value
        raise SqlSyntaxError(
            f"expected identifier, found {token}", token.position
        )

    def expect_eof(self) -> None:
        if self.peek().kind != "eof":
            raise SqlSyntaxError(
                f"unexpected trailing input: {self.peek()}", self.peek().position
            )

    # -- statements ----------------------------------------------------------

    def statement(self) -> ast.SqlStatement:
        token = self.peek()
        if token.is_keyword("select"):
            return self.select()
        if token.is_keyword("explain"):
            self.advance()
            analyze = bool(self.accept_keyword("analyze"))
            return ast.SqlExplain(self.select(), analyze=analyze)
        if token.is_keyword("create"):
            return self._create()
        if token.is_keyword("drop"):
            return self._drop()
        if token.is_keyword("insert"):
            return self._insert()
        if token.is_keyword("delete"):
            return self._delete()
        if token.is_keyword("checkpoint"):
            self.advance()
            return ast.SqlCheckpoint()
        raise SqlSyntaxError(f"unsupported statement: {token}", token.position)

    def _create(self) -> ast.SqlStatement:
        self.expect_keyword("create")
        if self.accept_keyword("table"):
            return self._create_table()
        if self.accept_keyword("patchindex"):
            return self._create_patchindex()
        raise SqlSyntaxError(
            f"expected TABLE or PATCHINDEX after CREATE, found {self.peek()}",
            self.peek().position,
        )

    def _create_table(self) -> ast.SqlCreateTable:
        name = self.expect_identifier()
        self.expect_punct("(")
        columns: list[ast.SqlColumnDef] = []
        while True:
            column_name = self.expect_identifier()
            type_token = self.peek()
            if type_token.kind not in ("keyword", "identifier"):
                raise SqlSyntaxError(
                    f"expected a type name, found {type_token}",
                    type_token.position,
                )
            type_name = self.advance().value
            # Consume a parenthesized length, e.g. VARCHAR(20).
            if self.accept_punct("("):
                while not self.accept_punct(")"):
                    self.advance()
            nullable = True
            if self.accept_keyword("not"):
                self.expect_keyword("null")
                nullable = False
            columns.append(ast.SqlColumnDef(column_name, type_name, nullable))
            if self.accept_punct(","):
                continue
            self.expect_punct(")")
            break
        partitions = 1
        if self.accept_keyword("partitions"):
            partitions = int(self._expect_number())
        return ast.SqlCreateTable(name, tuple(columns), partitions)

    def _create_patchindex(self) -> ast.SqlCreatePatchIndex:
        name = self.expect_identifier()
        self.expect_keyword("on")
        table = self.expect_identifier()
        self.expect_punct("(")
        column = self.expect_identifier()
        self.expect_punct(")")
        self.expect_keyword("type")
        kind_token = self.expect_keyword("unique", "sorted")
        ascending = True
        if kind_token.value == "sorted":
            if self.accept_keyword("desc", "descending"):
                ascending = False
            else:
                self.accept_keyword("asc", "ascending")
        mode = "auto"
        threshold = 1.0
        scope = "global"
        while True:
            if self.accept_keyword("mode"):
                mode = self.expect_keyword("identifier", "bitmap", "auto").value
                continue
            if self.accept_keyword("threshold"):
                threshold = float(self._expect_number())
                continue
            if self.accept_keyword("scope"):
                scope = self.expect_keyword("global", "partition").value
                continue
            break
        return ast.SqlCreatePatchIndex(
            name, table, column, kind_token.value, mode, threshold, scope,
            ascending,
        )

    def _drop(self) -> ast.SqlStatement:
        self.expect_keyword("drop")
        if self.accept_keyword("table"):
            return ast.SqlDropTable(self.expect_identifier())
        if self.accept_keyword("patchindex"):
            return ast.SqlDropPatchIndex(self.expect_identifier())
        raise SqlSyntaxError(
            f"expected TABLE or PATCHINDEX after DROP, found {self.peek()}",
            self.peek().position,
        )

    def _insert(self) -> ast.SqlInsert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_identifier()
        columns: tuple[str, ...] | None = None
        if self.accept_punct("("):
            names: list[str] = [self.expect_identifier()]
            while self.accept_punct(","):
                names.append(self.expect_identifier())
            self.expect_punct(")")
            columns = tuple(names)
        self.expect_keyword("values")
        rows: list[tuple[object, ...]] = []
        while True:
            self.expect_punct("(")
            row: list[object] = [self._literal_value()]
            while self.accept_punct(","):
                row.append(self._literal_value())
            self.expect_punct(")")
            rows.append(tuple(row))
            if not self.accept_punct(","):
                break
        return ast.SqlInsert(table, tuple(rows), columns)

    def _delete(self) -> ast.SqlDelete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_identifier()
        where = None
        if self.accept_keyword("where"):
            where = self.expression()
        return ast.SqlDelete(table, where)

    # -- SELECT --------------------------------------------------------------------

    def select(self) -> ast.SqlSelect:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct") is not None
        items: list[ast.SqlSelectItem] = []
        star = False
        if self.accept_operator("*"):
            star = True
        else:
            items.append(self._select_item())
            while self.accept_punct(","):
                items.append(self._select_item())
        from_table: ast.SqlTableRef | None = None
        joins: list[ast.SqlJoinClause] = []
        if self.accept_keyword("from"):
            from_table = self._table_ref()
            while True:
                join = self._join_clause()
                if join is None:
                    break
                joins.append(join)
        where = self.expression() if self.accept_keyword("where") else None
        group_by: list[ast.SqlColumn] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self._column_ref())
            while self.accept_punct(","):
                group_by.append(self._column_ref())
        having = self.expression() if self.accept_keyword("having") else None
        order_by: list[ast.SqlOrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._order_item())
            while self.accept_punct(","):
                order_by.append(self._order_item())
        limit: int | None = None
        offset = 0
        if self.accept_keyword("limit"):
            limit = int(self._expect_number())
            if self.accept_keyword("offset"):
                offset = int(self._expect_number())
        if star and (items or not from_table):
            raise SqlSyntaxError("SELECT * requires a FROM clause")
        return ast.SqlSelect(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SqlSelectItem:
        expression = self.expression()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier()
        elif self.peek().kind == "identifier":
            alias = self.advance().value
        return ast.SqlSelectItem(expression, alias)

    def _order_item(self) -> ast.SqlOrderItem:
        expression = self.expression()
        ascending = True
        if self.accept_keyword("desc", "descending"):
            ascending = False
        else:
            self.accept_keyword("asc", "ascending")
        return ast.SqlOrderItem(expression, ascending)

    def _table_ref(self) -> ast.SqlTableRef:
        if self.accept_punct("("):
            query = self.select()
            self.expect_punct(")")
            self.accept_keyword("as")
            alias = self.expect_identifier()
            return ast.SqlDerivedTable(query, alias)
        name = self.expect_identifier()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier()
        elif self.peek().kind == "identifier":
            alias = self.advance().value
        return ast.SqlNamedTable(name, alias)

    def _join_clause(self) -> ast.SqlJoinClause | None:
        kind: str | None = None
        if self.accept_keyword("join"):
            kind = "inner"
        elif self.peek().is_keyword("inner") and self.peek(1).is_keyword("join"):
            self.advance()
            self.advance()
            kind = "inner"
        elif self.peek().is_keyword("left"):
            self.advance()
            self.accept_keyword("outer")
            self.expect_keyword("join")
            kind = "left_outer"
        if kind is None:
            return None
        table = self._table_ref()
        self.expect_keyword("on")
        left = self._column_ref()
        operator = self.accept_operator("=")
        if operator is None:
            raise SqlSyntaxError(
                f"only equi-join ON conditions are supported, found {self.peek()}",
                self.peek().position,
            )
        right = self._column_ref()
        return ast.SqlJoinClause(kind, table, left, right)

    # -- expressions --------------------------------------------------------------------

    def expression(self) -> ast.SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> ast.SqlExpr:
        left = self._and_expr()
        while self.accept_keyword("or"):
            left = ast.SqlBinary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.SqlExpr:
        left = self._not_expr()
        while self.accept_keyword("and"):
            left = ast.SqlBinary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.SqlExpr:
        if self.accept_keyword("not"):
            return ast.SqlNot(self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.SqlExpr:
        left = self._additive()
        if self.accept_keyword("is"):
            negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return ast.SqlIsNull(left, negated)
        negated = False
        if self.peek().is_keyword("not") and self.peek(1).is_keyword(
            "in", "between"
        ):
            self.advance()
            negated = True
        if self.accept_keyword("in"):
            return self._in_list(left, negated)
        if self.accept_keyword("between"):
            low = self._additive()
            self.expect_keyword("and")
            high = self._additive()
            return ast.SqlBetween(left, low, high, negated)
        operator = self.accept_operator("=", "!=", "<>", "<", "<=", ">", ">=")
        if operator is not None:
            return ast.SqlBinary(operator.value, left, self._additive())
        return left

    def _in_list(self, operand: ast.SqlExpr, negated: bool) -> ast.SqlIn:
        self.expect_punct("(")
        values: list[object] = [self._literal_value()]
        while self.accept_punct(","):
            values.append(self._literal_value())
        self.expect_punct(")")
        if any(value is None for value in values):
            raise SqlSyntaxError("NULL is not supported inside IN lists")
        return ast.SqlIn(operand, tuple(values), negated)

    def _additive(self) -> ast.SqlExpr:
        left = self._multiplicative()
        while True:
            operator = self.accept_operator("+", "-")
            if operator is None:
                return left
            left = ast.SqlBinary(operator.value, left, self._multiplicative())

    def _multiplicative(self) -> ast.SqlExpr:
        left = self._unary()
        while True:
            operator = self.accept_operator("*", "/")
            if operator is None:
                return left
            left = ast.SqlBinary(operator.value, left, self._unary())

    def _unary(self) -> ast.SqlExpr:
        if self.accept_operator("-"):
            operand = self._unary()
            if isinstance(operand, ast.SqlLiteral) and isinstance(
                operand.value, (int, float)
            ):
                return ast.SqlLiteral(-operand.value)
            return ast.SqlBinary("-", ast.SqlLiteral(0), operand)
        return self._primary()

    def _primary(self) -> ast.SqlExpr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return ast.SqlLiteral(_number(token.value))
        if token.kind == "string":
            self.advance()
            return ast.SqlLiteral(token.value)
        if token.is_keyword("null"):
            self.advance()
            return ast.SqlLiteral(None)
        if token.is_keyword("true"):
            self.advance()
            return ast.SqlLiteral(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.SqlLiteral(False)
        if token.is_keyword("date") and self.peek(1).kind == "string":
            self.advance()
            literal = self.advance()
            return ast.SqlLiteral(_parse_date(literal.value, literal.position))
        if token.is_keyword(*_AGG_KEYWORDS):
            return self._aggregate()
        if self.accept_punct("("):
            inner = self.expression()
            self.expect_punct(")")
            return inner
        if token.kind == "identifier":
            return self._column_ref()
        raise SqlSyntaxError(f"unexpected token {token}", token.position)

    def _aggregate(self) -> ast.SqlAggregate:
        func = self.advance().value
        self.expect_punct("(")
        if func == "count" and self.accept_operator("*"):
            self.expect_punct(")")
            return ast.SqlAggregate("count", None)
        distinct = self.accept_keyword("distinct") is not None
        argument = self._column_ref()
        self.expect_punct(")")
        return ast.SqlAggregate(func, argument, distinct)

    def _column_ref(self) -> ast.SqlColumn:
        first = self.expect_identifier()
        if self.accept_punct("."):
            second = self.expect_identifier()
            return ast.SqlColumn(second, qualifier=first)
        return ast.SqlColumn(first)

    # -- literal helpers ---------------------------------------------------------

    def _expect_number(self) -> float:
        token = self.peek()
        if token.kind != "number":
            raise SqlSyntaxError(
                f"expected a number, found {token}", token.position
            )
        self.advance()
        return _number(token.value)

    def _literal_value(self) -> object:
        expression = self.expression()
        if isinstance(expression, ast.SqlLiteral):
            return expression.value
        raise SqlSyntaxError("INSERT values must be literals")


def _number(text: str) -> int | float:
    if any(char in text for char in ".eE"):
        return float(text)
    return int(text)


def _parse_date(text: str, position: int) -> _dt.date:
    try:
        return _dt.date.fromisoformat(text)
    except ValueError as exc:
        raise SqlSyntaxError(f"invalid DATE literal {text!r}", position) from exc
