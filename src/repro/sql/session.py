"""SQL session: statement dispatch against a Database.

This module wires the front end together: parse → (DDL execution | bind
→ optimize → physical plan → collect).  It is invoked through
:meth:`repro.storage.database.Database.sql` and
:meth:`~repro.storage.database.Database.explain`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BindError
from repro.exec.operators.scan import TID_COLUMN
from repro.exec.result import QueryResult, collect
from repro.plan.explain import explain_both
from repro.plan.optimizer import Optimizer, OptimizerOptions
from repro.plan.physical import PhysicalPlanner
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database


def execute_sql(
    database: "Database",
    text: str,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
) -> QueryResult:
    """Execute one SQL statement and return its result.

    DDL and DML statements return a 1×1 result describing the effect
    (e.g. rows inserted); queries return their result set.
    *parallelism* caps the degree of parallelism of the physical plan
    (``None`` resolves ``REPRO_THREADS`` / the CPU count, ``1`` forces
    serial execution).
    """
    statement = parse_statement(text)
    if isinstance(statement, ast.SqlSelect):
        return run_select(database, statement, optimizer_options, parallelism)
    if isinstance(statement, ast.SqlExplain):
        rendered = explain_select(
            database, statement.query, optimizer_options, parallelism
        )
        return _message_result("plan", rendered)
    if isinstance(statement, ast.SqlCreateTable):
        schema = Schema(
            Field(column.name, DataType.from_name(column.type_name), column.nullable)
            for column in statement.columns
        )
        database.create_table(statement.name, schema, statement.partitions)
        return _message_result("status", f"table {statement.name} created")
    if isinstance(statement, ast.SqlDropTable):
        database.drop_table(statement.name)
        return _message_result("status", f"table {statement.name} dropped")
    if isinstance(statement, ast.SqlCreatePatchIndex):
        index = database.create_patch_index(
            statement.name,
            statement.table,
            statement.column,
            kind=statement.kind,
            mode=statement.mode,
            threshold=statement.threshold,
            scope=statement.scope,
            ascending=statement.ascending,
        )
        return _message_result("status", index.describe())
    if isinstance(statement, ast.SqlDropPatchIndex):
        database.drop_patch_index(statement.name)
        return _message_result("status", f"patchindex {statement.name} dropped")
    if isinstance(statement, ast.SqlInsert):
        inserted = _run_insert(database, statement)
        return _message_result("status", f"{inserted} rows inserted")
    if isinstance(statement, ast.SqlDelete):
        deleted = _run_delete(database, statement, optimizer_options, parallelism)
        return _message_result("status", f"{deleted} rows deleted")
    raise BindError(f"unsupported statement type: {type(statement).__name__}")


def explain_sql(
    database: "Database",
    text: str,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
) -> str:
    """Return the optimized logical + physical plan of a query."""
    statement = parse_statement(text)
    if isinstance(statement, ast.SqlExplain):
        statement = statement.query
    if not isinstance(statement, ast.SqlSelect):
        raise BindError("EXPLAIN supports SELECT statements only")
    return explain_select(database, statement, optimizer_options, parallelism)


def run_select(
    database: "Database",
    select: ast.SqlSelect,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
) -> QueryResult:
    logical = Binder(database.catalog).bind_select(select)
    optimized = Optimizer(database.catalog, optimizer_options).optimize(logical)
    operator = PhysicalPlanner(parallelism=parallelism).plan(optimized)
    return collect(operator)


def explain_select(
    database: "Database",
    select: ast.SqlSelect,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
) -> str:
    logical = Binder(database.catalog).bind_select(select)
    optimized = Optimizer(database.catalog, optimizer_options).optimize(logical)
    operator = PhysicalPlanner(parallelism=parallelism).plan(optimized)
    return explain_both(optimized, operator)


def _run_insert(database: "Database", statement: ast.SqlInsert) -> int:
    table = database.table(statement.table)
    width = len(table.schema)
    if statement.columns is None:
        rows = [list(row) for row in statement.rows]
        for row in rows:
            if len(row) != width:
                raise BindError(
                    f"INSERT row has {len(row)} values, table has {width}"
                )
    else:
        positions = {
            name: table.schema.index_of(name) for name in statement.columns
        }
        rows = []
        for row in statement.rows:
            if len(row) != len(statement.columns):
                raise BindError("INSERT row width mismatch")
            full: list[object] = [None] * width
            for name, value in zip(statement.columns, row):
                full[positions[name]] = value
            rows.append(full)
    return table.insert_rows(rows)


def _run_delete(
    database: "Database",
    statement: ast.SqlDelete,
    optimizer_options: OptimizerOptions | None,
    parallelism: int | None = None,
) -> int:
    table = database.table(statement.table)
    if statement.where is None:
        doomed = np.arange(table.row_count, dtype=np.int64)
        return table.delete_rowids(doomed)
    # Evaluate the predicate through a tid-projecting SELECT.
    select = ast.SqlSelect(
        items=(
            ast.SqlSelectItem(ast.SqlColumn(TID_COLUMN), TID_COLUMN),
        ),
        from_table=ast.SqlNamedTable(statement.table),
        where=statement.where,
    )
    result = run_select(database, select, optimizer_options, parallelism)
    rowids = [value for value in result.column(TID_COLUMN).to_pylist()]
    return table.delete_rowids(np.asarray(rowids, dtype=np.int64))


def _message_result(column: str, message: str) -> QueryResult:
    vector = ColumnVector.from_pylist(DataType.STRING, [message])
    return QueryResult(
        Schema([Field(column, DataType.STRING, nullable=False)]),
        {column: vector},
    )
