"""SQL session: statement dispatch against a Database.

This module wires the front end together: parse → (DDL execution | bind
→ optimize → physical plan → collect).  It is invoked through
:meth:`repro.storage.database.Database.sql` and
:meth:`~repro.storage.database.Database.explain` — those are the public
entry points; the module-level :func:`execute_sql` / :func:`run_select`
remain as thin deprecation shims.

Every statement bumps always-on counters in the owning database's
:class:`~repro.obs.metrics.MetricsRegistry` (statement totals per kind,
rows returned).  When a statement runs with ``profile=True`` — or as
``EXPLAIN ANALYZE`` — the operator tree is instrumented with
:func:`repro.obs.profile.profile_collect`, the resulting
:class:`~repro.obs.profile.QueryProfile` is attached to the returned
:class:`~repro.exec.result.QueryResult`, rolled into the registry
(query latency histogram, PatchSelect and parallel-pool counters) and
fed to the database's cardinality feedback for the advisor.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BindError, ExecutionError
from repro.exec.operators.scan import TID_COLUMN
from repro.exec.result import QueryResult, collect
from repro.obs.profile import QueryProfile, profile_collect
from repro.plan.explain import explain_both
from repro.plan.optimizer import Optimizer, OptimizerOptions
from repro.plan.physical import PhysicalPlanner
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.storage.schema import Field, Schema
from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database


def _execute_statement(
    database: "Database",
    text: str,
    *,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
    backend: str | None = None,
    profile: bool = False,
) -> QueryResult:
    """Execute one SQL statement and return its result.

    DDL and DML statements return a 1×1 result describing the effect
    (e.g. rows inserted); queries return their result set.
    *parallelism* caps the degree of parallelism of the physical plan
    (``None`` resolves ``REPRO_THREADS`` / the CPU count, ``1`` forces
    serial execution).  *backend* picks the parallel execution backend
    (``thread`` | ``process`` | ``auto``; ``None`` resolves
    ``REPRO_PARALLEL_BACKEND``).  *profile* instruments the execution
    and attaches a :class:`~repro.obs.profile.QueryProfile` to the
    result.
    """
    statement = parse_statement(text)
    if isinstance(statement, ast.SqlSelect):
        _count_statement(database, "select")
        result = _run_select(
            database,
            statement,
            optimizer_options=optimizer_options,
            parallelism=parallelism,
            backend=backend,
            profile=profile,
            query_text=text,
        )
        _count_rows(database, result.row_count)
        return result
    if isinstance(statement, ast.SqlExplain):
        _count_statement(
            database, "explain_analyze" if statement.analyze else "explain"
        )
        if statement.analyze:
            executed = _run_select(
                database,
                statement.query,
                optimizer_options=optimizer_options,
                parallelism=parallelism,
                backend=backend,
                profile=True,
                query_text=text,
            )
            profile = _require_profile(executed)
            result = QueryResult.from_lines(
                "plan", profile.to_text().splitlines()
            )
            result.profile = profile
            return result
        rendered = explain_select(
            database, statement.query, optimizer_options, parallelism, backend
        )
        return QueryResult.from_lines("plan", rendered.splitlines())
    if isinstance(statement, ast.SqlCreateTable):
        _count_statement(database, "ddl")
        schema = Schema(
            Field(column.name, DataType.from_name(column.type_name), column.nullable)
            for column in statement.columns
        )
        database.create_table(statement.name, schema, statement.partitions)
        return QueryResult.message(f"table {statement.name} created")
    if isinstance(statement, ast.SqlDropTable):
        _count_statement(database, "ddl")
        database.drop_table(statement.name)
        return QueryResult.message(f"table {statement.name} dropped")
    if isinstance(statement, ast.SqlCreatePatchIndex):
        _count_statement(database, "ddl")
        index = database.create_patch_index(
            statement.name,
            statement.table,
            statement.column,
            kind=statement.kind,
            mode=statement.mode,
            threshold=statement.threshold,
            scope=statement.scope,
            ascending=statement.ascending,
        )
        return QueryResult.message(index.describe())
    if isinstance(statement, ast.SqlDropPatchIndex):
        _count_statement(database, "ddl")
        database.drop_patch_index(statement.name)
        return QueryResult.message(f"patchindex {statement.name} dropped")
    if isinstance(statement, ast.SqlInsert):
        _count_statement(database, "insert")
        inserted = _run_insert(database, statement)
        return QueryResult.message(f"{inserted} rows inserted")
    if isinstance(statement, ast.SqlDelete):
        _count_statement(database, "delete")
        deleted = _run_delete(database, statement, optimizer_options, parallelism)
        return QueryResult.message(f"{deleted} rows deleted")
    if isinstance(statement, ast.SqlCheckpoint):
        _count_statement(database, "checkpoint")
        info = database.checkpoint()
        return QueryResult.message(
            f"checkpoint at lsn {info['lsn']}: {info['tables']} tables, "
            f"{info['segments']} segments "
            f"({info['segment_bytes']} bytes), "
            f"{info['wal_pruned']} wal records pruned"
        )
    raise BindError(f"unsupported statement type: {type(statement).__name__}")


def explain_sql(
    database: "Database",
    text: str,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
    backend: str | None = None,
    *,
    analyze: bool = False,
) -> str:
    """Return the plan of a query as indented text.

    With ``analyze=True`` (or when *text* itself is an ``EXPLAIN
    ANALYZE``) the query is executed and the rendering is the profiled
    plan with actual row counts and timings.
    """
    statement = parse_statement(text)
    if isinstance(statement, ast.SqlExplain):
        analyze = analyze or statement.analyze
        statement = statement.query
    if not isinstance(statement, ast.SqlSelect):
        raise BindError("EXPLAIN supports SELECT statements only")
    if analyze:
        result = _run_select(
            database,
            statement,
            optimizer_options=optimizer_options,
            parallelism=parallelism,
            backend=backend,
            profile=True,
            query_text=text,
        )
        return _require_profile(result).to_text()
    return explain_select(
        database, statement, optimizer_options, parallelism, backend
    )


def _run_select(
    database: "Database",
    select: ast.SqlSelect,
    *,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
    backend: str | None = None,
    profile: bool = False,
    query_text: str | None = None,
) -> QueryResult:
    logical = Binder(database.catalog).bind_select(select)
    optimized = Optimizer(database.catalog, optimizer_options).optimize(logical)
    operator = PhysicalPlanner(
        parallelism=parallelism, backend=backend, database=database
    ).plan(optimized)
    if not profile:
        return collect(operator)
    result, query_profile = profile_collect(operator, query_text)
    result.profile = query_profile
    _record_profile(database, query_profile)
    return result


def explain_select(
    database: "Database",
    select: ast.SqlSelect,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
    backend: str | None = None,
) -> str:
    logical = Binder(database.catalog).bind_select(select)
    optimized = Optimizer(database.catalog, optimizer_options).optimize(logical)
    # The planner verifies every plan it produces (raising
    # PlanInvariantError on a violation), so reaching this point means
    # the plan passed — surface that as the "verified: ok" footer.
    operator = PhysicalPlanner(
        parallelism=parallelism, backend=backend, database=database
    ).plan(optimized)
    return explain_both(optimized, operator, verified=True)


# -- observability plumbing ----------------------------------------------------


def _require_profile(result: QueryResult) -> QueryProfile:
    """The profile a ``profile=True`` execution must have attached."""
    if result.profile is None:
        raise ExecutionError(
            "profiled execution returned a result without a QueryProfile"
        )
    return result.profile


def _count_statement(database: "Database", kind: str) -> None:
    obs = getattr(database, "obs", None)
    if obs is not None:
        obs.counter("statements").inc()
        obs.counter(f"statements.{kind}").inc()


def _count_rows(database: "Database", rows: int) -> None:
    obs = getattr(database, "obs", None)
    if obs is not None:
        obs.counter("query.rows_returned").inc(rows)


def _record_profile(database: "Database", profile: QueryProfile) -> None:
    """Roll one finished profile into the registry and the feedback."""
    obs = getattr(database, "obs", None)
    if obs is not None:
        obs.counter("query.profiled").inc()
        obs.histogram("query.seconds").observe(profile.total_seconds)
        for node in profile.find("PatchSelect"):
            obs.counter("patchselect.rows_in").inc(
                int(node.details.get("rows_in", 0))
            )
            obs.counter("patchselect.patch_hits").inc(
                int(node.details.get("patch_hits", 0))
            )
        for node in profile.root.walk():
            if "dop_used" not in node.details:
                continue
            obs.counter("parallel.morsels_total").inc(
                int(node.details.get("morsels_run", 0))
            )
            obs.counter("parallel.queue_wait_seconds").inc(
                float(node.details.get("queue_wait_s", 0.0))
            )
            obs.counter("parallel.busy_seconds").inc(
                float(node.details.get("busy_s", 0.0))
            )
            obs.gauge("parallel.last_dop_used").set(
                int(node.details.get("dop_used", 0))
            )
            if "shm_bytes" in node.details:
                obs.counter("parallel.shm_bytes").inc(
                    int(node.details["shm_bytes"])
                )
    feedback = getattr(database, "feedback", None)
    if feedback is not None:
        feedback.record_profile(profile)


# -- deprecated module-level entry points --------------------------------------


def execute_sql(
    database: "Database",
    text: str,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
) -> QueryResult:
    """Deprecated: use :meth:`repro.storage.database.Database.sql`."""
    warnings.warn(
        "execute_sql() is deprecated; use Database.sql(text, "
        "optimizer_options=..., parallelism=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _execute_statement(
        database,
        text,
        optimizer_options=optimizer_options,
        parallelism=parallelism,
    )


def run_select(
    database: "Database",
    select: ast.SqlSelect,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
) -> QueryResult:
    """Deprecated: use :meth:`repro.storage.database.Database.sql`."""
    warnings.warn(
        "run_select() is deprecated; use Database.sql(text, "
        "optimizer_options=..., parallelism=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_select(
        database,
        select,
        optimizer_options=optimizer_options,
        parallelism=parallelism,
    )


# -- DML ----------------------------------------------------------------------


def _run_insert(database: "Database", statement: ast.SqlInsert) -> int:
    table = database.table(statement.table)
    width = len(table.schema)
    if statement.columns is None:
        rows = [list(row) for row in statement.rows]
        for row in rows:
            if len(row) != width:
                raise BindError(
                    f"INSERT row has {len(row)} values, table has {width}"
                )
    else:
        positions = {
            name: table.schema.index_of(name) for name in statement.columns
        }
        rows = []
        for row in statement.rows:
            if len(row) != len(statement.columns):
                raise BindError("INSERT row width mismatch")
            full: list[object] = [None] * width
            for name, value in zip(statement.columns, row):
                full[positions[name]] = value
            rows.append(full)
    return table.insert_rows(rows)


def _run_delete(
    database: "Database",
    statement: ast.SqlDelete,
    optimizer_options: OptimizerOptions | None,
    parallelism: int | None = None,
) -> int:
    table = database.table(statement.table)
    if statement.where is None:
        doomed = np.arange(table.row_count, dtype=np.int64)
        return table.delete_rowids(doomed)
    # Evaluate the predicate through a tid-projecting SELECT.
    select = ast.SqlSelect(
        items=(
            ast.SqlSelectItem(ast.SqlColumn(TID_COLUMN), TID_COLUMN),
        ),
        from_table=ast.SqlNamedTable(statement.table),
        where=statement.where,
    )
    result = _run_select(
        database,
        select,
        optimizer_options=optimizer_options,
        parallelism=parallelism,
    )
    rowids = [value for value in result.column(TID_COLUMN).to_pylist()]
    return table.delete_rowids(np.asarray(rowids, dtype=np.int64))
