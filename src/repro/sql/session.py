"""SQL sessions: statement dispatch against a Database.

This module wires the front end together: parse → (DDL execution | bind
→ optimize → physical plan → collect) — and owns :class:`Session`, the
first-class per-caller scope.  A session holds sticky knobs
(parallelism, backend, profiling, snapshot reads) and is the unit the
network server hands each connection;
:meth:`repro.storage.database.Database.sql` delegates to an implicit
default session so single-caller code never has to see one.  The
module-level :func:`execute_sql` / :func:`run_select` remain as thin
deprecation shims.

Every statement bumps always-on counters in the owning database's
:class:`~repro.obs.metrics.MetricsRegistry` (statement totals per kind,
rows returned).  When a statement runs with ``profile=True`` — or as
``EXPLAIN ANALYZE`` — the operator tree is instrumented with
:func:`repro.obs.profile.profile_collect`, the resulting
:class:`~repro.obs.profile.QueryProfile` is attached to the returned
:class:`~repro.exec.result.QueryResult`, rolled into the registry
(query latency histogram, PatchSelect and parallel-pool counters) and
fed to the database's cardinality feedback for the advisor.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BindError, ExecutionError
from repro.exec.operators.scan import TID_COLUMN
from repro.exec.result import QueryResult, collect
from repro.obs.profile import QueryProfile, profile_collect
from repro.plan.explain import explain_both
from repro.plan.optimizer import Optimizer, OptimizerOptions
from repro.plan.physical import PhysicalPlanner
from repro.sql import ast
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.storage.schema import Field, Schema
from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database


def statement_kind(text: str) -> str:
    """Coarse statement class: ``"read"`` | ``"write"`` | ``"checkpoint"``.

    Classified from the leading keyword alone — enough for routing
    decisions that must not parse (the server's read/write split, the
    snapshot-read gate) and deliberately conservative: anything that is
    not recognisably a read or a checkpoint is treated as a write.
    """
    word = ""
    for token in text.replace("(", " ").split():
        word = token.lower()
        break
    if word in ("select", "explain"):
        return "read"
    if word == "checkpoint":
        return "checkpoint"
    return "write"


class Session:
    """One caller's scope over a shared :class:`Database`.

    A session carries sticky per-caller knobs — *parallelism*,
    *backend*, *profile* — that per-statement keyword arguments still
    override, plus *snapshot_reads*: when enabled (and the engine
    supports it), every read statement pins an MVCC snapshot for its
    duration, so concurrent writers and ``CHECKPOINT``\\ s never tear an
    in-flight scan.  The network server opens one session per
    connection with ``snapshot_reads=True``; local callers get the same
    object from :meth:`Database.session`.

    Sessions are cheap: they hold no storage state beyond the knobs,
    and closing one only flips bookkeeping (the database stays open).
    """

    def __init__(
        self,
        database: "Database",
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        profile: bool = False,
        snapshot_reads: bool = False,
        label: str | None = None,
        _implicit: bool = False,
    ):
        self.database = database
        self.parallelism = parallelism
        self.backend = backend
        self.profile = profile
        #: Snapshot reads need an engine that can pin one; on a memory
        #: engine the flag quietly degrades to plain (still correct,
        #: because single-threaded) reads rather than failing.
        self.snapshot_reads = (
            snapshot_reads and database.engine.supports_snapshots
        )
        self.label = label
        #: Statements executed through this session (all kinds).
        self.statements = 0
        self._implicit = _implicit
        self._closed = False
        if not _implicit:
            database._session_opened()

    # -- knob resolution ----------------------------------------------------

    def _effective_parallelism(self, override: int | None) -> int | None:
        if override is not None:
            return override
        if self.parallelism is not None:
            return self.parallelism
        return self.database.parallelism

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("session is closed")

    # -- statement execution ------------------------------------------------

    def sql(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        profile: bool | None = None,
        optimizer_options: OptimizerOptions | None = None,
    ) -> QueryResult:
        """Execute one statement with the session's knobs applied.

        Per-statement keywords override the session knobs, which
        override the database defaults.  ``profile=None`` means "use
        the session's profile setting".
        """
        self._check_open()
        self._count_session_statement()
        effective_profile = self.profile if profile is None else profile
        effective_parallelism = self._effective_parallelism(parallelism)
        if self.snapshot_reads and statement_kind(text) == "read":
            with self.database.snapshot() as view:
                return view.sql(
                    text,
                    parallelism=effective_parallelism,
                    profile=effective_profile,
                    optimizer_options=optimizer_options,
                )
        return _execute_statement(
            self.database,
            text,
            optimizer_options=optimizer_options,
            parallelism=effective_parallelism,
            backend=backend if backend is not None else self.backend,
            profile=effective_profile,
        )

    def explain(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        analyze: bool = False,
        optimizer_options: OptimizerOptions | None = None,
    ) -> str:
        """Render the plan of a query with the session's knobs applied."""
        self._check_open()
        self._count_session_statement()
        effective_parallelism = self._effective_parallelism(parallelism)
        if self.snapshot_reads and not analyze:
            with self.database.snapshot() as view:
                return view.explain(
                    text,
                    parallelism=effective_parallelism,
                    optimizer_options=optimizer_options,
                )
        return explain_sql(
            self.database,
            text,
            optimizer_options=optimizer_options,
            parallelism=effective_parallelism,
            backend=backend if backend is not None else self.backend,
            analyze=analyze,
        )

    def _count_session_statement(self) -> None:
        self.statements += 1
        obs = getattr(self.database, "obs", None)
        if obs is not None:
            obs.counter("session.statements").inc()
            if self.label:
                obs.counter(f"session.{self.label}.statements").inc()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the session (idempotent); the database stays open."""
        if not self._closed:
            self._closed = True
            if not self._implicit:
                self.database._session_closed()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.snapshot_reads:
            flags.append("snapshot_reads")
        if self._closed:
            flags.append("closed")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"Session(label={self.label!r}{suffix})"


def _execute_statement(
    database: "Database",
    text: str,
    *,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
    backend: str | None = None,
    profile: bool = False,
) -> QueryResult:
    """Execute one SQL statement and return its result.

    DDL and DML statements return a 1×1 result describing the effect
    (e.g. rows inserted); queries return their result set.
    *parallelism* caps the degree of parallelism of the physical plan
    (``None`` resolves ``REPRO_THREADS`` / the CPU count, ``1`` forces
    serial execution).  *backend* picks the parallel execution backend
    (``thread`` | ``process`` | ``auto``; ``None`` resolves
    ``REPRO_PARALLEL_BACKEND``).  *profile* instruments the execution
    and attaches a :class:`~repro.obs.profile.QueryProfile` to the
    result.
    """
    statement = parse_statement(text)
    if isinstance(statement, ast.SqlSelect):
        _count_statement(database, "select")
        result = _run_select(
            database,
            statement,
            optimizer_options=optimizer_options,
            parallelism=parallelism,
            backend=backend,
            profile=profile,
            query_text=text,
        )
        _count_rows(database, result.row_count)
        return result
    if isinstance(statement, ast.SqlExplain):
        _count_statement(
            database, "explain_analyze" if statement.analyze else "explain"
        )
        if statement.analyze:
            executed = _run_select(
                database,
                statement.query,
                optimizer_options=optimizer_options,
                parallelism=parallelism,
                backend=backend,
                profile=True,
                query_text=text,
            )
            profile = _require_profile(executed)
            result = QueryResult.from_lines(
                "plan", profile.to_text().splitlines()
            )
            result.profile = profile
            return result
        rendered = explain_select(
            database, statement.query, optimizer_options, parallelism, backend
        )
        return QueryResult.from_lines("plan", rendered.splitlines())
    if isinstance(statement, ast.SqlCreateTable):
        _count_statement(database, "ddl")
        schema = Schema(
            Field(column.name, DataType.from_name(column.type_name), column.nullable)
            for column in statement.columns
        )
        database.create_table(statement.name, schema, statement.partitions)
        return QueryResult.message(f"table {statement.name} created")
    if isinstance(statement, ast.SqlDropTable):
        _count_statement(database, "ddl")
        database.drop_table(statement.name)
        return QueryResult.message(f"table {statement.name} dropped")
    if isinstance(statement, ast.SqlCreatePatchIndex):
        _count_statement(database, "ddl")
        index = database.create_patch_index(
            statement.name,
            statement.table,
            statement.column,
            kind=statement.kind,
            mode=statement.mode,
            threshold=statement.threshold,
            scope=statement.scope,
            ascending=statement.ascending,
        )
        return QueryResult.message(index.describe())
    if isinstance(statement, ast.SqlDropPatchIndex):
        _count_statement(database, "ddl")
        database.drop_patch_index(statement.name)
        return QueryResult.message(f"patchindex {statement.name} dropped")
    if isinstance(statement, ast.SqlInsert):
        _count_statement(database, "insert")
        inserted = _run_insert(database, statement)
        return QueryResult.message(f"{inserted} rows inserted")
    if isinstance(statement, ast.SqlDelete):
        _count_statement(database, "delete")
        deleted = _run_delete(database, statement, optimizer_options, parallelism)
        return QueryResult.message(f"{deleted} rows deleted")
    if isinstance(statement, ast.SqlCheckpoint):
        _count_statement(database, "checkpoint")
        info = database.checkpoint()
        return QueryResult.message(
            f"checkpoint at lsn {info['lsn']}: {info['tables']} tables, "
            f"{info['segments']} segments "
            f"({info['segment_bytes']} bytes), "
            f"{info['wal_pruned']} wal records pruned"
        )
    raise BindError(f"unsupported statement type: {type(statement).__name__}")


def explain_sql(
    database: "Database",
    text: str,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
    backend: str | None = None,
    *,
    analyze: bool = False,
) -> str:
    """Return the plan of a query as indented text.

    With ``analyze=True`` (or when *text* itself is an ``EXPLAIN
    ANALYZE``) the query is executed and the rendering is the profiled
    plan with actual row counts and timings.
    """
    statement = parse_statement(text)
    if isinstance(statement, ast.SqlExplain):
        analyze = analyze or statement.analyze
        statement = statement.query
    if not isinstance(statement, ast.SqlSelect):
        raise BindError("EXPLAIN supports SELECT statements only")
    if analyze:
        result = _run_select(
            database,
            statement,
            optimizer_options=optimizer_options,
            parallelism=parallelism,
            backend=backend,
            profile=True,
            query_text=text,
        )
        return _require_profile(result).to_text()
    return explain_select(
        database, statement, optimizer_options, parallelism, backend
    )


def _run_select(
    database: "Database",
    select: ast.SqlSelect,
    *,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
    backend: str | None = None,
    profile: bool = False,
    query_text: str | None = None,
) -> QueryResult:
    logical = Binder(database.catalog).bind_select(select)
    optimized = Optimizer(database.catalog, optimizer_options).optimize(logical)
    operator = PhysicalPlanner(
        parallelism=parallelism, backend=backend, database=database
    ).plan(optimized)
    if not profile:
        return collect(operator)
    result, query_profile = profile_collect(operator, query_text)
    result.profile = query_profile
    _record_profile(database, query_profile)
    return result


def explain_select(
    database: "Database",
    select: ast.SqlSelect,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
    backend: str | None = None,
) -> str:
    logical = Binder(database.catalog).bind_select(select)
    optimized = Optimizer(database.catalog, optimizer_options).optimize(logical)
    # The planner verifies every plan it produces (raising
    # PlanInvariantError on a violation), so reaching this point means
    # the plan passed — surface that as the "verified: ok" footer.
    operator = PhysicalPlanner(
        parallelism=parallelism, backend=backend, database=database
    ).plan(optimized)
    return explain_both(optimized, operator, verified=True)


# -- observability plumbing ----------------------------------------------------


def _require_profile(result: QueryResult) -> QueryProfile:
    """The profile a ``profile=True`` execution must have attached."""
    if result.profile is None:
        raise ExecutionError(
            "profiled execution returned a result without a QueryProfile"
        )
    return result.profile


def _count_statement(database: "Database", kind: str) -> None:
    obs = getattr(database, "obs", None)
    if obs is not None:
        obs.counter("statements").inc()
        obs.counter(f"statements.{kind}").inc()


def _count_rows(database: "Database", rows: int) -> None:
    obs = getattr(database, "obs", None)
    if obs is not None:
        obs.counter("query.rows_returned").inc(rows)


def _record_profile(database: "Database", profile: QueryProfile) -> None:
    """Roll one finished profile into the registry and the feedback."""
    obs = getattr(database, "obs", None)
    if obs is not None:
        obs.counter("query.profiled").inc()
        obs.histogram("query.seconds").observe(profile.total_seconds)
        for node in profile.find("PatchSelect"):
            obs.counter("patchselect.rows_in").inc(
                int(node.details.get("rows_in", 0))
            )
            obs.counter("patchselect.patch_hits").inc(
                int(node.details.get("patch_hits", 0))
            )
        for node in profile.root.walk():
            if "dop_used" not in node.details:
                continue
            obs.counter("parallel.morsels_total").inc(
                int(node.details.get("morsels_run", 0))
            )
            obs.counter("parallel.queue_wait_seconds").inc(
                float(node.details.get("queue_wait_s", 0.0))
            )
            obs.counter("parallel.busy_seconds").inc(
                float(node.details.get("busy_s", 0.0))
            )
            obs.gauge("parallel.last_dop_used").set(
                int(node.details.get("dop_used", 0))
            )
            if "shm_bytes" in node.details:
                obs.counter("parallel.shm_bytes").inc(
                    int(node.details["shm_bytes"])
                )
    feedback = getattr(database, "feedback", None)
    if feedback is not None:
        feedback.record_profile(profile)


# -- deprecated module-level entry points --------------------------------------


def execute_sql(
    database: "Database",
    text: str,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
) -> QueryResult:
    """Deprecated: use :meth:`repro.storage.database.Database.sql`."""
    warnings.warn(
        "execute_sql() is deprecated; use Database.sql(text, "
        "optimizer_options=..., parallelism=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _execute_statement(
        database,
        text,
        optimizer_options=optimizer_options,
        parallelism=parallelism,
    )


def run_select(
    database: "Database",
    select: ast.SqlSelect,
    optimizer_options: OptimizerOptions | None = None,
    parallelism: int | None = None,
) -> QueryResult:
    """Deprecated: use :meth:`repro.storage.database.Database.sql`."""
    warnings.warn(
        "run_select() is deprecated; use Database.sql(text, "
        "optimizer_options=..., parallelism=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_select(
        database,
        select,
        optimizer_options=optimizer_options,
        parallelism=parallelism,
    )


# -- DML ----------------------------------------------------------------------


def _run_insert(database: "Database", statement: ast.SqlInsert) -> int:
    table = database.table(statement.table)
    width = len(table.schema)
    if statement.columns is None:
        rows = [list(row) for row in statement.rows]
        for row in rows:
            if len(row) != width:
                raise BindError(
                    f"INSERT row has {len(row)} values, table has {width}"
                )
    else:
        positions = {
            name: table.schema.index_of(name) for name in statement.columns
        }
        rows = []
        for row in statement.rows:
            if len(row) != len(statement.columns):
                raise BindError("INSERT row width mismatch")
            full: list[object] = [None] * width
            for name, value in zip(statement.columns, row):
                full[positions[name]] = value
            rows.append(full)
    return table.insert_rows(rows)


def _run_delete(
    database: "Database",
    statement: ast.SqlDelete,
    optimizer_options: OptimizerOptions | None,
    parallelism: int | None = None,
) -> int:
    table = database.table(statement.table)
    if statement.where is None:
        doomed = np.arange(table.row_count, dtype=np.int64)
        return table.delete_rowids(doomed)
    # Evaluate the predicate through a tid-projecting SELECT.
    select = ast.SqlSelect(
        items=(
            ast.SqlSelectItem(ast.SqlColumn(TID_COLUMN), TID_COLUMN),
        ),
        from_table=ast.SqlNamedTable(statement.table),
        where=statement.where,
    )
    result = _run_select(
        database,
        select,
        optimizer_options=optimizer_options,
        parallelism=parallelism,
    )
    rowids = [value for value in result.column(TID_COLUMN).to_pylist()]
    return table.delete_rowids(np.asarray(rowids, dtype=np.int64))
