"""Abstract syntax tree for the supported SQL subset.

The AST is purely syntactic: names are unresolved strings, expressions
carry no types.  The :mod:`repro.sql.binder` turns these into logical
plans against a catalog.
"""

from __future__ import annotations

from dataclasses import dataclass


# -- scalar expressions --------------------------------------------------------


class SqlExpr:
    """Base class for syntactic expressions."""


@dataclass(frozen=True)
class SqlColumn(SqlExpr):
    """Column reference: ``name`` or ``qualifier.name``."""

    name: str
    qualifier: str | None = None

    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class SqlLiteral(SqlExpr):
    """Literal: int, float, str, bool, datetime.date, or None (NULL)."""

    value: object


@dataclass(frozen=True)
class SqlBinary(SqlExpr):
    """Binary operation: comparison, arithmetic, AND, OR."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class SqlNot(SqlExpr):
    operand: SqlExpr


@dataclass(frozen=True)
class SqlIsNull(SqlExpr):
    operand: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class SqlIn(SqlExpr):
    """``expr [NOT] IN (literal, ...)``."""

    operand: SqlExpr
    values: tuple[object, ...]
    negated: bool = False


@dataclass(frozen=True)
class SqlBetween(SqlExpr):
    """``expr [NOT] BETWEEN low AND high`` (bounds inclusive)."""

    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class SqlAggregate(SqlExpr):
    """Aggregate call: COUNT/SUM/MIN/MAX/AVG.

    ``argument`` is None for COUNT(*); ``distinct`` marks
    COUNT(DISTINCT col).
    """

    func: str
    argument: SqlColumn | None
    distinct: bool = False

    def display(self) -> str:
        if self.argument is None:
            return f"{self.func}(*)"
        inner = self.argument.display()
        if self.distinct:
            inner = f"distinct {inner}"
        return f"{self.func}({inner})"


# -- table references -------------------------------------------------------------


class SqlTableRef:
    """Base class for FROM items."""


@dataclass(frozen=True)
class SqlNamedTable(SqlTableRef):
    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SqlDerivedTable(SqlTableRef):
    query: "SqlSelect"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass(frozen=True)
class SqlJoinClause:
    """One JOIN item: kind is "inner" or "left_outer"."""

    kind: str
    table: SqlTableRef
    # Equi-join condition: left column = right column (resolved later).
    on_left: SqlColumn
    on_right: SqlColumn


# -- statements ----------------------------------------------------------------------


class SqlStatement:
    """Base class for statements."""


@dataclass(frozen=True)
class SqlSelectItem:
    expression: SqlExpr
    alias: str | None = None


@dataclass(frozen=True)
class SqlOrderItem:
    expression: SqlExpr
    ascending: bool = True


@dataclass(frozen=True)
class SqlSelect(SqlStatement):
    """A SELECT query."""

    items: tuple[SqlSelectItem, ...]  # empty means SELECT *
    from_table: SqlTableRef | None
    joins: tuple[SqlJoinClause, ...] = ()
    where: SqlExpr | None = None
    group_by: tuple[SqlColumn, ...] = ()
    having: SqlExpr | None = None
    order_by: tuple[SqlOrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass(frozen=True)
class SqlColumnDef:
    name: str
    type_name: str
    nullable: bool = True


@dataclass(frozen=True)
class SqlCreateTable(SqlStatement):
    name: str
    columns: tuple[SqlColumnDef, ...]
    partitions: int = 1


@dataclass(frozen=True)
class SqlDropTable(SqlStatement):
    name: str


@dataclass(frozen=True)
class SqlCreatePatchIndex(SqlStatement):
    """CREATE PATCHINDEX name ON table(column) TYPE UNIQUE|SORTED
    [MODE IDENTIFIER|BITMAP|AUTO] [THRESHOLD <float>]
    [SCOPE GLOBAL|PARTITION]"""

    name: str
    table: str
    column: str
    kind: str
    mode: str = "auto"
    threshold: float = 1.0
    scope: str = "global"
    ascending: bool = True


@dataclass(frozen=True)
class SqlDropPatchIndex(SqlStatement):
    name: str


@dataclass(frozen=True)
class SqlInsert(SqlStatement):
    table: str
    rows: tuple[tuple[object, ...], ...]
    columns: tuple[str, ...] | None = None


@dataclass(frozen=True)
class SqlDelete(SqlStatement):
    table: str
    where: SqlExpr | None = None


@dataclass(frozen=True)
class SqlCheckpoint(SqlStatement):
    """``CHECKPOINT``: flush durable state through the storage engine."""


@dataclass(frozen=True)
class SqlExplain(SqlStatement):
    query: SqlSelect
    #: EXPLAIN ANALYZE: execute the query and annotate the plan with
    #: actual row counts, wall times and PatchSelect counters.
    analyze: bool = False
