"""SQL front end: lexer, parser, AST, binder, session entry points.

The supported subset covers everything the paper exercises:

- ``SELECT [DISTINCT] ... FROM`` with derived tables, ``[LEFT OUTER]
  JOIN ... ON``, ``WHERE`` (including ``IN`` lists and ``BETWEEN``),
  ``GROUP BY``, ``HAVING``, ``ORDER BY``, ``LIMIT/OFFSET``;
- aggregates ``COUNT(*) / COUNT(c) / COUNT(DISTINCT c) / SUM / MIN /
  MAX / AVG``;
- the virtual ``tid`` tuple-identifier column (used by the paper's NUC
  discovery query);
- DDL: ``CREATE TABLE``, ``DROP TABLE``, ``CREATE PATCHINDEX ... ON
  t(c) TYPE UNIQUE|SORTED [ASC|DESC] [MODE ...] [THRESHOLD ...]
  [SCOPE GLOBAL|PARTITION]``,
  ``DROP PATCHINDEX``, ``INSERT INTO ... VALUES``, ``DELETE FROM ...
  WHERE``, and ``EXPLAIN <query>``.
"""

from repro.sql.parser import parse_statement
from repro.sql.binder import Binder
from repro.sql.session import explain_sql

__all__ = ["parse_statement", "Binder", "explain_sql"]
