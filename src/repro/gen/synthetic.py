"""Custom data generator with controlled exception rates (paper §VII-B).

The paper's fine-grained experiments use "a custom data generator ...
generated a dataset of 100M tuples and varied the exceptions for
uniqueness and sorting constraints.  The exceptions were placed in
random locations within the table."  This module reproduces that
design, parameterized by row count so laptop-scale runs stay feasible:

- :func:`unique_with_exceptions` — a unique column where a chosen
  fraction of rows is overwritten with values drawn from a fixed pool
  of duplicate groups ("evenly distributed into 100K different values"
  in the paper; the pool scales with the row count by default).
- :func:`sorted_with_exceptions` — an ascending column where a chosen
  fraction of rows is overwritten with uniform random values, so the
  discovered exception rate matches the requested one up to the ±0.1 %
  jitter the paper reports.

Both accept a ``null_rate`` to additionally inject NULLs (which are
always constraint exceptions).
"""

from __future__ import annotations

import numpy as np

from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType

#: The paper uses 100K duplicate groups for 100M rows.
DEFAULT_GROUP_FRACTION = 0.001


def unique_with_exceptions(
    n: int,
    exception_rate: float,
    n_groups: int | None = None,
    null_rate: float = 0.0,
    seed: int = 0,
) -> ColumnVector:
    """A nearly unique INT64 column of *n* rows.

    ``exception_rate`` of the rows are overwritten with values from a
    pool of ``n_groups`` duplicate values disjoint from the unique
    domain.  Each pool value is used at least twice (when the budget
    allows), so every overwritten row really violates uniqueness.
    """
    if not 0.0 <= exception_rate <= 1.0:
        raise ValueError("exception_rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    values = rng.permutation(n).astype(np.int64)
    n_exceptions = int(round(n * exception_rate))
    if n_exceptions:
        if n_groups is None:
            n_groups = max(1, int(round(n * DEFAULT_GROUP_FRACTION)))
        # Every group must occur >= 2 times to actually be a duplicate.
        n_groups = max(1, min(n_groups, n_exceptions // 2 or 1))
        positions = rng.choice(n, size=n_exceptions, replace=False)
        groups = np.arange(n_groups, dtype=np.int64) + n  # disjoint domain
        assignment = np.concatenate(
            [
                np.repeat(groups, 2)[:n_exceptions],
                rng.choice(groups, size=max(0, n_exceptions - 2 * n_groups)),
            ]
        )[:n_exceptions]
        values[positions] = assignment
    return _with_nulls(values, null_rate, rng)


def sorted_with_exceptions(
    n: int,
    exception_rate: float,
    null_rate: float = 0.0,
    seed: int = 0,
) -> ColumnVector:
    """A nearly sorted (ascending) INT64 column of *n* rows.

    ``exception_rate`` of the positions are overwritten with uniform
    random values; the rate discovered by the longest-sorted-subsequence
    algorithm matches the requested rate up to small jitter (a random
    value can accidentally fit the surrounding order), as in the paper.
    """
    if not 0.0 <= exception_rate <= 1.0:
        raise ValueError("exception_rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    values = np.arange(n, dtype=np.int64)
    n_exceptions = int(round(n * exception_rate))
    if n_exceptions:
        positions = rng.choice(n, size=n_exceptions, replace=False)
        values[positions] = rng.integers(0, max(n, 1), size=n_exceptions)
    return _with_nulls(values, null_rate, rng)


def _with_nulls(
    values: np.ndarray, null_rate: float, rng: np.random.Generator
) -> ColumnVector:
    if null_rate <= 0.0:
        return ColumnVector(DataType.INT64, values)
    n = len(values)
    n_nulls = int(round(n * null_rate))
    if n_nulls == 0:
        return ColumnVector(DataType.INT64, values)
    validity = np.ones(n, dtype=np.bool_)
    validity[rng.choice(n, size=n_nulls, replace=False)] = False
    return ColumnVector(DataType.INT64, values, validity)


def synthetic_table(
    name: str,
    n: int,
    unique_exception_rate: float = 0.0,
    sorted_exception_rate: float = 0.0,
    partition_count: int = 1,
    n_groups: int | None = None,
    null_rate: float = 0.0,
    seed: int = 0,
) -> Table:
    """A table with one nearly unique and one nearly sorted column.

    Columns: ``u`` (nearly unique), ``s`` (nearly sorted), ``payload``
    (a random FLOAT64 column so scans move realistic row widths).
    """
    rng = np.random.default_rng(seed + 1)
    schema = Schema(
        [
            Field("u", DataType.INT64),
            Field("s", DataType.INT64),
            Field("payload", DataType.FLOAT64),
        ]
    )
    table = Table(name, schema, partition_count)
    table.load_columns(
        {
            "u": unique_with_exceptions(
                n, unique_exception_rate, n_groups, null_rate, seed
            ),
            "s": sorted_with_exceptions(n, sorted_exception_rate, null_rate, seed),
            "payload": ColumnVector(DataType.FLOAT64, rng.random(n)),
        }
    )
    return table
