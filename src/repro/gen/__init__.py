"""Workload data generators.

- :mod:`repro.gen.synthetic` — the paper's custom generator (§VII-B):
  columns with a controlled exception rate against the uniqueness or
  sorting constraint.
- :mod:`repro.gen.tpcds` — a scaled-down TPC-DS subset (§VII-A):
  ``date_dim``, ``customer`` and ``catalog_sales`` with the column
  properties the paper's two TPC-DS experiments exploit.
"""

from repro.gen.synthetic import (
    unique_with_exceptions,
    sorted_with_exceptions,
    synthetic_table,
)
from repro.gen.tpcds import TpcdsGenerator, load_tpcds

__all__ = [
    "unique_with_exceptions",
    "sorted_with_exceptions",
    "synthetic_table",
    "TpcdsGenerator",
    "load_tpcds",
]
