"""Scaled-down TPC-DS subset (paper §VII-A).

The paper evaluates on TPC-DS SF1000: a 1.4 B-row ``catalog_sales``
fact table joined with ``date_dim`` for the NSC experiment, and the
12 M-row ``customer`` table for the NUC experiment (Table I).  Absolute
scale is irrelevant to the *shape* of the results; what matters are the
column properties:

- ``catalog_sales.cs_sold_date_sk`` is nearly co-sorted with insertion
  order (0.5 % exceptions in the paper — late-arriving orders);
- ``date_dim.d_date_sk`` is the sorted surrogate primary key of the
  date dimension;
- ``customer.c_email_address`` is nearly unique (3.6 % exceptions:
  shared/duplicate addresses and NULLs);
- ``customer.c_current_addr_sk`` is heavily shared (86.5 % exceptions:
  most customers live at an address someone else also uses).

:class:`TpcdsGenerator` reproduces these properties at any scale, with
the exception rates as parameters defaulting to the paper's values.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

from repro.storage.column import ColumnVector
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType
from repro.types.datatypes import date_to_days

#: First d_date_sk in genuine TPC-DS data (1900-01-02).
FIRST_DATE_SK = 2415022
#: Number of date_dim rows in genuine TPC-DS data.
FULL_DATE_DIM_ROWS = 73049

_FIRST_NAMES = (
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
)
_LAST_NAMES = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
)
_DOMAINS = ("example.com", "mail.test", "shop.example", "web.invalid")


class TpcdsGenerator:
    """Deterministic generator for the TPC-DS subset used by the paper."""

    def __init__(self, seed: int = 42):
        self.seed = seed

    # -- date_dim --------------------------------------------------------

    def date_dim(self, n_days: int = 3653) -> dict[str, ColumnVector]:
        """The date dimension: one row per calendar day, sorted on the
        surrogate key (the property the join rewrite's sorted side
        relies on).  Defaults to ten years of days."""
        base = _dt.date(1998, 1, 1)
        sk = np.arange(FIRST_DATE_SK, FIRST_DATE_SK + n_days, dtype=np.int64)
        day_numbers = np.arange(n_days, dtype=np.int64) + date_to_days(base)
        dates = [base + _dt.timedelta(days=int(offset)) for offset in range(n_days)]
        return {
            "d_date_sk": ColumnVector(DataType.INT64, sk),
            "d_date": ColumnVector(DataType.DATE, day_numbers),
            "d_year": ColumnVector(
                DataType.INT64,
                np.array([date.year for date in dates], dtype=np.int64),
            ),
            "d_moy": ColumnVector(
                DataType.INT64,
                np.array([date.month for date in dates], dtype=np.int64),
            ),
            "d_dom": ColumnVector(
                DataType.INT64,
                np.array([date.day for date in dates], dtype=np.int64),
            ),
        }

    @staticmethod
    def date_dim_schema() -> Schema:
        return Schema(
            [
                Field("d_date_sk", DataType.INT64, nullable=False),
                Field("d_date", DataType.DATE, nullable=False),
                Field("d_year", DataType.INT64, nullable=False),
                Field("d_moy", DataType.INT64, nullable=False),
                Field("d_dom", DataType.INT64, nullable=False),
            ]
        )

    # -- catalog_sales ------------------------------------------------------

    def catalog_sales(
        self,
        n: int,
        n_days: int = 3653,
        sold_date_exception_rate: float = 0.005,
        n_items: int = 18000,
    ) -> dict[str, ColumnVector]:
        """The fact table, nearly sorted on ``cs_sold_date_sk``.

        Rows are generated in order-entry sequence: sold dates grow
        monotonically except for ``sold_date_exception_rate`` of rows
        (late bookings landing at a random position), matching the
        paper's 0.5 % for ``catalog_sales.sold_date`` at SF1000.
        """
        rng = np.random.default_rng(self.seed)
        # Monotone sold dates covering the dimension range.
        sold = np.sort(
            rng.integers(FIRST_DATE_SK, FIRST_DATE_SK + n_days, size=n)
        ).astype(np.int64)
        n_exceptions = int(round(n * sold_date_exception_rate))
        if n_exceptions:
            positions = rng.choice(n, size=n_exceptions, replace=False)
            sold[positions] = rng.integers(
                FIRST_DATE_SK, FIRST_DATE_SK + n_days, size=n_exceptions
            )
        ship = sold + rng.integers(2, 90, size=n)
        return {
            "cs_order_number": ColumnVector(
                DataType.INT64, np.arange(1, n + 1, dtype=np.int64)
            ),
            "cs_sold_date_sk": ColumnVector(DataType.INT64, sold),
            "cs_ship_date_sk": ColumnVector(DataType.INT64, ship.astype(np.int64)),
            "cs_item_sk": ColumnVector(
                DataType.INT64, rng.integers(1, n_items + 1, size=n).astype(np.int64)
            ),
            "cs_quantity": ColumnVector(
                DataType.INT64, rng.integers(1, 100, size=n).astype(np.int64)
            ),
            "cs_sales_price": ColumnVector(
                DataType.FLOAT64, np.round(rng.random(n) * 300.0, 2)
            ),
        }

    @staticmethod
    def catalog_sales_schema() -> Schema:
        return Schema(
            [
                Field("cs_order_number", DataType.INT64, nullable=False),
                Field("cs_sold_date_sk", DataType.INT64, nullable=False),
                Field("cs_ship_date_sk", DataType.INT64, nullable=False),
                Field("cs_item_sk", DataType.INT64, nullable=False),
                Field("cs_quantity", DataType.INT64, nullable=False),
                Field("cs_sales_price", DataType.FLOAT64, nullable=False),
            ]
        )

    # -- customer -----------------------------------------------------------------

    def customer(
        self,
        n: int,
        email_exception_rate: float = 0.036,
        addr_unique_rate: float = 0.135,
    ) -> dict[str, ColumnVector]:
        """The customer dimension (Table I's two NUC columns).

        ``c_email_address`` is unique except ``email_exception_rate`` of
        rows (duplicate pairs plus a sprinkle of NULLs);
        ``c_current_addr_sk`` has only ``addr_unique_rate`` of rows
        carrying an address nobody else has (86.5 % exceptions in the
        paper).
        """
        rng = np.random.default_rng(self.seed + 1)
        sk = np.arange(1, n + 1, dtype=np.int64)

        emails = np.empty(n, dtype=object)
        for position in range(n):
            emails[position] = _email(position, rng)
        email_validity = np.ones(n, dtype=np.bool_)
        n_exceptions = int(round(n * email_exception_rate))
        if n_exceptions:
            # One third NULLs, the rest duplicate pairs.
            n_nulls = n_exceptions // 3
            n_dup_rows = n_exceptions - n_nulls
            positions = rng.choice(n, size=n_exceptions, replace=False)
            null_positions = positions[:n_nulls]
            dup_positions = positions[n_nulls:]
            email_validity[null_positions] = False
            emails[null_positions] = ""
            # Pair rows up so every duplicated address occurs >= 2 times.
            half = max(1, n_dup_rows // 2)
            for offset, position in enumerate(dup_positions):
                emails[position] = f"shared{offset % half}@{_DOMAINS[0]}"

        n_unique_addr = int(round(n * addr_unique_rate))
        # Shared addresses come from a pool small enough that collisions
        # are near-certain; unique ones from a disjoint high range.
        pool = max(1, (n - n_unique_addr) // 20)
        addr = rng.integers(1, pool + 1, size=n).astype(np.int64)
        unique_positions = rng.choice(n, size=n_unique_addr, replace=False)
        addr[unique_positions] = (
            np.arange(n_unique_addr, dtype=np.int64) + 10_000_000
        )

        first = rng.integers(0, len(_FIRST_NAMES), size=n)
        last = rng.integers(0, len(_LAST_NAMES), size=n)
        first_names = np.empty(n, dtype=object)
        last_names = np.empty(n, dtype=object)
        for position in range(n):
            first_names[position] = _FIRST_NAMES[first[position]]
            last_names[position] = _LAST_NAMES[last[position]]

        return {
            "c_customer_sk": ColumnVector(DataType.INT64, sk),
            "c_email_address": ColumnVector(
                DataType.STRING, emails, email_validity
            ),
            "c_current_addr_sk": ColumnVector(DataType.INT64, addr),
            "c_first_name": ColumnVector(DataType.STRING, first_names),
            "c_last_name": ColumnVector(DataType.STRING, last_names),
            "c_birth_year": ColumnVector(
                DataType.INT64,
                rng.integers(1930, 2005, size=n).astype(np.int64),
            ),
        }

    @staticmethod
    def customer_schema() -> Schema:
        return Schema(
            [
                Field("c_customer_sk", DataType.INT64, nullable=False),
                Field("c_email_address", DataType.STRING),
                Field("c_current_addr_sk", DataType.INT64, nullable=False),
                Field("c_first_name", DataType.STRING, nullable=False),
                Field("c_last_name", DataType.STRING, nullable=False),
                Field("c_birth_year", DataType.INT64, nullable=False),
            ]
        )


def _email(position: int, rng: np.random.Generator) -> str:
    domain = _DOMAINS[position % len(_DOMAINS)]
    return f"user{position}.{rng.integers(0, 10_000)}@{domain}"


def load_tpcds(
    database: Database,
    catalog_sales_rows: int = 200_000,
    customer_rows: int = 50_000,
    n_days: int = 3653,
    partition_count: int = 4,
    seed: int = 42,
    sold_date_exception_rate: float = 0.005,
) -> dict[str, Table]:
    """Create and load the three TPC-DS subset tables into *database*.

    Row counts default to laptop scale; the paper's SF1000 ratios
    (1.4 B sales / 12 M customers / 73 K dates) are preserved in spirit
    by keeping sales ≫ customers ≫ dates.
    """
    generator = TpcdsGenerator(seed)
    tables: dict[str, Table] = {}

    date_dim = database.create_table(
        "date_dim", generator.date_dim_schema(), partition_count=1
    )
    date_dim.load_columns(generator.date_dim(n_days))
    tables["date_dim"] = date_dim

    catalog_sales = database.create_table(
        "catalog_sales",
        generator.catalog_sales_schema(),
        partition_count=partition_count,
    )
    catalog_sales.load_columns(
        generator.catalog_sales(
            catalog_sales_rows,
            n_days,
            sold_date_exception_rate=sold_date_exception_rate,
        )
    )
    tables["catalog_sales"] = catalog_sales

    customer = database.create_table(
        "customer", generator.customer_schema(), partition_count=partition_count
    )
    customer.load_columns(generator.customer(customer_rows))
    tables["customer"] = customer
    return tables
