"""Shared LRU cache of decoded segment blocks.

RSEG2 segments store encoded blocks; decoding them on every scan would
trade the I/O win for CPU.  The :class:`BlockCache` holds decoded
:class:`~repro.storage.column.ColumnVector` blocks keyed by
``(table, segment, column, block, generation)`` — the *generation* is
the manifest checkpoint LSN the segment was loaded under, so a
checkpoint (which writes a fresh segment generation) can never collide
with stale entries: new readers carry the new generation and the old
keys simply age out (the engine also clears the cache eagerly at
checkpoint).

The cache is byte-capacity-bounded and fully observable — the ROADMAP's
pg-xpatch cautionary tale is a cache that silently rejected large
entries until a ``skip_count`` stat exposed it.  Here every outcome is
counted: ``cache.hits`` / ``cache.misses`` / ``cache.evictions`` and
``cache.skip_count`` (entries larger than a quarter of the capacity are
*skipped*, never admitted, and always counted), plus ``cache.bytes`` /
``cache.entries`` gauges.

One cache is shared per :class:`~repro.storage.engine.DurableEngine`
(all tables, all threads — a single lock guards the LRU book-keeping;
decode happens outside it).  Worker processes share one process-wide
cache across engine snapshots (:func:`process_cache`), sized by the
``REPRO_CACHE_BYTES`` environment variable like the coordinator's.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.check.sanitize import enabled as sanitize_enabled
from repro.check.sanitize import make_lock, register_cache
from repro.errors import StorageError
from repro.storage.column import ColumnVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.storage.segment import SegmentReader

#: Default cache capacity when neither the knob nor the env var is set.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

#: Environment variable overriding the default capacity (bytes).
ENV_CACHE_BYTES = "REPRO_CACHE_BYTES"


def cache_capacity_from_env(default: int = DEFAULT_CACHE_BYTES) -> int:
    """Resolve the cache capacity from ``REPRO_CACHE_BYTES``."""
    raw = os.environ.get(ENV_CACHE_BYTES)
    if raw is None:
        return default
    try:
        return max(0, int(raw))
    except ValueError as exc:
        raise StorageError(
            f"{ENV_CACHE_BYTES} must be an integer byte count, got {raw!r}"
        ) from exc


def vector_nbytes(vector: ColumnVector) -> int:
    """Approximate resident bytes of a decoded column vector."""
    values = vector.values
    if values.dtype == np.dtype(object):
        size = 8 * len(values) + sum(len(item) for item in values)
    else:
        size = int(values.nbytes)
    if vector.validity is not None:
        size += int(vector.validity.nbytes)
    return size


@dataclass
class ScanIO:
    """Per-scan decode / cache accounting (feeds EXPLAIN ANALYZE)."""

    blocks_decoded: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Encoded payload bytes fetched from segment files.
    bytes_read: int = 0
    #: Decoded vector bytes those payloads expanded into.
    bytes_decoded: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class BlockCache:
    """Byte-bounded LRU over decoded blocks with full observability."""

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CACHE_BYTES,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.capacity_bytes = max(0, int(capacity_bytes))
        #: Entries above this size are skipped (and counted), so one
        #: giant block can never wipe the whole working set.
        self.max_entry_bytes = self.capacity_bytes // 4
        self._lock = make_lock("storage.cache.block")
        self._entries: OrderedDict[tuple, tuple[ColumnVector, int]] = (
            OrderedDict()
        )
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.skips = 0
        self._metrics = metrics
        if sanitize_enabled():
            register_cache(self)

    def attach_metrics(self, metrics: "MetricsRegistry") -> None:
        """Publish counters/gauges into *metrics* from now on."""
        with self._lock:
            self._metrics = metrics

    # -- core operations ------------------------------------------------

    def get(self, key: tuple) -> ColumnVector | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
            metrics = self._metrics
        if metrics is not None:
            if hit:
                metrics.counter("cache.hits").inc()
            else:
                metrics.counter("cache.misses").inc()
        return entry[0] if entry is not None else None

    def put(
        self, key: tuple, vector: ColumnVector, nbytes: int | None = None
    ) -> bool:
        """Admit a decoded block; returns False when skipped (oversized)."""
        if nbytes is None:
            nbytes = vector_nbytes(vector)
        if nbytes > self.max_entry_bytes:
            with self._lock:
                self.skips += 1
                metrics = self._metrics
            if metrics is not None:
                metrics.counter("cache.skip_count").inc()
            return False
        evicted = 0
        with self._lock:
            if key in self._entries:
                return True
            while self._bytes + nbytes > self.capacity_bytes and self._entries:
                _, (_, old_bytes) = self._entries.popitem(last=False)
                self._bytes -= old_bytes
                evicted += 1
            self._entries[key] = (vector, nbytes)
            self._bytes += nbytes
            self.evictions += evicted
            metrics = self._metrics
        if metrics is not None and evicted:
            metrics.counter("cache.evictions").inc(evicted)
        return True

    def clear(self) -> None:
        """Drop every entry (checkpoint generation flip)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # -- introspection --------------------------------------------------

    @property
    def bytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def hit_ratio(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def verify_accounting(self) -> str | None:
        """Cross-check byte/entry bookkeeping against the actual entries.

        Returns a description of the first mismatch, or None when the
        books balance.  The sanitizer teardown fixture calls this for
        every live cache: ``_bytes`` is maintained incrementally on
        put/evict, so any drift means an unbalanced admit/evict pair.
        """
        with self._lock:
            actual = sum(nbytes for _, nbytes in self._entries.values())
            entries = len(self._entries)
            tracked = self._bytes
        if actual != tracked:
            return (
                f"BlockCache byte accounting drifted: tracked {tracked} "
                f"!= actual {actual} across {entries} entries"
            )
        if tracked > self.capacity_bytes and entries > 1:
            return (
                f"BlockCache over capacity: {tracked} bytes held, "
                f"capacity {self.capacity_bytes}"
            )
        return None

    def stats(self) -> dict:
        """Snapshot of counters and occupancy for ``\\cache`` / gauges."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity_bytes": self.capacity_bytes,
                "bytes": self._bytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "skip_count": self.skips,
            }


class SegmentColumnSource:
    """Lazy, cache-aware view of one segment-backed partition column.

    Stands in for a materialized :class:`ColumnVector` inside a
    :class:`~repro.storage.partition.Partition`: scans pull contiguous
    row slices through :meth:`slice`, which decodes only the blocks the
    slice touches (through the shared :class:`BlockCache`), so pruned
    blocks cost neither I/O nor decode work.
    """

    __slots__ = ("reader", "cache", "table", "column", "segment", "generation")

    def __init__(
        self,
        reader: "SegmentReader",
        cache: BlockCache | None,
        *,
        table: str,
        column: str,
        segment: str,
        generation: int,
    ):
        self.reader = reader
        self.cache = cache
        self.table = table
        self.column = column
        self.segment = segment
        self.generation = generation

    @property
    def dtype(self):
        return self.reader.dtype

    def __len__(self) -> int:
        return self.reader.rows

    def block(self, index: int, io: ScanIO | None = None) -> ColumnVector:
        """Fetch one decoded block, preferring the cache."""
        key = (self.table, self.segment, self.column, index, self.generation)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                if io is not None:
                    io.cache_hits += 1
                return cached
        vector = self.reader.decode_block(index)
        nbytes = vector_nbytes(vector)
        if io is not None:
            io.blocks_decoded += 1
            if self.cache is not None:
                io.cache_misses += 1
            io.bytes_read += self.reader.block_payload_bytes(index)
            io.bytes_decoded += nbytes
        if self.cache is not None:
            self.cache.put(key, vector, nbytes)
        return vector

    def slice(
        self, start: int, stop: int, io: ScanIO | None = None
    ) -> ColumnVector:
        """Assemble rows ``[start, stop)`` from decoded blocks."""
        if stop <= start:
            return ColumnVector.empty(self.reader.dtype)
        size = self.reader.block_size
        parts: list[ColumnVector] = []
        for index in range(start // size, (stop - 1) // size + 1):
            block = self.block(index, io)
            base = index * size
            lo = max(start, base) - base
            hi = min(stop, base + len(block)) - base
            parts.append(
                block if lo == 0 and hi == len(block) else block.slice(lo, hi)
            )
        return parts[0] if len(parts) == 1 else ColumnVector.concat(parts)

    def materialize(self, io: ScanIO | None = None) -> ColumnVector:
        """Decode the whole column (mutation and discovery paths).

        Bypasses the cache on purpose: the caller keeps the full column
        resident afterwards (``Partition`` installs it), so admitting
        every block would only double the memory and skew the hit-ratio
        statistics the cost model consumes with one-shot misses.
        """
        if not self.reader.rows:
            return ColumnVector.empty(self.reader.dtype)
        vector = self.reader.read_all()
        if io is not None:
            io.blocks_decoded += self.reader.block_count
            io.bytes_read += sum(
                self.reader.block_payload_bytes(index)
                for index in range(self.reader.block_count)
            )
            io.bytes_decoded += vector_nbytes(vector)
        return vector


# One cache per worker process, shared across engine snapshots so
# repeated attaches of the same directory reuse decoded blocks.
_PROCESS_CACHE: BlockCache | None = None


def process_cache() -> BlockCache:
    """The per-process block cache used by parallel worker attach."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = BlockCache(cache_capacity_from_env())
    return _PROCESS_CACHE
