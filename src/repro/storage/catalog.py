"""The catalog: named tables and the PatchIndexes defined on them.

The catalog deliberately stores indexes behind a minimal duck-typed
interface (``table_name``, ``column_name``, ``kind``) so the storage
layer does not depend on :mod:`repro.core`; the concrete class lives in
:mod:`repro.core.patch_index`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import CatalogError
from repro.storage.table import Table


class Catalog:
    """Name → object mapping for tables and patch indexes."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, Any] = {}

    # -- tables -----------------------------------------------------------

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"unknown table: {name!r}")
        del self._tables[name]
        for index_name in [
            index_name
            for index_name, index in self._indexes.items()
            if index.table_name == name
        ]:
            del self._indexes[index_name]

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- patch indexes -------------------------------------------------------

    def add_index(self, index: Any) -> None:
        if index.name in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        if index.table_name not in self._tables:
            raise CatalogError(
                f"index {index.name!r} references unknown table "
                f"{index.table_name!r}"
            )
        self._indexes[index.name] = index

    def index(self, name: str) -> Any:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"unknown index: {name!r}") from None

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"unknown index: {name!r}")
        index = self._indexes.pop(name)
        detach = getattr(index, "detach", None)
        if detach is not None:
            detach()

    def indexes(self) -> Iterator[Any]:
        return iter(self._indexes.values())

    def indexes_on(self, table_name: str, column_name: str | None = None) -> list[Any]:
        """All indexes on a table, optionally restricted to one column."""
        return [
            index
            for index in self._indexes.values()
            if index.table_name == table_name
            and (column_name is None or index.column_name == column_name)
        ]

    def find_index(
        self, table_name: str, column_name: str, kind: str
    ) -> Any | None:
        """First index of *kind* ("unique" / "sorted") on table.column, if any."""
        for index in self._indexes.values():
            if (
                index.table_name == table_name
                and index.column_name == column_name
                and index.kind == kind
            ):
                return index
        return None
