"""Typed column vectors with validity (NULL) masks.

A :class:`ColumnVector` is the unit of vectorized processing: a NumPy
value array plus an optional boolean validity mask (``True`` = value
present, ``False`` = SQL NULL).  A mask of ``None`` means *all valid*,
which keeps the common non-NULL path allocation-free.

Column vectors are conceptually immutable once built; operators create
new vectors via :meth:`take` / :meth:`slice` / :meth:`filter` instead of
mutating in place.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import StorageError, TypeMismatchError
from repro.types import DataType
from repro.types.datatypes import coerce_scalar, days_to_date, numpy_dtype


class ColumnVector:
    """A typed vector of values with optional validity mask."""

    __slots__ = ("dtype", "values", "validity")

    def __init__(
        self,
        dtype: DataType,
        values: np.ndarray,
        validity: np.ndarray | None = None,
    ):
        expected = numpy_dtype(dtype)
        if values.dtype != expected:
            raise TypeMismatchError(
                f"values dtype {values.dtype} does not match {dtype.name} "
                f"(expected {expected})"
            )
        if validity is not None:
            if validity.dtype != np.bool_:
                raise TypeMismatchError("validity mask must be boolean")
            if validity.shape != values.shape:
                raise StorageError(
                    f"validity length {validity.shape} != values {values.shape}"
                )
            # Normalize the all-valid case to None so equality and the
            # fast paths do not depend on how the vector was built.
            if bool(validity.all()):
                validity = None
        self.dtype = dtype
        self.values = values
        self.validity = validity

    # -- construction -------------------------------------------------

    @classmethod
    def from_pylist(cls, dtype: DataType, items: Sequence[object]) -> "ColumnVector":
        """Build a vector from Python scalars; ``None`` becomes NULL."""
        coerced = [coerce_scalar(item, dtype) for item in items]
        validity = np.array([item is not None for item in coerced], dtype=np.bool_)
        np_dtype = numpy_dtype(dtype)
        if np_dtype == np.dtype(object):
            values = np.empty(len(coerced), dtype=object)
            for position, item in enumerate(coerced):
                values[position] = "" if item is None else item
        else:
            fill = _null_fill(dtype)
            values = np.array(
                [fill if item is None else item for item in coerced], dtype=np_dtype
            )
        if validity.all():
            return cls(dtype, values)
        return cls(dtype, values, validity)

    @classmethod
    def from_numpy(
        cls,
        dtype: DataType,
        values: np.ndarray,
        validity: np.ndarray | None = None,
    ) -> "ColumnVector":
        """Wrap an existing NumPy array (converting dtype when safe)."""
        expected = numpy_dtype(dtype)
        if values.dtype != expected:
            values = values.astype(expected)
        return cls(dtype, values, validity)

    @classmethod
    def empty(cls, dtype: DataType) -> "ColumnVector":
        return cls(dtype, np.empty(0, dtype=numpy_dtype(dtype)))

    @classmethod
    def concat(cls, vectors: Sequence["ColumnVector"]) -> "ColumnVector":
        """Concatenate vectors of identical type into one."""
        if not vectors:
            raise StorageError("cannot concat zero vectors")
        dtype = vectors[0].dtype
        for vector in vectors[1:]:
            if vector.dtype != dtype:
                raise TypeMismatchError("concat of mismatched column types")
        values = np.concatenate([vector.values for vector in vectors])
        if all(vector.validity is None for vector in vectors):
            return cls(dtype, values)
        validity = np.concatenate(
            [
                vector.validity
                if vector.validity is not None
                else np.ones(len(vector), dtype=np.bool_)
                for vector in vectors
            ]
        )
        return cls(dtype, values, validity)

    # -- basic protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    @property
    def has_nulls(self) -> bool:
        return self.validity is not None

    def null_count(self) -> int:
        if self.validity is None:
            return 0
        return int((~self.validity).sum())

    def validity_or_all_true(self) -> np.ndarray:
        """Return the validity mask, materializing the all-valid case."""
        if self.validity is None:
            return np.ones(len(self), dtype=np.bool_)
        return self.validity

    def is_valid(self, position: int) -> bool:
        if self.validity is None:
            return True
        return bool(self.validity[position])

    def __getitem__(self, position: int) -> object:
        """Return the Python-level value at *position* (``None`` for NULL)."""
        if not self.is_valid(position):
            return None
        raw = self.values[position]
        if self.dtype == DataType.DATE:
            return days_to_date(int(raw))
        if self.dtype == DataType.INT64:
            return int(raw)
        if self.dtype == DataType.FLOAT64:
            return float(raw)
        if self.dtype == DataType.BOOL:
            return bool(raw)
        return raw

    def to_pylist(self) -> list[object]:
        """Materialize the vector as a list of Python scalars."""
        return [self[position] for position in range(len(self))]

    def iter_values(self) -> Iterator[object]:
        """Iterate Python-level values (``None`` for NULL)."""
        for position in range(len(self)):
            yield self[position]

    # -- vectorized transforms ----------------------------------------

    def slice(self, start: int, stop: int) -> "ColumnVector":
        """Zero-copy contiguous slice ``[start, stop)``."""
        validity = None if self.validity is None else self.validity[start:stop]
        return ColumnVector(self.dtype, self.values[start:stop], validity)

    def take(self, indices: np.ndarray) -> "ColumnVector":
        """Gather rows by integer indices."""
        validity = None if self.validity is None else self.validity[indices]
        return ColumnVector(self.dtype, self.values[indices], validity)

    def filter(self, mask: np.ndarray) -> "ColumnVector":
        """Keep rows where the boolean *mask* is True."""
        if mask.dtype != np.bool_:
            raise TypeMismatchError("filter mask must be boolean")
        if len(mask) != len(self):
            raise StorageError("filter mask length mismatch")
        validity = None if self.validity is None else self.validity[mask]
        return ColumnVector(self.dtype, self.values[mask], validity)

    def fill_nulls_for_compare(self) -> np.ndarray:
        """Return the value array with NULL slots replaced by a fill value.

        Used when an operator needs a dense array but will separately
        mask out NULL positions (e.g. hashing, sorting).
        """
        if self.validity is None:
            return self.values
        values = self.values.copy()
        values[~self.validity] = _null_fill(self.dtype)
        return values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(value) for value in self.to_pylist()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"ColumnVector({self.dtype.name}, [{preview}{suffix}], n={len(self)})"


def _null_fill(dtype: DataType) -> object:
    """Physical placeholder stored at NULL positions."""
    if dtype in (DataType.INT64, DataType.DATE):
        return 0
    if dtype == DataType.FLOAT64:
        return 0.0
    if dtype == DataType.BOOL:
        return False
    return ""


def column_from_iterable(
    dtype: DataType, items: Iterable[object]
) -> ColumnVector:
    """Convenience wrapper accepting any iterable of Python scalars."""
    return ColumnVector.from_pylist(dtype, list(items))
