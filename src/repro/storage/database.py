"""Database facade: DDL, PatchIndex DDL, SQL entry point, recovery.

This is the top-level object users interact with.  It owns the
:class:`~repro.storage.catalog.Catalog` and the
:class:`~repro.storage.wal.WriteAheadLog`, and wires the SQL front end,
the optimizer and the executor together.

Recovery follows the paper's design (§V): the WAL records *that* a
PatchIndex exists (name, table, column, kind, mode, threshold), and —
since the delta layer (:mod:`repro.core.delta`) — the checksummed
``patch_delta`` each maintained mutation produced.  Durable recovery
restores indexes from checkpoint-persisted patch sets plus that delta
tail and only re-runs discovery against the table data as the fallback.
The database is also where deltas meet self-management: every applied
delta flows through :meth:`Database._on_patch_delta`, which logs it,
feeds the per-index drift gauge, and schedules a background rebuild
once drift exceeds ``rebuild_threshold``.  Two durability modes exist,
selected at construction through the storage engine seam
(:mod:`repro.storage.engine`):

- in-memory (the default): row data is volatile and the optional WAL
  covers metadata only; :meth:`Database.recover` accepts per-table data
  loaders that repopulate tables before indexes are rebuilt.
- durable (``Database(path=...)`` / ``repro.connect(path=...)``): row
  data is WAL-logged and checkpointed into columnar segment files, and
  reopening the same path runs full recovery — manifest load, WAL tail
  replay, PatchIndex re-discovery from data — automatically.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Mapping, Sequence, TYPE_CHECKING

from repro.errors import StorageError, WalError
from repro.storage.catalog import Catalog
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.storage.wal import WriteAheadLog
from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.patch_index import PatchIndex
    from repro.exec.result import QueryResult
    from repro.obs.metrics import MetricsRegistry
    from repro.sql.session import Session
    from repro.storage.snapshot import SnapshotView

DataLoader = Callable[[Table], None]

#: Default drift ratio (patches added by maintenance / table rows) past
#: which a PatchIndex is scheduled for a background rebuild.
DEFAULT_REBUILD_THRESHOLD = 0.02


def _resolve_rebuild_threshold(value: float | None) -> float:
    """Explicit knob, else ``REPRO_REBUILD_THRESHOLD``, else 0.02."""
    if value is None:
        raw = os.environ.get("REPRO_REBUILD_THRESHOLD")
        if raw is None:
            return DEFAULT_REBUILD_THRESHOLD
        try:
            value = float(raw)
        except ValueError as exc:
            raise StorageError(
                f"REPRO_REBUILD_THRESHOLD must be a float, got {raw!r}"
            ) from exc
    if value <= 0:
        raise StorageError(
            f"rebuild_threshold must be positive, got {value!r}"
        )
    return float(value)


def schema_to_payload(schema: Schema) -> list[dict]:
    """Serialize a schema for a WAL record."""
    return [
        {
            "name": field.name,
            "dtype": field.dtype.value,
            "nullable": field.nullable,
        }
        for field in schema
    ]


def payload_to_schema(payload: Sequence[Mapping]) -> Schema:
    """Deserialize a schema from a WAL record."""
    try:
        return Schema(
            Field(
                entry["name"],
                DataType(entry["dtype"]),
                bool(entry.get("nullable", True)),
            )
            for entry in payload
        )
    except (KeyError, ValueError) as exc:
        raise WalError(f"malformed schema payload: {payload!r}") from exc


class Database:
    """A self-contained analytical database instance."""

    def __init__(
        self,
        wal_path: str | os.PathLike | None = None,
        *,
        path: str | os.PathLike | None = None,
        parallelism: int | None = None,
        mmap: bool = False,
        sync: bool = True,
        cache_bytes: int | None = None,
        encoding: str = "auto",
        rebuild_threshold: float | None = None,
    ):
        """Open a database.

        *wal_path* keeps the historical metadata-only WAL behaviour.
        *path* instead opens (or creates) a durable data directory
        managed by :class:`~repro.storage.engine.DurableEngine`: row
        data is WAL-logged, ``CHECKPOINT`` flushes columnar segment
        files, and reopening the same *path* recovers tables and
        rebuilds PatchIndexes from data.  ``mmap=True`` memory-maps
        checkpointed segment payloads instead of loading them;
        ``sync=False`` skips fsync (benchmarks only).  *cache_bytes*
        bounds the shared decoded-block cache (default: the
        ``REPRO_CACHE_BYTES`` environment variable, else 64 MiB; ``0``
        disables caching) and *encoding* picks the segment encoding
        written at checkpoint (``"auto"`` = per-block cost-based picker,
        ``"raw"`` = uncompressed blocks).  *rebuild_threshold* is the
        ``maintenance.rebuild_threshold`` knob: the drift ratio past
        which an index is scheduled for a background rebuild (default
        ``REPRO_REBUILD_THRESHOLD``, else 0.02).
        """
        from repro.storage.engine import DurableEngine, MemoryEngine

        if wal_path is not None and path is not None:
            raise StorageError(
                "pass either wal_path (metadata-only WAL) or path "
                "(durable data directory), not both"
            )
        if path is None and (cache_bytes is not None or encoding != "auto"):
            raise StorageError(
                "cache_bytes= and encoding= require a durable database "
                "(pass path=)"
            )
        self.catalog = Catalog()
        #: Default degree of parallelism for queries issued through this
        #: instance; ``None`` lets the planner resolve ``REPRO_THREADS``
        #: / the CPU count, ``1`` forces serial plans.
        self.parallelism = parallelism
        #: True while WAL replay re-applies records (suppresses
        #: re-logging of the mutations the replay itself performs).
        self._replaying = False
        #: Drift ratio past which :meth:`_on_patch_delta` marks an index
        #: ``rebuild_pending`` (the ``maintenance.rebuild_threshold`` knob).
        self.rebuild_threshold = _resolve_rebuild_threshold(rebuild_threshold)
        #: LSN of the data record the engine just logged for the current
        #: table mutation; patch deltas derived from that mutation link
        #: to it via ``applies_to``.  None outside a logged mutation.
        self._last_data_lsn = None
        self._init_observability()
        if path is not None:
            self.engine = DurableEngine(
                path,
                mmap=mmap,
                sync=sync,
                cache_bytes=cache_bytes,
                encoding=encoding,
            )
            self.wal = self.engine.open_wal(self, None)
            self.engine.recover(self)
        else:
            self.engine = MemoryEngine()
            self.wal = self.engine.open_wal(self, wal_path)

    def _init_observability(self) -> None:
        from repro.obs import CardinalityFeedback, MetricsRegistry

        #: Instance-wide metrics registry (see :meth:`metrics`).
        self.obs = MetricsRegistry()
        #: Observed scan selectivities from profiled queries; the
        #: advisor consumes this (see repro.obs.feedback).
        self.feedback = CardinalityFeedback()
        #: Session bookkeeping (both construction paths run through
        #: here, so ``Database.recover`` instances get it too).
        self._implicit_session = None
        self._open_sessions = 0

    # -- sessions -----------------------------------------------------------

    def session(
        self,
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        profile: bool = False,
        snapshot_reads: bool = False,
        label: str | None = None,
    ) -> "Session":
        """Open a :class:`~repro.sql.session.Session` on this database.

        The session carries sticky knobs every statement issued through
        it inherits (*parallelism*, *backend*, *profile*), and
        ``snapshot_reads=True`` gives each read statement its own MVCC
        snapshot pin (durable engines only; silently plain reads
        otherwise).  *label* tags the session's ``session.<label>.*``
        metrics.  Sessions are context managers::

            with db.session(parallelism=4) as session:
                session.sql("SELECT ...")
        """
        from repro.sql.session import Session

        return Session(
            self,
            parallelism=parallelism,
            backend=backend,
            profile=profile,
            snapshot_reads=snapshot_reads,
            label=label,
        )

    def _default_session(self) -> "Session":
        """The implicit session :meth:`sql` / :meth:`explain` run under."""
        if self._implicit_session is None:
            from repro.sql.session import Session

            self._implicit_session = Session(
                self, label="default", _implicit=True
            )
        return self._implicit_session

    def _session_opened(self) -> None:
        self._open_sessions += 1
        self.obs.counter("session.opened").inc()
        self.obs.gauge("session.active").set(self._open_sessions)

    def _session_closed(self) -> None:
        self._open_sessions = max(0, self._open_sessions - 1)
        self.obs.counter("session.closed").inc()
        self.obs.gauge("session.active").set(self._open_sessions)

    def snapshot(self) -> "SnapshotView":
        """Pin an MVCC snapshot and return a read-only view over it.

        The view exposes ``sql`` / ``explain`` for ``SELECT`` statements
        against exactly the table state at pin time; close it (or use it
        as a context manager) to release the pin so deferred segment GC
        can run.  Requires a durable database — snapshots are
        reconstructed from immutable segments plus the WAL.
        """
        from repro.storage.snapshot import SnapshotView

        handle = self.engine.pin_snapshot(self)
        if handle is None:
            raise StorageError(
                f"snapshot reads require a durable database; the "
                f"{self.engine.name!r} engine cannot pin one"
            )
        return SnapshotView(self, handle)

    def _on_table_event(self, event: str, payload: dict) -> None:
        """Always-on maintenance counters, plus engine data logging."""
        if event == "append":
            self.obs.counter("maintenance.appends").inc()
            self.obs.counter("maintenance.rows_appended").inc(
                int(payload.get("row_count", 0))
            )
        elif event == "load":
            self.obs.counter("maintenance.loads").inc()
            self.obs.counter("maintenance.rows_loaded").inc(
                int(payload.get("row_count", 0))
            )
        elif event == "delete":
            self.obs.counter("maintenance.deletes").inc()
        elif event == "update":
            self.obs.counter("maintenance.updates").inc()
        self._last_data_lsn = None
        if not self._replaying:
            self.engine.table_event(self, event, payload)
            if self.engine.logs_data:
                # This listener runs before any index listener (it is
                # registered first in _install_table), so the deltas the
                # indexes are about to emit link to this data record.
                self._last_data_lsn = self.wal.last_lsn

    def _on_patch_delta(self, index: "PatchIndex", delta) -> None:
        """Sink for every applied :class:`~repro.core.delta.PatchDelta`.

        Logs the delta as a ``patch_delta`` WAL record (durable engines,
        outside replay) linked via ``applies_to`` to the data record of
        the mutation that produced it — rebuild-event deltas carry
        ``applies_to=None``; they only mark the stream invalid.  Feeds
        the per-index drift gauge and schedules a background rebuild
        (``rebuild_pending``) once drift exceeds
        :attr:`rebuild_threshold`.
        """
        if self.engine.logs_data and not self._replaying:
            applies_to = (
                None if delta.event == "rebuild" else self._last_data_lsn
            )
            self.wal.append("patch_delta", delta.to_payload(applies_to))
        self.obs.counter("maintenance.deltas").inc()
        self.obs.counter("maintenance.delta_ops").inc(len(delta.ops))
        drift = index.drift_rate()
        self.obs.gauge(f"patchindex.{index.name}.drift_rate").set(drift)
        if (
            delta.event != "rebuild"
            and not index.rebuild_pending
            and drift > self.rebuild_threshold
        ):
            index.rebuild_pending = True
            self.obs.counter("maintenance.rebuilds_scheduled").inc()

    def run_pending_rebuilds(self) -> int:
        """Rebuild every index maintenance drift marked for it.

        The background half of drift-triggered self-management: the
        delta sink marks indexes past :attr:`rebuild_threshold`, and
        this sweep — called by the server's writer loop between batches,
        or directly — re-runs discovery on them.  Returns the number of
        indexes rebuilt.
        """
        ran = 0
        for index in self.catalog.indexes():
            if index.rebuild_pending:
                index.rebuild()
                self.obs.counter("maintenance.rebuilds_run").inc()
                ran += 1
        return ran

    def drift_report(self) -> list[dict]:
        """Per-index drift summary (the REPL's ``\\drift`` command)."""
        report = []
        for index in self.catalog.indexes():
            report.append(
                {
                    "index": index.name,
                    "table": index.table_name,
                    "column": index.column_name,
                    "patch_count": index.patch_count,
                    "drift_rate": index.drift_rate(),
                    "rebuild_threshold": self.rebuild_threshold,
                    "rebuild_pending": index.rebuild_pending,
                    "rebuilds": index.rebuild_count,
                }
            )
        return report

    # -- table DDL ----------------------------------------------------------

    def _install_table(self, table: Table) -> None:
        """Register a table in the catalog and wire the event listener."""
        table.add_listener(self._on_table_event)
        self.catalog.add_table(table)

    def create_table(
        self,
        name: str,
        schema: Schema,
        partition_count: int = 1,
        block_size: int | None = None,
    ) -> Table:
        """Create an empty table and log the DDL."""
        kwargs = {} if block_size is None else {"block_size": block_size}
        table = Table(name, schema, partition_count, **kwargs)
        self._install_table(table)
        self.wal.append(
            "create_table",
            {
                "name": name,
                "schema": schema_to_payload(schema),
                "partition_count": partition_count,
                "block_size": table.block_size,
            },
        )
        return table

    def create_table_from_pydict(
        self,
        name: str,
        schema: Schema,
        data: Mapping[str, Sequence[object]],
        partition_count: int = 1,
    ) -> Table:
        """Create a table and bulk-load Python-level data in one step."""
        table = self.create_table(name, schema, partition_count)
        columns = {
            field.name: ColumnVector.from_pylist(field.dtype, list(data[field.name]))
            for field in schema
        }
        table.load_columns(columns)
        return table

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.wal.append("drop_table", {"name": name})

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- PatchIndex DDL --------------------------------------------------------

    def create_patch_index(
        self,
        index_name: str,
        table_name: str,
        column_name: str,
        kind: str,
        *,
        mode: str = "auto",
        threshold: float = 1.0,
        scope: str = "global",
        ascending: bool = True,
        strict: bool = False,
        _log: bool = True,
        _provenance: str = "user",
        _enforce_threshold: bool = True,
    ) -> "PatchIndex":
        """Create a PatchIndex: run discovery, register, log to the WAL.

        Parameters mirror the paper: *kind* is ``"unique"`` (NUC) or
        ``"sorted"`` (NSC); *mode* selects the physical design
        (``"identifier"``, ``"bitmap"`` or ``"auto"``); *threshold* is
        ``nuc_threshold`` / ``nsc_threshold`` — creation fails with
        :class:`~repro.errors.ThresholdExceededError` when the discovered
        exception rate is above it.  *scope* selects global vs
        partition-local sortedness for NSC indexes (see
        :func:`repro.core.discovery.discover_table_nsc`).
        """
        from repro.core.patch_index import PatchIndex, PatchIndexMode

        table = self.catalog.table(table_name)
        index = PatchIndex.create(
            index_name,
            table,
            column_name,
            kind=kind,
            mode=PatchIndexMode(mode),
            threshold=threshold,
            scope=scope,
            ascending=ascending,
            strict=strict,
            provenance=_provenance,
            enforce_threshold=_enforce_threshold,
        )
        self.catalog.add_index(index)
        index.delta_sink = self._on_patch_delta
        if _log:
            self.wal.append(
                "create_index",
                {
                    "name": index_name,
                    "table": table_name,
                    "column": column_name,
                    "kind": kind,
                    "mode": mode,
                    "threshold": threshold,
                    "scope": scope,
                    "ascending": ascending,
                    "strict": strict,
                },
            )
        return index

    def drop_patch_index(self, name: str) -> None:
        self.catalog.drop_index(name)
        self.wal.append("drop_index", {"name": name})

    # -- durability ---------------------------------------------------------

    def checkpoint(self) -> dict:
        """Durably flush state through the storage engine.

        For a durable database this writes a fresh generation of segment
        files, installs the manifest, marks the WAL and prunes records
        the checkpoint made redundant; for an in-memory database it
        writes the marker and compacts metadata.  Returns a summary dict
        (engine, lsn, segment counts/bytes, records pruned, seconds) and
        feeds ``checkpoint.seconds`` / ``checkpoint.count`` metrics.
        """
        started = time.perf_counter()
        info = self.engine.checkpoint(self)
        elapsed = time.perf_counter() - started
        self.obs.counter("checkpoint.count").inc()
        self.obs.histogram("checkpoint.seconds").observe(elapsed)
        info["seconds"] = elapsed
        return info

    def close(self) -> None:
        """Release engine resources (appends are already durable)."""
        self.engine.close(self)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- SQL entry point ----------------------------------------------------------

    def sql(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        profile: bool = False,
        optimizer_options=None,
    ) -> "QueryResult":
        """Parse, bind, optimize and execute a SQL statement.

        DDL and DML statements return a 1×1 status result; queries
        return a :class:`~repro.exec.result.QueryResult` with named
        columns.  All knobs are keyword-only: *parallelism* overrides
        the instance default for this statement, *backend* picks the
        parallel execution backend (``thread`` | ``process`` | ``auto``;
        ``None`` resolves ``REPRO_PARALLEL_BACKEND``), *profile*
        instruments the execution and attaches a ``QueryProfile`` to
        the result (``result.profile``), and *optimizer_options* passes
        a :class:`~repro.plan.optimizer.OptimizerOptions` through to the
        optimizer (e.g. to disable PatchIndex rewrites).

        Statements run under the database's implicit default session;
        open an explicit :meth:`session` for sticky knobs or snapshot
        reads.
        """
        return self._default_session().sql(
            text,
            parallelism=parallelism,
            backend=backend,
            profile=profile,
            optimizer_options=optimizer_options,
        )

    def explain(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        analyze: bool = False,
        optimizer_options=None,
    ) -> str:
        """Return the plan of a SQL query as indented text.

        ``analyze=True`` executes the query and annotates the plan with
        actual row counts, wall times and PatchSelect counters
        (equivalent to ``EXPLAIN ANALYZE <query>``).
        """
        return self._default_session().explain(
            text,
            parallelism=parallelism,
            backend=backend,
            analyze=analyze,
            optimizer_options=optimizer_options,
        )

    # -- observability -----------------------------------------------------------

    def metrics(self, *, refresh: bool = True) -> "MetricsRegistry":
        """The instance's metrics registry.

        With ``refresh=True`` (the default) the PatchIndex health and
        maintenance gauges are recomputed first: per index,
        ``patchindex.<name>.patch_count`` / ``.patch_ratio`` (exception
        rate vs. the paper's 1/64 design crossover, exported as
        ``.ratio_vs_crossover``) / ``.rebuilds`` / ``.drift_rate``, plus
        the aggregated maintenance drift counters.
        """
        if refresh:
            self._refresh_health_gauges()
        return self.obs

    def _refresh_health_gauges(self) -> None:
        from repro.core.patches import CROSSOVER_RATE

        for table_name in self.catalog.table_names():
            for index in self.catalog.indexes_on(table_name):
                prefix = f"patchindex.{index.name}"
                self.obs.gauge(f"{prefix}.patch_count").set(index.patch_count)
                self.obs.gauge(f"{prefix}.patch_ratio").set(
                    index.exception_rate
                )
                self.obs.gauge(f"{prefix}.ratio_vs_crossover").set(
                    index.exception_rate / CROSSOVER_RATE
                )
                self.obs.gauge(f"{prefix}.rebuilds").set(index.rebuild_count)
                self.obs.gauge(f"{prefix}.drift_rate").set(index.drift_rate())
                self.obs.gauge(f"{prefix}.rebuild_pending").set(
                    1.0 if index.rebuild_pending else 0.0
                )
                stats = index.maintenance_stats()
                if stats is not None:
                    self.obs.gauge(f"{prefix}.patches_added").set(
                        stats.patches_added
                    )
                    self.obs.gauge(f"{prefix}.invalidations").set(
                        stats.invalidations
                    )
        self.obs.gauge("maintenance.rebuild_threshold").set(
            self.rebuild_threshold
        )
        cache_stats = self.engine.cache_stats()
        if cache_stats is not None:
            self.obs.gauge("cache.bytes").set(cache_stats["bytes"])
            self.obs.gauge("cache.entries").set(cache_stats["entries"])
            self.obs.gauge("cache.hit_ratio").set(cache_stats["hit_ratio"])
            self.obs.gauge("cache.capacity_bytes").set(
                cache_stats["capacity_bytes"]
            )
        for table_name, ratio in self.engine.encoded_ratios().items():
            self.obs.gauge(f"storage.{table_name}.encoded_ratio").set(ratio)

    def cache_stats(self) -> dict | None:
        """Block-cache counters and occupancy (None without a cache)."""
        return self.engine.cache_stats()

    # -- recovery -------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        wal_path: str | os.PathLike,
        data_loaders: Mapping[str, DataLoader] | None = None,
    ) -> "Database":
        """Rebuild a database instance by replaying the WAL.

        Tables are recreated empty, repopulated through *data_loaders*
        (``table name → callable(table)``), and PatchIndexes are then
        rebuilt from the data by re-running discovery, exactly as the
        paper's recovery path does.
        """
        from repro.storage.engine import MemoryEngine

        database = cls.__new__(cls)
        database.catalog = Catalog()
        database.parallelism = None
        database._replaying = False
        database.rebuild_threshold = _resolve_rebuild_threshold(None)
        database._last_data_lsn = None
        database._init_observability()
        database.engine = MemoryEngine()
        database.wal = WriteAheadLog(wal_path, metrics=database.obs)
        loaders = dict(data_loaders or {})
        for record in database.wal.live_records():
            if record.kind == "create_table":
                payload = record.payload
                table = Table(
                    payload["name"],
                    payload_to_schema(payload["schema"]),
                    int(payload.get("partition_count", 1)),
                )
                database._install_table(table)
                loader = loaders.get(table.name)
                if loader is not None:
                    loader(table)
            elif record.kind == "create_index":
                payload = record.payload
                if not database.catalog.has_table(payload["table"]):
                    raise WalError(
                        f"index {payload['name']!r} references missing table"
                    )
                database.create_patch_index(
                    payload["name"],
                    payload["table"],
                    payload["column"],
                    kind=payload["kind"],
                    mode=payload.get("mode", "auto"),
                    threshold=float(payload.get("threshold", 1.0)),
                    scope=payload.get("scope", "global"),
                    ascending=bool(payload.get("ascending", True)),
                    strict=bool(payload.get("strict", False)),
                    _log=False,
                    _provenance="recovery",
                    _enforce_threshold=False,
                )
        return database

    # -- introspection -----------------------------------------------------------

    def describe(self) -> str:
        """Human-readable summary of tables and indexes."""
        lines: list[str] = []
        for name in self.catalog.table_names():
            table = self.catalog.table(name)
            lines.append(
                f"table {name} ({table.row_count} rows, "
                f"{table.partition_count} partitions)"
            )
            for field in table.schema:
                lines.append(f"  {field}")
            for index in self.catalog.indexes_on(name):
                lines.append(f"  {index.describe()}")
        return "\n".join(lines)
