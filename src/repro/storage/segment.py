"""Immutable per-column segment files (the durable columnar format).

A *segment* persists one :class:`~repro.storage.column.ColumnVector` —
one column of one partition — as a single self-describing file.  Two
format versions exist:

``RSEG1`` (legacy, read-only)
    magic + JSON header + one raw NumPy value buffer (or an ``int64``
    offsets array plus a UTF-8 pool for STRING columns) + packed
    validity bits.  Still fully readable; new checkpoints write RSEG2.

``RSEG2`` (current)
    magic + JSON header + per-block *encoded* payloads.  Each block of
    ``block_size`` rows is encoded independently by a cost-based picker
    (:func:`repro.core.compression.pick_int_block_encoding`) driven by
    the per-block min/max/null sketches: ``raw`` (the fallback), ``rle``
    for runs, ``for`` (frame-of-reference + zig-zag delta) for dense
    ints, ``pfor`` (patch-aware FOR — the table's PatchIndex rowids
    store exceptions verbatim so the kept values pack at the
    clean-column rate, the paper's §VIII outlook), and ``dict`` for
    low-cardinality strings against a segment-level sorted dictionary.
    The header records ``[start, stop, min, max, nulls, enc, offset,
    length]`` per block, so a reader can prune *and* decode blocks
    independently — the scan path decodes on demand through the block
    cache (:mod:`repro.storage.cache`) instead of materializing whole
    columns.

Fixed-width RSEG1 value buffers can be memory-mapped on read
(``mmap=True``); RSEG2 maps the encoded payload region instead and
decodes per block (in the worker process for parallel scans).

Segments are immutable once written: a checkpoint writes a fresh
generation of files and the manifest flips to it atomically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.compression import (
    build_string_dictionary,
    decode_block_codes,
    decode_block_for,
    decode_block_pfor,
    decode_block_rle,
    encode_block_codes,
    pick_int_block_encoding,
)
from repro.errors import StorageError
from repro.storage.blocks import DEFAULT_BLOCK_SIZE, BlockStats, compute_block_stats
from repro.storage.column import ColumnVector
from repro.types import DataType
from repro.types.datatypes import numpy_dtype

_MAGIC_V1 = b"RSEG1\n"
_MAGIC_V2 = b"RSEG2\n"

#: Logical dtypes stored as their raw fixed-width NumPy buffer.
_FIXED_WIDTH = frozenset(
    {DataType.INT64, DataType.FLOAT64, DataType.DATE, DataType.BOOL}
)
#: Dtypes whose physical values are int64 (eligible for int codecs).
_INT_PHYSICAL = frozenset({DataType.INT64, DataType.DATE})

#: Segment-level encoding knob values.
ENCODING_MODES = ("auto", "raw")


def _jsonable_stat(value: object) -> object:
    """Make a block-stat bound JSON-serializable (NumPy scalars → Python)."""
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class SegmentWriteInfo:
    """What one :func:`write_segment` call produced.

    ``encodings`` maps encoding tag → block count; ``payload_bytes`` is
    the encoded block payload total and ``raw_payload_bytes`` what raw
    blocks would have cost, so ``payload_bytes / raw_payload_bytes`` is
    the segment's compression ratio (≤ 1.0 when encoding helped).
    """

    bytes_written: int
    rows: int
    encodings: dict[str, int] = field(default_factory=dict)
    payload_bytes: int = 0
    raw_payload_bytes: int = 0

    @property
    def encoded_ratio(self) -> float:
        if self.raw_payload_bytes <= 0:
            return 1.0
        return self.payload_bytes / self.raw_payload_bytes


def _raw_fixed_payload(values: np.ndarray) -> bytes:
    return np.ascontiguousarray(values).tobytes()


def _raw_string_payload(pieces: list[bytes]) -> bytes:
    offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
    np.cumsum([len(piece) for piece in pieces], out=offsets[1:])
    return offsets.tobytes() + b"".join(pieces)


def write_segment(
    path: str | os.PathLike,
    column: ColumnVector,
    block_size: int = DEFAULT_BLOCK_SIZE,
    *,
    sync: bool = True,
    encoding: str = "auto",
    patch_rowids: np.ndarray | None = None,
) -> SegmentWriteInfo:
    """Write *column* as an RSEG2 segment file at *path*.

    ``encoding="auto"`` runs the per-block cost-based picker;
    ``encoding="raw"`` forces raw blocks (the RSEG1-equivalent layout in
    the v2 container).  *patch_rowids* are the partition-local rowids of
    the column's NSC PatchIndex patches: blocks containing them may use
    the patch-aware ``pfor`` codec, storing those rows verbatim.

    The file is written to a temporary sibling and renamed into place so
    a crash mid-write never leaves a torn segment behind a manifest.
    """
    if encoding not in ENCODING_MODES:
        raise StorageError(f"unknown segment encoding mode: {encoding!r}")
    path = Path(path)
    stats = compute_block_stats(column, block_size)
    rows = len(column)
    validity = column.validity

    patch_positions: np.ndarray | None = None
    if patch_rowids is not None and len(patch_rowids):
        patch_positions = np.unique(
            np.asarray(patch_rowids, dtype=np.int64)
        )

    # Segment-level string dictionary: profitable when the per-block
    # packed codes plus the dictionary undercut the raw offsets + pool.
    dictionary: list[str] | None = None
    dict_codes: np.ndarray | None = None
    dict_width = 0
    dict_payload = b""
    pieces_by_block: list[list[bytes]] = []
    if column.dtype == DataType.STRING:
        physical = [
            (value if column.is_valid(position) else "")
            for position, value in enumerate(column.values)
        ]
        pieces = [text.encode("utf-8") for text in physical]
        pieces_by_block = [
            pieces[block.start : block.stop] for block in stats
        ]
        if encoding == "auto" and rows:
            values = np.empty(rows, dtype=object)
            for position, text in enumerate(physical):
                values[position] = text
            unique, codes, width = build_string_dictionary(values)
            pool = b"".join(text.encode("utf-8") for text in unique)
            offsets = np.zeros(len(unique) + 1, dtype=np.int64)
            np.cumsum([len(u.encode("utf-8")) for u in unique], out=offsets[1:])
            dict_size = len(offsets.tobytes()) + len(pool) + sum(
                1 + (block.row_count * width + 7) // 8 for block in stats
            )
            raw_size = sum(
                8 * (block.row_count + 1) for block in stats
            ) + sum(len(piece) for piece in pieces)
            if dict_size < raw_size:
                dictionary = unique
                dict_codes = codes
                dict_width = width
                dict_payload = offsets.tobytes() + pool

    block_entries: list[list] = []
    block_payloads: list[bytes] = []
    encodings: dict[str, int] = {}
    payload_bytes = 0
    raw_payload_bytes = 0
    offset = len(dict_payload)
    for block_index, block in enumerate(stats):
        values = column.values[block.start : block.stop]
        if column.dtype == DataType.STRING:
            raw_cost = 8 * (block.row_count + 1) + sum(
                len(piece) for piece in pieces_by_block[block_index]
            )
            if dict_codes is not None:
                tag = "dict"
                payload = encode_block_codes(
                    dict_codes[block.start : block.stop], dict_width
                )
            else:
                tag = "raw"
                payload = _raw_string_payload(pieces_by_block[block_index])
        else:
            raw_cost = values.dtype.itemsize * block.row_count
            tag, encoded = "raw", None
            if encoding == "auto" and column.dtype in _INT_PHYSICAL:
                exceptions: np.ndarray | None = None
                local: list[np.ndarray] = []
                if patch_positions is not None:
                    inside = patch_positions[
                        (patch_positions >= block.start)
                        & (patch_positions < block.stop)
                    ]
                    if len(inside):
                        local.append(inside - block.start)
                if validity is not None:
                    nulls = np.flatnonzero(
                        ~validity[block.start : block.stop]
                    )
                    if len(nulls):
                        local.append(nulls.astype(np.int64))
                if local:
                    exceptions = np.concatenate(local)
                tag, encoded = pick_int_block_encoding(
                    values, exceptions, stats=block
                )
            payload = (
                encoded if encoded is not None else _raw_fixed_payload(values)
            )
        block_entries.append(
            [
                block.start,
                block.stop,
                _jsonable_stat(block.minimum),
                _jsonable_stat(block.maximum),
                block.null_count,
                tag,
                offset,
                len(payload),
            ]
        )
        block_payloads.append(payload)
        encodings[tag] = encodings.get(tag, 0) + 1
        payload_bytes += len(payload)
        raw_payload_bytes += raw_cost
        offset += len(payload)

    validity_bytes = (
        np.packbits(validity).tobytes() if validity is not None else b""
    )
    payload_len = offset + len(validity_bytes)
    header = {
        "dtype": column.dtype.value,
        "rows": rows,
        "block_size": block_size,
        "validity_len": len(validity_bytes),
        "payload_len": payload_len,
        "dict": (
            {"count": len(dictionary), "bytes": len(dict_payload)}
            if dictionary is not None
            else None
        ),
        "blocks": block_entries,
    }
    header_line = json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n"

    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC_V2)
        handle.write(header_line)
        handle.write(dict_payload)
        for payload in block_payloads:
            handle.write(payload)
        handle.write(validity_bytes)
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    return SegmentWriteInfo(
        bytes_written=len(_MAGIC_V2) + len(header_line) + payload_len,
        rows=rows,
        encodings=encodings,
        payload_bytes=payload_bytes,
        raw_payload_bytes=raw_payload_bytes,
    )


def write_segment_v1(
    path: str | os.PathLike,
    column: ColumnVector,
    block_size: int = DEFAULT_BLOCK_SIZE,
    *,
    sync: bool = True,
) -> int:
    """Write the legacy RSEG1 layout (kept for mixed-version tests)."""
    path = Path(path)
    stats = compute_block_stats(column, block_size)
    blocks = [
        [
            block.start,
            block.stop,
            _jsonable_stat(block.minimum),
            _jsonable_stat(block.maximum),
            block.null_count,
        ]
        for block in stats
    ]

    if column.dtype in _FIXED_WIDTH:
        encoding = "fixed"
        values_bytes = np.ascontiguousarray(column.values).tobytes()
        offsets_bytes = b""
    else:
        encoding = "utf8"
        pieces = [
            (value if column.is_valid(position) else "").encode("utf-8")
            for position, value in enumerate(column.values)
        ]
        offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
        np.cumsum([len(piece) for piece in pieces], out=offsets[1:])
        offsets_bytes = offsets.tobytes()
        values_bytes = b"".join(pieces)

    if column.validity is None:
        validity_bytes = b""
    else:
        validity_bytes = np.packbits(column.validity).tobytes()

    header = {
        "dtype": column.dtype.value,
        "rows": len(column),
        "block_size": block_size,
        "encoding": encoding,
        "offsets_len": len(offsets_bytes),
        "values_len": len(values_bytes),
        "validity_len": len(validity_bytes),
        "blocks": blocks,
    }
    header_line = json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n"

    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC_V1)
        handle.write(header_line)
        handle.write(offsets_bytes)
        handle.write(values_bytes)
        handle.write(validity_bytes)
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(_MAGIC_V1) + len(header_line) + len(offsets_bytes) + len(
        values_bytes
    ) + len(validity_bytes)


def _parse_stats(header: dict) -> list[BlockStats]:
    return [
        BlockStats(int(entry[0]), int(entry[1]), entry[2], entry[3], int(entry[4]))
        for entry in header["blocks"]
    ]


class SegmentReader:
    """Random per-block access to one segment file (RSEG1 or RSEG2).

    RSEG2 blocks decode independently: :meth:`decode_block` reads only
    that block's payload bytes (via ``os.pread`` on a shared handle, or
    a slice of the memory-mapped payload with ``mmap=True``) and decodes
    it.  RSEG1 files are materialized eagerly at open (their single
    buffer cannot be decoded piecemeal) and served by slicing, so both
    versions present the same block interface to the cache-aware scan
    path.
    """

    def __init__(self, path: str | os.PathLike, *, mmap: bool = False):
        self.path = Path(path)
        self.mmap = mmap
        self._handle = open(self.path, "rb")
        magic = self._handle.readline()
        if magic == _MAGIC_V2:
            self.version = 2
        elif magic == _MAGIC_V1:
            self.version = 1
        else:
            self._handle.close()
            raise StorageError(f"not a segment file: {path}")
        try:
            header = json.loads(self._handle.readline().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._handle.close()
            raise StorageError(f"corrupt segment header: {path}") from exc
        self.dtype = DataType(header["dtype"])
        self.rows = int(header["rows"])
        self.block_size = int(header["block_size"])
        self.stats = _parse_stats(header)
        self._payload_start = self._handle.tell()
        self._eager: ColumnVector | None = None
        self._buffer: np.memmap | None = None
        self._dictionary: np.ndarray | None = None

        if self.version == 1:
            self.encodings = ["raw"] * len(self.stats)
            self._blocks: list[tuple[str, int, int]] = []
            self._eager = _read_v1_payload(
                self._handle, self.path, header, self._payload_start, mmap
            )
            self._handle.close()
            return

        self.encodings = [str(entry[5]) for entry in header["blocks"]]
        self._blocks = [
            (str(entry[5]), int(entry[6]), int(entry[7]))
            for entry in header["blocks"]
        ]
        payload_len = int(header["payload_len"])
        validity_len = int(header["validity_len"])
        if mmap and payload_len:
            self._buffer = np.memmap(
                self.path,
                dtype=np.uint8,
                mode="r",
                offset=self._payload_start,
                shape=(payload_len,),
            )
        self.validity: np.ndarray | None = None
        if validity_len:
            raw = self._read(payload_len - validity_len, validity_len)
            self.validity = np.unpackbits(
                np.frombuffer(raw, dtype=np.uint8), count=self.rows
            ).astype(np.bool_)
        dict_entry = header.get("dict")
        if dict_entry is not None:
            raw = self._read(0, int(dict_entry["bytes"]))
            count = int(dict_entry["count"])
            offsets = np.frombuffer(raw, dtype=np.int64, count=count + 1)
            pool = raw[8 * (count + 1) :]
            self._dictionary = np.empty(count, dtype=object)
            for position in range(count):
                lo, hi = int(offsets[position]), int(offsets[position + 1])
                self._dictionary[position] = pool[lo:hi].decode("utf-8")

    # -- raw IO ---------------------------------------------------------

    def _read(self, offset: int, length: int) -> bytes:
        """Fetch *length* payload bytes at payload-relative *offset*."""
        if self._buffer is not None:
            return bytes(self._buffer[offset : offset + length])
        return os.pread(
            self._handle.fileno(), length, self._payload_start + offset
        )

    # -- block interface ------------------------------------------------

    @property
    def block_count(self) -> int:
        return len(self.stats)

    def block_payload_bytes(self, index: int) -> int:
        """On-disk (encoded) payload bytes of block *index*."""
        if self.version == 1:
            block = self.stats[index]
            if self.dtype in _FIXED_WIDTH:
                return numpy_dtype(self.dtype).itemsize * block.row_count
            return 8 * (block.row_count + 1)  # offsets only, pool unknown
        return self._blocks[index][2]

    def decode_block(self, index: int) -> ColumnVector:
        """Decode block *index* into a column vector (validity applied)."""
        block = self.stats[index]
        if self._eager is not None:
            return self._eager.slice(block.start, block.stop)
        tag, offset, length = self._blocks[index]
        data = self._read(offset, length)
        count = block.row_count
        if tag == "raw":
            if self.dtype == DataType.STRING:
                offsets = np.frombuffer(data, dtype=np.int64, count=count + 1)
                pool = data[8 * (count + 1) :]
                values = np.empty(count, dtype=object)
                for position in range(count):
                    lo, hi = int(offsets[position]), int(offsets[position + 1])
                    values[position] = pool[lo:hi].decode("utf-8")
            else:
                values = np.frombuffer(
                    data, dtype=numpy_dtype(self.dtype), count=count
                )
        elif tag == "rle":
            values = decode_block_rle(data, count)
        elif tag == "for":
            values = decode_block_for(data, count)
        elif tag == "pfor":
            values = decode_block_pfor(data, count)
        elif tag == "dict":
            if self._dictionary is None:
                raise StorageError(
                    f"dict block without dictionary: {self.path}"
                )
            codes = decode_block_codes(data, count)
            values = self._dictionary[codes]
        else:
            raise StorageError(f"unknown block encoding {tag!r}: {self.path}")
        if self.dtype in _INT_PHYSICAL and values.dtype != np.int64:
            values = values.astype(np.int64)
        if len(values) != count:
            raise StorageError(f"corrupt segment block: {self.path}")
        validity = (
            self.validity[block.start : block.stop]
            if self.version == 2 and self.validity is not None
            else None
        )
        return ColumnVector(self.dtype, values, validity)

    def read_all(self) -> ColumnVector:
        """Materialize the whole segment as one column vector."""
        if self._eager is not None:
            return self._eager
        if not self.stats:
            return ColumnVector.empty(self.dtype)
        return ColumnVector.concat(
            [self.decode_block(index) for index in range(self.block_count)]
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def _read_v1_payload(
    handle, path: Path, header: dict, payload_start: int, mmap: bool
) -> ColumnVector:
    """Materialize the single-buffer RSEG1 payload (legacy layout)."""
    offsets_len = int(header["offsets_len"])
    values_len = int(header["values_len"])
    validity_len = int(header["validity_len"])
    rows = int(header["rows"])
    dtype = DataType(header["dtype"])

    offsets_raw = handle.read(offsets_len)
    if dtype in _FIXED_WIDTH and mmap and values_len:
        handle.seek(values_len, os.SEEK_CUR)
        values = np.memmap(
            path,
            dtype=numpy_dtype(dtype),
            mode="r",
            offset=payload_start + offsets_len,
            shape=(rows,),
        )
    else:
        values_raw = handle.read(values_len)
        if dtype in _FIXED_WIDTH:
            values = np.frombuffer(
                values_raw, dtype=numpy_dtype(dtype), count=rows
            ).copy()
        else:
            offsets = np.frombuffer(offsets_raw, dtype=np.int64)
            if len(offsets) != rows + 1:
                raise StorageError(f"corrupt segment offsets: {path}")
            values = np.empty(rows, dtype=object)
            for position in range(rows):
                lo, hi = int(offsets[position]), int(offsets[position + 1])
                values[position] = values_raw[lo:hi].decode("utf-8")
    validity_raw = handle.read(validity_len)

    if len(values) != rows:
        raise StorageError(f"corrupt segment values: {path}")
    validity = None
    if validity_len:
        validity = np.unpackbits(
            np.frombuffer(validity_raw, dtype=np.uint8), count=rows
        ).astype(np.bool_)
    return ColumnVector(dtype, values, validity)


def open_segment(
    path: str | os.PathLike, *, mmap: bool = False
) -> SegmentReader:
    """Open a segment for per-block access (RSEG1 and RSEG2)."""
    return SegmentReader(path, mmap=mmap)


def read_segment(
    path: str | os.PathLike, *, mmap: bool = False
) -> tuple[ColumnVector, list[BlockStats]]:
    """Load a segment file back into a column plus its block sketches.

    Works for both format versions.  ``mmap=True`` memory-maps RSEG1
    fixed-width value buffers (RSEG2 columns decode per block instead;
    use :func:`open_segment` for lazy access).
    """
    reader = SegmentReader(path, mmap=mmap)
    try:
        return reader.read_all(), reader.stats
    finally:
        if reader.version == 2:
            reader.close()
