"""Immutable per-column segment files (the durable columnar format).

A *segment* persists one :class:`~repro.storage.column.ColumnVector` —
one column of one partition — as a single self-describing file:

``RSEG1`` magic line
    format identification and version.
JSON header line
    logical dtype, row count, block size, byte lengths of the payload
    sections and the per-block min/max/null sketches (the "small
    materialized aggregates" the scan uses for range pruning), so a
    reader can restore :class:`~repro.storage.blocks.BlockStats`
    without touching the value bytes.
binary payload
    the raw NumPy value buffer for fixed-width types, or an
    ``int64`` offsets array plus a UTF-8 byte pool for STRING columns,
    followed by the validity mask packed to one bit per row (omitted
    for all-valid columns).

Fixed-width value buffers can be *memory-mapped* on read
(``mmap=True``), which lets serial and parallel scans run unchanged
against segment-backed columns without loading them eagerly: a
``np.memmap`` behaves exactly like the in-memory array (it is read-only,
which the point-update path already handles by copy-on-write).

Segments are immutable once written: a checkpoint writes a fresh
generation of files and the manifest flips to it atomically.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.errors import StorageError
from repro.storage.blocks import DEFAULT_BLOCK_SIZE, BlockStats, compute_block_stats
from repro.storage.column import ColumnVector
from repro.types import DataType
from repro.types.datatypes import numpy_dtype

_MAGIC = b"RSEG1\n"

#: Logical dtypes stored as their raw fixed-width NumPy buffer.
_FIXED_WIDTH = frozenset(
    {DataType.INT64, DataType.FLOAT64, DataType.DATE, DataType.BOOL}
)


def _jsonable_stat(value: object) -> object:
    """Make a block-stat bound JSON-serializable (NumPy scalars → Python)."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def write_segment(
    path: str | os.PathLike,
    column: ColumnVector,
    block_size: int = DEFAULT_BLOCK_SIZE,
    *,
    sync: bool = True,
) -> int:
    """Write *column* as a segment file at *path*; returns bytes written.

    The file is written to a temporary sibling and renamed into place so
    a crash mid-write never leaves a torn segment behind a manifest.
    """
    path = Path(path)
    stats = compute_block_stats(column, block_size)
    blocks = [
        [
            block.start,
            block.stop,
            _jsonable_stat(block.minimum),
            _jsonable_stat(block.maximum),
            block.null_count,
        ]
        for block in stats
    ]

    if column.dtype in _FIXED_WIDTH:
        encoding = "fixed"
        values_bytes = np.ascontiguousarray(column.values).tobytes()
        offsets_bytes = b""
    else:
        encoding = "utf8"
        pieces = [
            (value if column.is_valid(position) else "").encode("utf-8")
            for position, value in enumerate(column.values)
        ]
        offsets = np.zeros(len(pieces) + 1, dtype=np.int64)
        np.cumsum([len(piece) for piece in pieces], out=offsets[1:])
        offsets_bytes = offsets.tobytes()
        values_bytes = b"".join(pieces)

    if column.validity is None:
        validity_bytes = b""
    else:
        validity_bytes = np.packbits(column.validity).tobytes()

    header = {
        "dtype": column.dtype.value,
        "rows": len(column),
        "block_size": block_size,
        "encoding": encoding,
        "offsets_len": len(offsets_bytes),
        "values_len": len(values_bytes),
        "validity_len": len(validity_bytes),
        "blocks": blocks,
    }
    header_line = json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n"

    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(header_line)
        handle.write(offsets_bytes)
        handle.write(values_bytes)
        handle.write(validity_bytes)
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(_MAGIC) + len(header_line) + len(offsets_bytes) + len(
        values_bytes
    ) + len(validity_bytes)


def read_segment(
    path: str | os.PathLike, *, mmap: bool = False
) -> tuple[ColumnVector, list[BlockStats]]:
    """Load a segment file back into a column plus its block sketches.

    ``mmap=True`` memory-maps the value buffer of fixed-width columns
    instead of copying it into RAM; STRING columns and validity masks
    are always materialized (object arrays cannot be mapped).
    """
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.readline()
        if magic != _MAGIC:
            raise StorageError(f"not a segment file: {path}")
        try:
            header = json.loads(handle.readline().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(f"corrupt segment header: {path}") from exc
        payload_start = handle.tell()
        offsets_len = int(header["offsets_len"])
        values_len = int(header["values_len"])
        validity_len = int(header["validity_len"])
        rows = int(header["rows"])
        dtype = DataType(header["dtype"])

        offsets_raw = handle.read(offsets_len)
        if dtype in _FIXED_WIDTH and mmap and values_len:
            handle.seek(values_len, os.SEEK_CUR)
            values = np.memmap(
                path,
                dtype=numpy_dtype(dtype),
                mode="r",
                offset=payload_start + offsets_len,
                shape=(rows,),
            )
        else:
            values_raw = handle.read(values_len)
            if dtype in _FIXED_WIDTH:
                values = np.frombuffer(
                    values_raw, dtype=numpy_dtype(dtype), count=rows
                ).copy()
            else:
                offsets = np.frombuffer(offsets_raw, dtype=np.int64)
                if len(offsets) != rows + 1:
                    raise StorageError(f"corrupt segment offsets: {path}")
                values = np.empty(rows, dtype=object)
                for position in range(rows):
                    lo, hi = int(offsets[position]), int(offsets[position + 1])
                    values[position] = values_raw[lo:hi].decode("utf-8")
        validity_raw = handle.read(validity_len)

    if len(values) != rows:
        raise StorageError(f"corrupt segment values: {path}")
    validity = None
    if validity_len:
        validity = np.unpackbits(
            np.frombuffer(validity_raw, dtype=np.uint8), count=rows
        ).astype(np.bool_)

    column = ColumnVector(dtype, values, validity)
    stats = [
        BlockStats(
            int(start), int(stop), minimum, maximum, int(nulls)
        )
        for start, stop, minimum, maximum, nulls in header["blocks"]
    ]
    return column, stats
