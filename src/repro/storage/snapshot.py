"""MVCC-style snapshot reads over the durable storage engine.

Immutable segment files plus a versioned manifest make snapshots nearly
free: a reader *pins* the pair ``(manifest generation, WAL LSN)`` at
statement start and reconstructs exactly that table state — segment
columns of the pinned generation (decoded lazily through the shared
block cache) with the WAL data tail at or below the pinned LSN replayed
on top.  This is the same reconstruction
:meth:`repro.storage.engine.DurableEngine.attach_tables` performs for
process workers, applied in-process and cached per key so N concurrent
readers at the same snapshot share one table build.

Writers and checkpoints never block a pinned reader and a reader never
observes a partially-applied generation:

- writers only *append* WAL records (a record with an LSN above the pin
  is invisible to the snapshot by construction);
- a checkpoint installs a new generation but must *defer* deleting the
  old generation's segment directory while any snapshot pins it
  (:meth:`DurableEngine.release_snapshot` garbage-collects it once the
  last pin drops);
- the generation flip itself is serialized with pinning under the
  engine's snapshot lock, so a pin sees either entirely the old or
  entirely the new generation.

:class:`SnapshotView` is the read-only ``Database`` facade query
execution runs against; :class:`repro.sql.session.Session` pins one per
read statement when opened with ``snapshot_reads=True`` (the server
does this for every connection).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.sanitize import make_lock
from repro.errors import ExecutionError
from repro.storage.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.result import QueryResult
    from repro.storage.database import Database
    from repro.storage.table import Table


class SnapshotHandle:
    """A pinned ``(generation LSN, WAL LSN)`` pair and its table state.

    Handles are created, refcounted and cached by
    :meth:`~repro.storage.engine.DurableEngine.pin_snapshot` /
    :meth:`~repro.storage.engine.DurableEngine.release_snapshot`; equal
    keys share one handle, so repeated reads at an unchanged database
    state reuse the same reconstructed tables.  ``pins`` is guarded by
    the engine's snapshot lock.
    """

    def __init__(
        self,
        key: tuple[int, int],
        generation_lsn: int,
        wal_lsn: int,
        tables: dict[str, "Table"],
        records: list | None = None,
        index_builder=None,
    ):
        self.key = key
        #: Checkpoint LSN of the pinned manifest generation (0 when the
        #: database has never checkpointed — the snapshot is WAL-only).
        self.generation_lsn = generation_lsn
        #: Last WAL LSN visible to the snapshot.
        self.wal_lsn = wal_lsn
        self.tables = tables
        #: The WAL records at or below the pinned LSN the reconstruction
        #: replayed; the index builder reads index DDL and the
        #: ``patch_delta`` tail from here, and a hot-key advance appends
        #: the records it rolled the handle forward over.
        self.records = records if records is not None else []
        #: Engine callback ``(handle, catalog)`` attaching PatchIndexes
        #: to the lazily-built catalog; None leaves the catalog
        #: index-free (tests, detached handles).
        self.index_builder = index_builder
        #: Active pin count; maintained under the engine snapshot lock.
        self.pins = 0
        self._catalog: Catalog | None = None
        self._catalog_lock = make_lock("storage.snapshot.catalog")

    @property
    def generation_name(self) -> str | None:
        """Segment directory name of the pinned generation, or None."""
        if self.generation_lsn <= 0:
            return None
        return f"g{self.generation_lsn:012d}"

    @property
    def catalog(self) -> Catalog:
        """A catalog over the snapshot tables, built once per handle.

        The catalog carries the snapshot's **own** PatchIndexes: live
        indexes track the live (moving) table state and their rowids
        would not line up with a historical snapshot, so the engine's
        index builder restores each index *as of the pinned LSN* from
        the checkpointed patch sets plus the logged ``patch_delta``
        tail (falling back to fresh discovery over the snapshot
        tables).  Snapshot reads therefore get the same PatchSelect
        rewrites as live reads, against patch sets pinned at the
        snapshot's ``(generation, LSN)`` key.
        """
        with self._catalog_lock:
            if self._catalog is None:
                catalog = Catalog()
                for table in self.tables.values():
                    catalog.add_table(table)
                if self.index_builder is not None:
                    self.index_builder(self, catalog)
                self._catalog = catalog
            return self._catalog


class SnapshotView:
    """A read-only ``Database`` facade bound to one pinned snapshot.

    Exposes exactly the surface statement execution needs — ``catalog``
    (the snapshot tables), ``obs`` / ``feedback`` (shared with the
    owning database so served reads feed the same observability), and
    ``parallelism``.  Only ``SELECT`` / ``EXPLAIN`` statements may run;
    the parallel backend is clamped to threads because a process worker
    would re-attach the data directory at the *live* WAL LSN and escape
    the snapshot.

    The view owns its pin: :meth:`close` (or context-manager exit)
    releases it, allowing deferred generation GC to run.
    """

    def __init__(self, database: "Database", handle: SnapshotHandle):
        self._database = database
        self.handle = handle
        self.catalog = handle.catalog
        self.engine = database.engine
        self.obs = database.obs
        self.feedback = database.feedback
        self.parallelism = database.parallelism
        self._released = False

    @property
    def wal_lsn(self) -> int:
        return self.handle.wal_lsn

    @property
    def generation_lsn(self) -> int:
        return self.handle.generation_lsn

    def sql(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        profile: bool = False,
        optimizer_options=None,
    ) -> "QueryResult":
        """Execute one read statement against the pinned snapshot."""
        from repro.sql.session import _execute_statement, statement_kind

        self._check_released()
        if statement_kind(text) != "read":
            raise ExecutionError(
                "snapshot views are read-only: only SELECT / EXPLAIN may "
                "run against a pinned snapshot"
            )
        effective = parallelism if parallelism is not None else self.parallelism
        del backend  # clamped: process workers would escape the snapshot
        return _execute_statement(
            self,
            text,
            optimizer_options=optimizer_options,
            parallelism=effective,
            backend="thread",
            profile=profile,
        )

    def explain(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        analyze: bool = False,
        optimizer_options=None,
    ) -> str:
        """Render the plan of a query against the pinned snapshot."""
        from repro.sql.session import explain_sql

        self._check_released()
        effective = parallelism if parallelism is not None else self.parallelism
        return explain_sql(
            self,
            text,
            optimizer_options=optimizer_options,
            parallelism=effective,
            backend="thread",
            analyze=analyze,
        )

    def table(self, name: str) -> "Table":
        return self.catalog.table(name)

    def close(self) -> None:
        """Release the pin (idempotent); deferred GC may then collect."""
        if not self._released:
            self._released = True
            self._database.engine.release_snapshot(self.handle)

    def _check_released(self) -> None:
        if self._released:
            raise ExecutionError("snapshot view is closed")

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SnapshotView(generation={self.handle.generation_lsn}, "
            f"lsn={self.handle.wal_lsn}, tables={sorted(self.handle.tables)})"
        )
