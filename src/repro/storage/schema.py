"""Table schemas: ordered, named, typed fields.

A :class:`Schema` is immutable once constructed.  Column lookup is by
name (case-sensitive, as produced by the SQL binder after normalization)
and positional index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.types import DataType


@dataclass(frozen=True)
class Field:
    """A single column definition: name, logical type, nullability."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(f"field {self.name!r}: dtype must be a DataType")

    def __str__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype.name}{null}"


class Schema:
    """An ordered collection of :class:`Field` with unique names."""

    def __init__(self, fields: Iterable[Field]):
        self._fields: tuple[Field, ...] = tuple(fields)
        self._index: dict[str, int] = {}
        for position, field in enumerate(self._fields):
            if field.name in self._index:
                raise SchemaError(f"duplicate column name: {field.name!r}")
            self._index[field.name] = position

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(field.name for field in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def field(self, name: str) -> Field:
        """Return the field called *name*, raising on unknown columns."""
        try:
            return self._fields[self._index[name]]
        except KeyError:
            raise SchemaError(f"unknown column: {name!r}") from None

    def index_of(self, name: str) -> int:
        """Return the ordinal position of column *name*."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column: {name!r}") from None

    def select(self, names: Iterable[str]) -> "Schema":
        """Return a new schema projecting the given columns, in order."""
        return Schema(self.field(name) for name in names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a new schema with columns renamed per *mapping*."""
        return Schema(
            Field(mapping.get(field.name, field.name), field.dtype, field.nullable)
            for field in self._fields
        )

    def __repr__(self) -> str:
        inner = ", ".join(str(field) for field in self._fields)
        return f"Schema({inner})"
