"""Partitioned columnar tables with dense global rowids.

A :class:`Table` is a list of :class:`~repro.storage.partition.Partition`
objects.  Global rowids are dense ``0..n-1`` in table order: partition
``k`` owns the contiguous range following partition ``k-1``.  This is
the tuple-identifier space the PatchIndex operates on (paper §III) and
what lets the PatchSelect operator assume "rowids of incoming tuples are
equal to tuple identifiers" when placed directly on a scan (§VI-A1).

Mutations (append / delete) renumber rowids densely and notify
registered listeners so PatchIndexes can maintain their patch sets
incrementally (paper §VIII outlook, implemented in
:mod:`repro.core.maintenance`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError, StorageError
from repro.storage.blocks import DEFAULT_BLOCK_SIZE
from repro.storage.column import ColumnVector
from repro.storage.partition import Partition
from repro.storage.schema import Schema

# Listener signature: (event, payload) where event is "append", "load",
# "delete" or "update".  Every payload carries the table name under
# "table" (so one listener can serve many tables, e.g. a storage
# engine's WAL data logging).  Append payload: partition_id,
# start_rowid, the appended columns, row_count.  Load payload: the
# loaded columns plus the partitioning strategy.  Delete payload: the
# sorted global rowids removed (before renumbering).
TableListener = Callable[[str, dict], None]


class Table:
    """A named, partitioned, columnar table."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        partition_count: int = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if partition_count < 1:
            raise StorageError("partition_count must be >= 1")
        self.name = name
        self.schema = schema
        self.block_size = block_size
        self.partitions: list[Partition] = [
            Partition(
                partition_id,
                schema,
                {
                    field.name: ColumnVector.empty(field.dtype)
                    for field in schema
                },
                base_rowid=0,
                block_size=block_size,
            )
            for partition_id in range(partition_count)
        ]
        self._listeners: list[TableListener] = []
        self._next_insert_partition = 0

    # -- basic properties ------------------------------------------------

    @property
    def row_count(self) -> int:
        return sum(partition.row_count for partition in self.partitions)

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def column_names(self) -> tuple[str, ...]:
        return self.schema.names

    def add_listener(self, listener: TableListener) -> None:
        """Register a mutation listener (used by PatchIndex maintenance)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: TableListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, event: str, payload: dict) -> None:
        for listener in self._listeners:
            listener(event, payload)

    # -- rowid bookkeeping -------------------------------------------------

    def _renumber(self) -> None:
        """Reassign dense base rowids after any partition size change."""
        base = 0
        for partition in self.partitions:
            partition.base_rowid = base
            base += partition.row_count

    def partition_of_rowid(self, rowid: int) -> Partition:
        """Return the partition owning the global *rowid*."""
        for partition in self.partitions:
            start, stop = partition.rowid_range
            if start <= rowid < stop:
                return partition
        raise StorageError(f"rowid {rowid} out of range for table {self.name!r}")

    # -- bulk load ---------------------------------------------------------

    def load_columns(
        self,
        columns: Mapping[str, ColumnVector],
        partition_by_round_robin_blocks: bool = False,
    ) -> None:
        """Bulk-load rows, splitting them across partitions.

        By default rows are range-split: partition ``k`` receives the
        ``k``-th contiguous slice.  This preserves insertion order inside
        each partition, which is what makes per-partition NSC discovery
        meaningful (paper §VI-A2: sorted subsequences are computed per
        partition).  Round-robin block distribution is available for
        workloads that want size balance over order locality.
        """
        total: int | None = None
        for field in self.schema:
            if field.name not in columns:
                raise SchemaError(f"load missing column {field.name!r}")
            if total is None:
                total = len(columns[field.name])
            elif len(columns[field.name]) != total:
                raise StorageError("load columns have differing lengths")
        if total is None or total == 0:
            return

        count = self.partition_count
        if partition_by_round_robin_blocks:
            assignments = (
                np.arange(total) // self.block_size % count
            ).astype(np.int64)
            slices = [np.flatnonzero(assignments == k) for k in range(count)]
            for partition, indices in zip(self.partitions, slices):
                if len(indices) == 0:
                    continue
                partition.append(
                    {
                        name: column.take(indices)
                        for name, column in columns.items()
                    }
                )
        else:
            bounds = np.linspace(0, total, count + 1).astype(np.int64)
            for partition, start, stop in zip(
                self.partitions, bounds[:-1], bounds[1:]
            ):
                if start == stop:
                    continue
                partition.append(
                    {
                        name: column.slice(int(start), int(stop))
                        for name, column in columns.items()
                    }
                )
        self._renumber()
        self._notify(
            "load",
            {
                "table": self.name,
                "columns": dict(columns),
                "row_count": total,
                "round_robin": partition_by_round_robin_blocks,
            },
        )

    @classmethod
    def from_pydict(
        cls,
        name: str,
        schema: Schema,
        data: Mapping[str, Sequence[object]],
        partition_count: int = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "Table":
        """Build and load a table from Python lists (tests / examples)."""
        table = cls(name, schema, partition_count, block_size)
        columns = {
            field.name: ColumnVector.from_pylist(field.dtype, list(data[field.name]))
            for field in schema
        }
        table.load_columns(columns)
        return table

    # -- incremental mutation ----------------------------------------------

    def insert_rows(self, rows: Iterable[Sequence[object]]) -> int:
        """Append Python-level rows; returns the number inserted.

        Rows are appended to the *last* partition so that existing global
        rowids remain stable (appends only extend the rowid space).  The
        mutation event carries the new rows so PatchIndexes can extend
        their patch sets without a full rescan.
        """
        materialized = [list(row) for row in rows]
        if not materialized:
            return 0
        width = len(self.schema)
        for row in materialized:
            if len(row) != width:
                raise SchemaError(
                    f"insert row has {len(row)} values, schema has {width}"
                )
        columns = {
            field.name: ColumnVector.from_pylist(
                field.dtype, [row[position] for row in materialized]
            )
            for position, field in enumerate(self.schema)
        }
        target = self.partitions[-1]
        start_rowid = target.base_rowid + target.row_count
        target.append(columns)
        # Appending to the last partition keeps all earlier base rowids
        # valid; no renumbering required.
        self._notify(
            "append",
            {
                "table": self.name,
                "partition_id": target.partition_id,
                "start_rowid": start_rowid,
                "columns": columns,
                "row_count": len(materialized),
            },
        )
        return len(materialized)

    def delete_rowids(self, rowids: Iterable[int]) -> int:
        """Delete rows by global rowid; returns the number removed.

        Remaining rows are renumbered densely.  Listeners receive the
        sorted deleted rowids (in the *old* numbering) so PatchIndexes can
        remap their patch sets (paper §VIII outlook).
        """
        doomed = np.unique(np.fromiter(rowids, dtype=np.int64))
        if len(doomed) == 0:
            return 0
        total = self.row_count
        if len(doomed) and (doomed[0] < 0 or doomed[-1] >= total):
            raise StorageError("delete rowid out of range")
        removed = 0
        per_partition: list[tuple[int, np.ndarray]] = []
        for partition in self.partitions:
            start, stop = partition.rowid_range
            local = doomed[(doomed >= start) & (doomed < stop)] - start
            per_partition.append((partition.partition_id, local))
            if len(local) == 0:
                continue
            keep = np.ones(partition.row_count, dtype=np.bool_)
            keep[local] = False
            partition.replace_rows(keep)
            removed += len(local)
        self._renumber()
        self._notify(
            "delete",
            {
                "table": self.name,
                "rowids": doomed,
                "per_partition": per_partition,
            },
        )
        return removed

    def update_rowid(self, rowid: int, column: str, value: object) -> None:
        """Point-update a single cell (exceptional path in a column store).

        Implemented as an in-place write to the owning partition's value
        array; listeners receive an ``update`` event so PatchIndexes can
        add the row to their patch set conservatively.
        """
        partition = self.partition_of_rowid(rowid)
        local = rowid - partition.base_rowid
        vector = partition.column(column)
        field = self.schema.field(column)
        from repro.types.datatypes import coerce_scalar, numpy_dtype

        old_value = vector[local]
        coerced = coerce_scalar(value, field.dtype)
        values = vector.values
        if not values.flags.writeable:
            values = values.copy()
        validity = vector.validity
        if coerced is None:
            if validity is None:
                validity = np.ones(len(vector), dtype=np.bool_)
            else:
                validity = validity.copy()
            validity[local] = False
        else:
            if validity is not None:
                validity = validity.copy()
                validity[local] = True
            if values.dtype == np.dtype(object):
                # np.asarray would wrap the string in a 0-d object array.
                values[local] = coerced
            else:
                values[local] = np.asarray(
                    coerced, dtype=numpy_dtype(field.dtype)
                )
        partition._columns[column] = ColumnVector(field.dtype, values, validity)
        partition._block_stats.clear()
        self._notify(
            "update",
            {
                "table": self.name,
                "rowid": rowid,
                "partition_id": partition.partition_id,
                "column": column,
                "value": value,
                "old_value": old_value,
            },
        )

    # -- whole-column access -------------------------------------------------

    def read_column(self, name: str) -> ColumnVector:
        """Materialize a full column across partitions in rowid order."""
        self.schema.field(name)
        return ColumnVector.concat(
            [partition.column(name) for partition in self.partitions]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Table({self.name!r}, rows={self.row_count}, "
            f"partitions={self.partition_count})"
        )
