"""Write-ahead log for DDL, PatchIndex creation, and row data.

The paper keeps the WAL slim: a ``CREATE PATCHINDEX`` record is logged
*without* the discovered patches, and on log replay the index is rebuilt
from the data using the same discovery mechanism as at creation time
(paper §V).  This module implements that design as a JSON-lines log.

Record kinds:

metadata records
    ``create_table``     table name, schema, partition count
    ``drop_table``       table name
    ``create_index``     index name, table, column, kind, mode, threshold
    ``drop_index``       index name
    ``checkpoint``       marker after which earlier records may be pruned
                         (see :meth:`WriteAheadLog.compact`)

data records (durable storage engine, :mod:`repro.storage.engine`)
    ``append``           rows appended to a table (column → values)
    ``load``             a bulk load split across partitions
    ``delete``           global rowids removed from a table
    ``update``           one cell written in place

patch records (incremental maintenance, :mod:`repro.core.delta`)
    ``patch_delta``      the checksummed PatchDelta one index derived
                         from one data record (linked by ``applies_to``)

A ``create_index`` record still never carries the discovered patches,
and the paper's rebuild-from-data recovery remains the safety net: a
``patch_delta`` is an *optimization* that lets recovery replay membership
changes over checkpoint-persisted patch sets, and any missing or
checksum-mismatching delta sends that index down the rebuild path.
Data records carry *physical* scalar values (dates as day numbers, NULL
as ``null``) so replay is byte-exact.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import WalError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

_METADATA_KINDS = frozenset(
    {"create_table", "drop_table", "create_index", "drop_index", "checkpoint"}
)
#: Row-data record kinds; replayed by the durable storage engine and
#: prunable once a checkpoint has flushed them into segment files.
DATA_KINDS = frozenset({"append", "load", "delete", "update"})

#: Patch-maintenance record kinds; replayed over persisted patch sets
#: and prunable alongside data records (a checkpoint persists the
#: materialized patch sets they produced).
PATCH_KINDS = frozenset({"patch_delta"})

_KNOWN_KINDS = _METADATA_KINDS | DATA_KINDS | PATCH_KINDS


@dataclass(frozen=True)
class WalRecord:
    """One log record: a kind plus a JSON-serializable payload."""

    lsn: int
    kind: str
    payload: dict = field(default_factory=dict)

    def to_json(self) -> str:
        # The payload is nested so its keys (e.g. an index's own "kind")
        # can never collide with the record envelope.
        return json.dumps(
            {"lsn": self.lsn, "kind": self.kind, "payload": self.payload}
        )

    @classmethod
    def from_json(cls, line: str) -> "WalRecord":
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WalError(f"corrupt WAL line: {line!r}") from exc
        if not isinstance(raw, dict) or "kind" not in raw or "lsn" not in raw:
            raise WalError(f"malformed WAL record: {line!r}")
        kind = raw["kind"]
        lsn = raw["lsn"]
        payload = raw.get("payload", {})
        if not isinstance(kind, str) or kind not in _KNOWN_KINDS:
            raise WalError(f"unknown WAL record kind: {kind!r}")
        # JSON has no integer type of its own; bool is an int subclass in
        # Python, and floats/strings would corrupt LSN arithmetic later.
        if isinstance(lsn, bool) or not isinstance(lsn, int):
            raise WalError(f"malformed WAL LSN: {lsn!r}")
        if not isinstance(payload, dict):
            raise WalError(f"malformed WAL payload: {line!r}")
        return cls(lsn=lsn, kind=kind, payload=payload)


def live_records_of(records: list[WalRecord]) -> list[WalRecord]:
    """The still-effective subset of *records*, in LSN order.

    The shared core behind :meth:`WriteAheadLog.live_records`, also
    applied by the snapshot machinery to a *prefix* of the log (every
    record at or below a pinned LSN) — snapshot replay must elide
    cancelled create/drop pairs exactly like full recovery does.
    """
    dropped_tables: set[str] = set()
    dropped_indexes: set[str] = set()
    live: list[WalRecord] = []
    for record in reversed(records):
        if record.kind == "drop_table":
            dropped_tables.add(record.payload["name"])
        elif record.kind == "drop_index":
            dropped_indexes.add(record.payload["name"])
        elif record.kind == "create_table":
            name = record.payload["name"]
            if name in dropped_tables:
                dropped_tables.discard(name)
            else:
                live.append(record)
        elif record.kind == "create_index":
            name = record.payload["name"]
            table = record.payload["table"]
            if name in dropped_indexes or table in dropped_tables:
                dropped_indexes.discard(name)
            else:
                live.append(record)
        elif record.kind in DATA_KINDS:
            if record.payload.get("table") not in dropped_tables:
                live.append(record)
        elif record.kind in PATCH_KINDS:
            # A delta dies with its index or table; the reversed scan
            # elides the deltas of a dropped incarnation before reaching
            # (and cancelling) that incarnation's create record.
            if (
                record.payload.get("index") not in dropped_indexes
                and record.payload.get("table") not in dropped_tables
            ):
                live.append(record)
    live.reverse()
    return live


class WriteAheadLog:
    """Append-only JSONL log with replay support.

    When *path* is ``None`` the log is kept in memory only, which is the
    convenient mode for tests and benchmarks; passing a path gives
    on-disk durability with fsync-on-append.

    ``tolerate_torn_tail=True`` accepts a final line torn by a crash
    mid-append: the partial record was never acknowledged, so it is
    discarded and the file truncated back to the last complete record.
    A corrupt record *followed by complete ones* still raises — that is
    real corruption, not a torn write.  ``metrics`` optionally wires a
    :class:`~repro.obs.metrics.MetricsRegistry` that counts appended
    records and bytes (``wal.records`` / ``wal.bytes``).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        sync: bool = True,
        *,
        tolerate_torn_tail: bool = False,
        metrics: "MetricsRegistry | None" = None,
    ):
        self._path = Path(path) if path is not None else None
        self._sync = sync
        self._metrics = metrics
        self._records: list[WalRecord] = []
        self._next_lsn = 1
        #: True inside a :meth:`deferred_sync` block — appends skip
        #: their per-record fsync and the batch syncs once at exit.
        self._defer_sync = False
        self._deferred_appends = 0
        if self._path is not None and self._path.exists():
            self._records = self._read_from_disk(self._path, tolerate_torn_tail)
            if self._records:
                self._next_lsn = self._records[-1].lsn + 1

    @property
    def path(self) -> Path | None:
        return self._path

    def set_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Attach (or detach) the registry counting appends."""
        self._metrics = metrics

    def _read_from_disk(
        self, path: Path, tolerate_torn_tail: bool
    ) -> list[WalRecord]:
        raw = path.read_bytes()
        records: list[WalRecord] = []
        previous_lsn = 0
        good_end = 0
        position = 0
        lines: list[tuple[int, bytes]] = []
        for chunk in raw.split(b"\n"):
            lines.append((position, chunk))
            position += len(chunk) + 1
        nonblank = [
            (offset, chunk) for offset, chunk in lines if chunk.strip()
        ]
        for index, (offset, chunk) in enumerate(nonblank):
            try:
                record = WalRecord.from_json(chunk.decode("utf-8", "replace"))
                if record.lsn <= previous_lsn:
                    raise WalError(
                        f"non-monotonic LSN {record.lsn} after {previous_lsn}"
                    )
            except WalError:
                if tolerate_torn_tail and index == len(nonblank) - 1:
                    # A torn final append: drop it and truncate the file
                    # so subsequent appends start on a clean boundary.
                    # The truncation must be as durable as the appends
                    # were — a crash right after recovery must not
                    # resurrect the torn bytes.
                    with open(path, "r+b") as handle:
                        handle.truncate(good_end)
                        if self._sync:
                            os.fsync(handle.fileno())
                    break
                raise
            previous_lsn = record.lsn
            records.append(record)
            good_end = offset + len(chunk) + 1
        return records

    # -- appending ---------------------------------------------------------

    def append(self, kind: str, payload: dict | None = None) -> WalRecord:
        """Append a record, durably when the log is file-backed."""
        if kind not in _KNOWN_KINDS:
            raise WalError(f"unknown WAL record kind: {kind!r}")
        record = WalRecord(self._next_lsn, kind, dict(payload or {}))
        self._next_lsn += 1
        self._records.append(record)
        line = record.to_json() + "\n"
        if self._path is not None:
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                if self._sync and not self._defer_sync:
                    os.fsync(handle.fileno())
        if self._defer_sync:
            self._deferred_appends += 1
        if self._metrics is not None:
            self._metrics.counter("wal.records").inc()
            self._metrics.counter("wal.bytes").inc(len(line))
            if kind in DATA_KINDS:
                self._metrics.counter("wal.data_records").inc()
            elif kind in PATCH_KINDS:
                self._metrics.counter("wal.patch_records").inc()
        return record

    def checkpoint(self, payload: dict | None = None) -> WalRecord:
        """Write a checkpoint marker (optionally carrying manifest info)."""
        return self.append("checkpoint", payload)

    # -- group commit --------------------------------------------------------

    def sync(self) -> None:
        """fsync the log file (closes a deferred group-commit batch)."""
        if self._path is None or not self._path.exists():
            return
        with open(self._path, "a", encoding="utf-8") as handle:
            os.fsync(handle.fileno())

    @contextmanager
    def deferred_sync(self) -> Iterator[None]:
        """Group commit: batch the fsyncs of all appends in this block.

        Appends inside the block are written to the file immediately but
        skip their per-record fsync; one :meth:`sync` at block exit makes
        the whole batch durable together.  This is the server's write
        path under load — N concurrent commits pay one fsync instead of
        N.  No record is acknowledged to a caller until the block exits,
        so the durability contract per *acknowledged* record is
        unchanged.  Re-entrant blocks are no-ops (the outermost block
        owns the sync).
        """
        if self._defer_sync:
            yield
            return
        self._defer_sync = True
        self._deferred_appends = 0
        try:
            yield
        finally:
            self._defer_sync = False
            batched = self._deferred_appends
            self._deferred_appends = 0
            if batched and self._sync:
                self.sync()
            if batched and self._metrics is not None:
                self._metrics.counter("wal.group_commit.batches").inc()
                self._metrics.counter("wal.group_commit.records").inc(batched)
                self._metrics.histogram("wal.group_commit.batch_size").observe(
                    batched
                )

    # -- reading -------------------------------------------------------------

    def records(self) -> list[WalRecord]:
        """All records in LSN order."""
        return list(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the newest record, or 0 for an empty log."""
        return self._records[-1].lsn if self._records else 0

    def last_checkpoint_lsn(self) -> int | None:
        """LSN of the most recent checkpoint marker, or None."""
        for record in reversed(self._records):
            if record.kind == "checkpoint":
                return record.lsn
        return None

    def live_records(self) -> list[WalRecord]:
        """Records that still have an effect after replay.

        Create records cancelled by a later matching drop are elided,
        drop records themselves never survive (they only cancel), and
        data records of dropped tables disappear with the table.
        Checkpoint markers are bookkeeping, not replay input, so they
        are excluded.  The result is what a replay actually needs to
        apply.
        """
        return live_records_of(self._records)

    # -- compaction ---------------------------------------------------------

    def compact(self) -> int:
        """Prune records made redundant by drops and the last checkpoint.

        This implements the documented checkpoint contract ("earlier
        records may be pruned"): metadata records are condensed to the
        live set (cancelled create/drop pairs disappear), and data and
        patch-delta records at or below the most recent checkpoint
        marker are dropped — a checkpoint has already flushed their
        effect into segment files and the per-generation patch sets, so
        only the WAL tail beyond it is ever replayed.  Metadata records
        are kept across checkpoints because index *definitions* are
        always replayed from the log (their patch sets come from the
        persisted generation, or from data as the fallback).

        Replay is unaffected: :meth:`live_records` before and after
        compaction differ only in data and patch records covered by the
        checkpoint.  LSNs are preserved, as is the next LSN to assign.
        Returns the number of records pruned.
        """
        checkpoint_lsn = self.last_checkpoint_lsn()
        kept = [
            record
            for record in self.live_records()
            if not (
                record.kind in DATA_KINDS | PATCH_KINDS
                and checkpoint_lsn is not None
                and record.lsn <= checkpoint_lsn
            )
        ]
        if checkpoint_lsn is not None:
            marker = next(
                record
                for record in self._records
                if record.lsn == checkpoint_lsn
            )
            kept.append(marker)
            kept.sort(key=lambda record: record.lsn)
        pruned = len(self._records) - len(kept)
        if pruned == 0:
            return 0
        self._records = kept
        if self._path is not None:
            tmp = self._path.with_suffix(self._path.suffix + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(record.to_json() + "\n")
                handle.flush()
                if self._sync:
                    os.fsync(handle.fileno())
            os.replace(tmp, self._path)
        return pruned

    def truncate(self) -> None:
        """Discard all records (after an external full checkpoint)."""
        self._records.clear()
        if self._path is not None and self._path.exists():
            self._path.unlink()

    def __len__(self) -> int:
        return len(self._records)
