"""Write-ahead log for DDL and PatchIndex creation.

The paper keeps the WAL slim: a ``CREATE PATCHINDEX`` record is logged
*without* the discovered patches, and on log replay the index is rebuilt
from the data using the same discovery mechanism as at creation time
(paper §V).  This module implements that design as a JSON-lines log.

Record kinds:

``create_table``     table name, schema, partition count
``drop_table``       table name
``create_index``     index name, table, column, kind, mode, threshold
``drop_index``       index name
``checkpoint``       marker after which earlier records may be pruned

Row data is *not* logged — this WAL covers metadata durability only,
which is exactly the scope the paper describes for PatchIndexes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import WalError

_KNOWN_KINDS = frozenset(
    {"create_table", "drop_table", "create_index", "drop_index", "checkpoint"}
)


@dataclass(frozen=True)
class WalRecord:
    """One log record: a kind plus a JSON-serializable payload."""

    lsn: int
    kind: str
    payload: dict = field(default_factory=dict)

    def to_json(self) -> str:
        # The payload is nested so its keys (e.g. an index's own "kind")
        # can never collide with the record envelope.
        return json.dumps(
            {"lsn": self.lsn, "kind": self.kind, "payload": self.payload}
        )

    @classmethod
    def from_json(cls, line: str) -> "WalRecord":
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WalError(f"corrupt WAL line: {line!r}") from exc
        if not isinstance(raw, dict) or "kind" not in raw or "lsn" not in raw:
            raise WalError(f"malformed WAL record: {line!r}")
        kind = raw["kind"]
        lsn = raw["lsn"]
        payload = raw.get("payload", {})
        if kind not in _KNOWN_KINDS:
            raise WalError(f"unknown WAL record kind: {kind!r}")
        if not isinstance(payload, dict):
            raise WalError(f"malformed WAL payload: {line!r}")
        return cls(lsn=int(lsn), kind=kind, payload=payload)


class WriteAheadLog:
    """Append-only JSONL log with replay support.

    When *path* is ``None`` the log is kept in memory only, which is the
    convenient mode for tests and benchmarks; passing a path gives
    on-disk durability with fsync-on-append.
    """

    def __init__(self, path: str | os.PathLike | None = None, sync: bool = True):
        self._path = Path(path) if path is not None else None
        self._sync = sync
        self._records: list[WalRecord] = []
        self._next_lsn = 1
        if self._path is not None and self._path.exists():
            self._records = list(self._read_from_disk())
            if self._records:
                self._next_lsn = self._records[-1].lsn + 1

    @property
    def path(self) -> Path | None:
        return self._path

    def _read_from_disk(self) -> Iterator[WalRecord]:
        assert self._path is not None
        previous_lsn = 0
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = WalRecord.from_json(line)
                if record.lsn <= previous_lsn:
                    raise WalError(
                        f"non-monotonic LSN {record.lsn} after {previous_lsn}"
                    )
                previous_lsn = record.lsn
                yield record

    # -- appending ---------------------------------------------------------

    def append(self, kind: str, payload: dict | None = None) -> WalRecord:
        """Append a record, durably when the log is file-backed."""
        if kind not in _KNOWN_KINDS:
            raise WalError(f"unknown WAL record kind: {kind!r}")
        record = WalRecord(self._next_lsn, kind, dict(payload or {}))
        self._next_lsn += 1
        self._records.append(record)
        if self._path is not None:
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
                handle.flush()
                if self._sync:
                    os.fsync(handle.fileno())
        return record

    def checkpoint(self) -> WalRecord:
        """Write a checkpoint marker."""
        return self.append("checkpoint")

    # -- reading -------------------------------------------------------------

    def records(self) -> list[WalRecord]:
        """All records in LSN order."""
        return list(self._records)

    def live_records(self) -> list[WalRecord]:
        """Records that still have an effect after replay.

        Create records cancelled by a later matching drop are elided, and
        drop records themselves never survive (they only cancel).  The
        result is what a replay actually needs to apply.
        """
        dropped_tables: set[str] = set()
        dropped_indexes: set[str] = set()
        live: list[WalRecord] = []
        for record in reversed(self._records):
            if record.kind == "drop_table":
                dropped_tables.add(record.payload["name"])
            elif record.kind == "drop_index":
                dropped_indexes.add(record.payload["name"])
            elif record.kind == "create_table":
                name = record.payload["name"]
                if name in dropped_tables:
                    dropped_tables.discard(name)
                else:
                    live.append(record)
            elif record.kind == "create_index":
                name = record.payload["name"]
                table = record.payload["table"]
                if name in dropped_indexes or table in dropped_tables:
                    dropped_indexes.discard(name)
                else:
                    live.append(record)
        live.reverse()
        return live

    def truncate(self) -> None:
        """Discard all records (after an external full checkpoint)."""
        self._records.clear()
        if self._path is not None and self._path.exists():
            self._path.unlink()

    def __len__(self) -> int:
        return len(self._records)
