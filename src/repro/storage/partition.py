"""A horizontal partition of a table.

Each partition owns a contiguous range of global rowids
``[base_rowid, base_rowid + row_count)`` and stores one
:class:`~repro.storage.column.ColumnVector` per column, plus lazily
computed per-block min/max sketches for scan-range pruning.

Partitions are append-only at this level; logical deletes are handled by
the table through rewriting (and by PatchIndex maintenance through patch
updates), mirroring how column stores treat in-place mutation as the
exceptional path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError, StorageError
from repro.storage.blocks import (
    DEFAULT_BLOCK_SIZE,
    BlockStats,
    compute_block_stats,
    prune_blocks,
)
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.cache import ScanIO, SegmentColumnSource


class Partition:
    """Columnar storage for one horizontal slice of a table."""

    def __init__(
        self,
        partition_id: int,
        schema: Schema,
        columns: Mapping[str, ColumnVector],
        base_rowid: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        sources: "Mapping[str, SegmentColumnSource] | None" = None,
    ):
        self.partition_id = partition_id
        self.schema = schema
        self.base_rowid = base_rowid
        self.block_size = block_size
        self._columns: dict[str, ColumnVector] = {}
        #: Lazy segment-backed columns (decode-on-demand through the
        #: block cache); a column materialized into ``_columns`` always
        #: shadows its source.
        self._sources: dict[str, "SegmentColumnSource"] = {}
        self._block_stats: dict[str, list[BlockStats]] = {}

        row_count: int | None = None
        for field in schema:
            backing: "ColumnVector | SegmentColumnSource | None"
            if sources is not None and field.name in sources:
                backing = sources[field.name]
            else:
                backing = columns.get(field.name)
            if backing is None:
                raise SchemaError(f"partition missing column {field.name!r}")
            if backing.dtype != field.dtype:
                raise SchemaError(
                    f"column {field.name!r} has type {backing.dtype.name}, "
                    f"schema says {field.dtype.name}"
                )
            if row_count is None:
                row_count = len(backing)
            elif len(backing) != row_count:
                raise StorageError(
                    f"column {field.name!r} length {len(backing)} != {row_count}"
                )
            if isinstance(backing, ColumnVector):
                self._columns[field.name] = backing
            else:
                self._sources[field.name] = backing
        self.row_count = row_count if row_count is not None else 0

    # -- access --------------------------------------------------------

    def column(self, name: str) -> ColumnVector:
        """Materialized column vector (decodes a lazy source fully)."""
        try:
            return self._columns[name]
        except KeyError:
            source = self._sources.get(name)
            if source is None:
                raise SchemaError(f"unknown column: {name!r}") from None
            vector = source.materialize()
            self._columns[name] = vector
            return vector

    def column_slice(
        self, name: str, start: int, stop: int, io: "ScanIO | None" = None
    ) -> ColumnVector:
        """Rows ``[start, stop)`` of column *name*, decoding only the
        blocks the slice touches when the column is segment-backed."""
        vector = self._columns.get(name)
        if vector is not None:
            return vector.slice(start, stop)
        source = self._sources.get(name)
        if source is not None:
            return source.slice(start, stop, io)
        return self.column(name).slice(start, stop)

    def _materialize_all(self) -> None:
        """Resolve every lazy source before a mutation rewrites rows."""
        for name in list(self._sources):
            self.column(name)
        self._sources.clear()

    @property
    def rowid_range(self) -> tuple[int, int]:
        """Global rowid range ``[start, stop)`` owned by this partition."""
        return (self.base_rowid, self.base_rowid + self.row_count)

    def rowids(self) -> np.ndarray:
        """Dense array of global rowids for every row of the partition."""
        start, stop = self.rowid_range
        return np.arange(start, stop, dtype=np.int64)

    # -- block statistics / scan ranges ---------------------------------

    def block_stats(self, name: str) -> list[BlockStats]:
        """Per-block min/max sketches for column *name* (cached)."""
        if name not in self._block_stats:
            self._block_stats[name] = compute_block_stats(
                self.column(name), self.block_size
            )
        return self._block_stats[name]

    def preload_block_stats(self, name: str, stats: list[BlockStats]) -> None:
        """Prime the sketch cache from persisted segment headers.

        Lets a segment-backed partition serve range pruning without
        touching the (possibly memory-mapped) value bytes.  Any later
        mutation invalidates the cache as usual.
        """
        self.schema.field(name)
        self._block_stats[name] = list(stats)

    def scan_ranges_for_predicate(
        self, name: str, op: str, literal: object
    ) -> list[tuple[int, int]]:
        """Partition-local row ranges that may satisfy ``name <op> literal``."""
        return prune_blocks(self.block_stats(name), op, literal)

    # -- morsel iteration -------------------------------------------------

    def morsel_ranges(self, morsel_size: int) -> list[tuple[int, int]]:
        """Partition-local ``[start, stop)`` chunks of ~*morsel_size* rows.

        Chunk boundaries fall on the block grid (except the final,
        partial chunk), so a morsel-restricted scan covers whole blocks
        and the per-block min/max sketches keep their pruning value.
        Morsels never cross the partition boundary.
        """
        if morsel_size <= 0:
            raise StorageError("morsel_size must be positive")
        step = max(
            self.block_size,
            (morsel_size // self.block_size) * self.block_size,
        )
        ranges: list[tuple[int, int]] = []
        position = 0
        while position < self.row_count:
            stop = min(self.row_count, position + step)
            ranges.append((position, stop))
            position = stop
        return ranges

    # -- mutation -------------------------------------------------------

    def append(self, columns: Mapping[str, ColumnVector]) -> None:
        """Append rows; invalidates cached block statistics."""
        self._materialize_all()
        appended: dict[str, ColumnVector] = {}
        row_count: int | None = None
        for field in self.schema:
            if field.name not in columns:
                raise SchemaError(f"append missing column {field.name!r}")
            column = columns[field.name]
            if column.dtype != field.dtype:
                raise SchemaError(
                    f"append column {field.name!r}: type mismatch "
                    f"({column.dtype.name} vs {field.dtype.name})"
                )
            if row_count is None:
                row_count = len(column)
            elif len(column) != row_count:
                raise StorageError("append columns have differing lengths")
            appended[field.name] = column
        if not row_count:
            return
        for name, column in appended.items():
            self._columns[name] = ColumnVector.concat([self._columns[name], column])
        self.row_count += row_count
        self._block_stats.clear()

    def replace_rows(self, keep_mask: np.ndarray) -> None:
        """Rewrite the partition keeping only rows where *keep_mask* is True.

        Used by table-level delete.  Global rowids are reassigned by the
        owning table afterwards.
        """
        if len(keep_mask) != self.row_count:
            raise StorageError("keep_mask length mismatch")
        self._materialize_all()
        for name in list(self._columns):
            self._columns[name] = self._columns[name].filter(keep_mask)
        self.row_count = int(keep_mask.sum())
        self._block_stats.clear()

    def project(self, names: Sequence[str]) -> dict[str, ColumnVector]:
        """Return references to the requested column vectors."""
        return {name: self.column(name) for name in names}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partition(id={self.partition_id}, rows={self.row_count}, "
            f"base_rowid={self.base_rowid})"
        )
