"""The versioned manifest of a durable database directory.

The manifest is the root of the on-disk state: it names every table, its
schema and partition layout, and the segment file backing each column of
each partition, all as of one checkpoint LSN.  Everything in the WAL
with an LSN at or below ``checkpoint_lsn`` is already reflected in the
segments; recovery loads the manifest first and then replays only the
WAL tail beyond it.  Since format version 3 the manifest may also point
at a per-generation ``patches.json`` holding the materialized patch sets
of every PatchIndex as of the checkpoint; recovery restores indexes from
it and replays the ``patch_delta`` tail, falling back to the paper's
rebuild-from-data path when the file (or any required delta) is absent.

The manifest is a single JSON document written atomically (temp file +
fsync + rename), so a crash during checkpoint leaves either the old or
the new manifest, never a torn one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError

#: Bump when the manifest or segment layout changes incompatibly.
#: Version 2 introduced encoded RSEG2 segments; version 3 added the
#: optional ``patches`` pointer to a per-generation patch-set file.
#: Older manifests remain fully readable (they simply carry no
#: persisted patches, so recovery rebuilds indexes from data).
FORMAT_VERSION = 3

#: Manifest versions this reader understands.
SUPPORTED_VERSIONS = frozenset({1, 2, 3})

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class PartitionManifest:
    """One partition: its row count and column → segment path mapping."""

    row_count: int
    #: Column name → segment file path relative to the data directory.
    segments: dict[str, str]


@dataclass(frozen=True)
class TableManifest:
    """One table: schema payload, layout, and its partition manifests."""

    name: str
    #: Schema serialized as in WAL ``create_table`` records.
    schema: list[dict]
    block_size: int
    partitions: list[PartitionManifest]

    @property
    def partition_count(self) -> int:
        return len(self.partitions)


@dataclass(frozen=True)
class Manifest:
    """Snapshot of the durable state as of ``checkpoint_lsn``."""

    checkpoint_lsn: int
    tables: dict[str, TableManifest] = field(default_factory=dict)
    format_version: int = FORMAT_VERSION
    #: Path (relative to the data directory) of the generation's
    #: materialized patch-set file, or None when none was persisted.
    patches: str | None = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "format_version": self.format_version,
                "checkpoint_lsn": self.checkpoint_lsn,
                "patches": self.patches,
                "tables": {
                    name: {
                        "schema": table.schema,
                        "block_size": table.block_size,
                        "partitions": [
                            {
                                "row_count": partition.row_count,
                                "segments": partition.segments,
                            }
                            for partition in table.partitions
                        ],
                    }
                    for name, table in sorted(self.tables.items())
                },
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StorageError("corrupt manifest: not valid JSON") from exc
        if not isinstance(raw, dict) or "checkpoint_lsn" not in raw:
            raise StorageError("corrupt manifest: missing checkpoint_lsn")
        version = int(raw.get("format_version", 0))
        if version not in SUPPORTED_VERSIONS:
            raise StorageError(
                f"manifest format version {version} is not supported "
                f"(expected one of {sorted(SUPPORTED_VERSIONS)})"
            )
        tables: dict[str, TableManifest] = {}
        for name, entry in raw.get("tables", {}).items():
            tables[name] = TableManifest(
                name=name,
                schema=list(entry["schema"]),
                block_size=int(entry["block_size"]),
                partitions=[
                    PartitionManifest(
                        row_count=int(partition["row_count"]),
                        segments=dict(partition["segments"]),
                    )
                    for partition in entry["partitions"]
                ],
            )
        patches = raw.get("patches")
        return cls(
            checkpoint_lsn=int(raw["checkpoint_lsn"]),
            tables=tables,
            format_version=version,
            patches=str(patches) if patches is not None else None,
        )


def write_manifest(
    root: str | os.PathLike, manifest: Manifest, *, sync: bool = True
) -> Path:
    """Atomically install *manifest* as ``<root>/manifest.json``."""
    root = Path(root)
    path = root / MANIFEST_NAME
    tmp = root / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(manifest.to_json())
        handle.write("\n")
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_manifest(root: str | os.PathLike) -> Manifest | None:
    """Load ``<root>/manifest.json``, or None when no checkpoint exists."""
    path = Path(root) / MANIFEST_NAME
    if not path.exists():
        return None
    return Manifest.from_json(path.read_text(encoding="utf-8"))
