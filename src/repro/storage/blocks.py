"""Per-block min/max sketches ("small materialized aggregates").

The paper's scan operators determine scan ranges from selection
predicates using small materialized aggregates (Moerkotte, VLDB '98).
This module computes and stores per-block minimum / maximum / null-count
statistics for each column of a partition, and evaluates simple
comparison predicates against them to prune whole blocks.

A *block* is a fixed-size run of consecutive rows inside one partition.
Pruning yields rowid *scan ranges* which the PatchedScan later merges
with the patch information (paper §VI-A3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.column import ColumnVector

DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class BlockStats:
    """Min/max/null statistics for one column over one block of rows.

    ``minimum``/``maximum`` are ``None`` when the block contains only
    NULLs (then nothing can be said about its value range).
    """

    start: int
    stop: int
    minimum: object | None
    maximum: object | None
    null_count: int

    @property
    def row_count(self) -> int:
        return self.stop - self.start

    def may_contain(self, op: str, literal: object) -> bool:
        """Conservatively decide whether any row can satisfy ``col <op> literal``.

        Returns True when the block must be scanned.  NULL rows never
        satisfy a comparison predicate, so an all-NULL block is prunable.
        """
        if self.minimum is None or self.maximum is None:
            return False
        if op == "=":
            return self.minimum <= literal <= self.maximum
        if op == "<":
            return self.minimum < literal
        if op == "<=":
            return self.minimum <= literal
        if op == ">":
            return self.maximum > literal
        if op == ">=":
            return self.maximum >= literal
        if op in ("!=", "<>"):
            # Only prunable when the whole block equals the literal.
            return not (self.minimum == self.maximum == literal)
        # Unknown operator: never prune.
        return True


def compute_block_stats(
    column: ColumnVector, block_size: int = DEFAULT_BLOCK_SIZE
) -> list[BlockStats]:
    """Compute :class:`BlockStats` for every block of *column*.

    The ``start``/``stop`` offsets are partition-local row offsets;
    callers translate them to global rowids by adding the partition's
    base rowid.
    """
    stats: list[BlockStats] = []
    total = len(column)
    for start in range(0, total, block_size):
        stop = min(start + block_size, total)
        chunk = column.slice(start, stop)
        if chunk.validity is None:
            valid_values = chunk.values
            nulls = 0
        else:
            valid_values = chunk.values[chunk.validity]
            nulls = int((~chunk.validity).sum())
        if len(valid_values) == 0:
            stats.append(BlockStats(start, stop, None, None, nulls))
            continue
        if valid_values.dtype == np.dtype(object):
            minimum: object = min(valid_values)
            maximum: object = max(valid_values)
        else:
            minimum = valid_values.min().item()
            maximum = valid_values.max().item()
        stats.append(BlockStats(start, stop, minimum, maximum, nulls))
    return stats


def prune_blocks(
    stats: list[BlockStats], op: str, literal: object
) -> list[tuple[int, int]]:
    """Evaluate a comparison against block stats and return surviving ranges.

    Adjacent surviving blocks are coalesced into maximal ``[start, stop)``
    ranges so the scan produces few, large ranges.
    """
    ranges: list[tuple[int, int]] = []
    for block in stats:
        if not block.may_contain(op, literal):
            continue
        if ranges and ranges[-1][1] == block.start:
            ranges[-1] = (ranges[-1][0], block.stop)
        else:
            ranges.append((block.start, block.stop))
    return ranges
