"""Columnar storage substrate: schemas, columns, partitions, tables, WAL.

This subpackage is the stand-in for the storage layer of the analytical
engine the paper integrated PatchIndexes into (Actian Vector).  It
provides partitioned, block-oriented columnar tables with NULL support
and per-block min/max sketches ("small materialized aggregates") used
for scan-range pruning.
"""

from repro.storage.schema import Field, Schema
from repro.storage.column import ColumnVector
from repro.storage.blocks import BlockStats, DEFAULT_BLOCK_SIZE
from repro.storage.partition import Partition
from repro.storage.table import Table
from repro.storage.catalog import Catalog
from repro.storage.wal import WriteAheadLog, WalRecord
from repro.storage.database import Database
from repro.storage.segment import read_segment, write_segment
from repro.storage.manifest import Manifest, read_manifest, write_manifest
from repro.storage.engine import DurableEngine, MemoryEngine, StorageEngine

__all__ = [
    "Field",
    "Schema",
    "ColumnVector",
    "BlockStats",
    "DEFAULT_BLOCK_SIZE",
    "Partition",
    "Table",
    "Catalog",
    "WriteAheadLog",
    "WalRecord",
    "Database",
    "read_segment",
    "write_segment",
    "Manifest",
    "read_manifest",
    "write_manifest",
    "StorageEngine",
    "MemoryEngine",
    "DurableEngine",
]
