"""Pluggable persistence backends: the storage-engine seam.

A :class:`~repro.storage.database.Database` delegates everything about
*durability* to a :class:`StorageEngine`:

- where the :class:`~repro.storage.wal.WriteAheadLog` lives,
- whether table mutations (append / load / delete / update) are logged
  as WAL *data* records,
- what a ``CHECKPOINT`` does,
- and how a database instance is brought back after a restart.

Two engines exist.  :class:`MemoryEngine` is the historical behaviour:
row data lives purely in memory and the WAL (optional) covers metadata
only.  :class:`DurableEngine` manages a *data directory*::

    <root>/wal.jsonl            metadata + data WAL (fsync per append)
    <root>/manifest.json        versioned checkpoint manifest
    <root>/segments/g<lsn>/     one generation of immutable per-column
        <table>/p<k>.<col>.seg  segment files per checkpoint

Checkpoint flushes every column of every partition into a fresh segment
generation — plus the materialized patch sets of every PatchIndex into
the generation's ``patches.json`` — installs the manifest atomically,
writes a ``checkpoint`` marker and compacts the WAL.  Recovery loads the
manifest, replays the WAL tail beyond the checkpoint LSN, and then
*restores* each index from its persisted patch sets by replaying the
``patch_delta`` tail over them; any index whose persisted state or delta
chain is absent, corrupt or gapped falls back to re-discovery from the
recovered data — exactly the slim-WAL recovery path of paper §V, now as
the safety net rather than the only path.

The seam leaves query execution untouched: segment-backed columns are
plain (optionally memory-mapped) NumPy arrays inside the same
:class:`~repro.storage.partition.Partition` objects, so serial and
morsel-parallel scans, block pruning and the PatchSelect rowid
invariants (§VI-A1) work unchanged.
"""

from __future__ import annotations

import functools
import json
import os
import shutil
import time
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.check.sanitize import make_lock, release_resource, track_resource
from repro.errors import StorageError, WalError
from repro.storage.blocks import DEFAULT_BLOCK_SIZE
from repro.storage.cache import (
    BlockCache,
    SegmentColumnSource,
    cache_capacity_from_env,
)
from repro.storage.column import ColumnVector
from repro.storage.manifest import (
    Manifest,
    PartitionManifest,
    TableManifest,
    read_manifest,
    write_manifest,
)
from repro.storage.partition import Partition
from repro.storage.segment import ENCODING_MODES, open_segment, write_segment
from repro.storage.snapshot import SnapshotHandle
from repro.storage.table import Table
from repro.storage.wal import (
    DATA_KINDS,
    PATCH_KINDS,
    WalRecord,
    WriteAheadLog,
    live_records_of,
)
from repro.types import DataType
from repro.types.datatypes import coerce_scalar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database

WAL_NAME = "wal.jsonl"
SEGMENTS_DIR = "segments"
PATCHES_NAME = "patches.json"


# -- data-record (de)serialization ------------------------------------------


def column_to_jsonable(column: ColumnVector) -> list:
    """Physical scalar list for a WAL data record (``None`` for NULL)."""
    if column.values.dtype == np.dtype(object):
        out: list = list(column.values)
    else:
        out = column.values.tolist()
    if column.validity is not None:
        for position in np.flatnonzero(~column.validity):
            out[int(position)] = None
    return out


def column_from_jsonable(dtype: DataType, items: list) -> ColumnVector:
    """Rebuild a column from the physical scalars of a WAL data record."""
    return ColumnVector.from_pylist(dtype, items)


def scalar_to_jsonable(value: object, dtype: DataType) -> object:
    """Physical representation of one cell value (dates → day numbers)."""
    coerced = coerce_scalar(value, dtype)
    if isinstance(coerced, np.generic):  # pragma: no cover - defensive
        return coerced.item()
    return coerced


# -- persisted patch sets ----------------------------------------------------


def persisted_index_entry(index) -> dict:
    """Checksummed ``patches.json`` entry for one PatchIndex.

    Captures everything a restore needs without touching table data: the
    definition (to match against the WAL ``create_index`` record), the
    physical design, the rebuild count, the drift counters and the
    materialized per-partition patch sets as of the checkpoint.
    """
    from repro.core.delta import delta_checksum

    stats = index.maintenance_stats()
    body = {
        "definition": {
            "name": index.name,
            "table": index.table_name,
            "column": index.column_name,
            "kind": index.kind,
            "mode": index.mode.value if index.mode is not None else None,
            "threshold": index.threshold,
            "scope": index.scope,
            "ascending": index.ascending,
            "strict": index.strict,
        },
        "design": index.design,
        "rebuild_count": index.rebuild_count,
        "stats": stats.to_payload() if stats is not None else None,
        "partitions": [
            {
                "row_count": index.partition_patches(pid).row_count,
                "rowids": index.partition_patches(pid).rowids().tolist(),
            }
            for pid in range(index.table.partition_count)
        ],
    }
    body["checksum"] = delta_checksum(body)
    return body


def restore_patch_index(
    table: Table,
    payload: dict,
    entry: dict,
    delta_records: list[WalRecord],
    required_lsns: set[int],
    provenance: str,
):
    """Restore one PatchIndex from a persisted entry plus its delta tail.

    *payload* is the WAL ``create_index`` record, *entry* the matching
    ``patches.json`` entry, *delta_records* the index's ``patch_delta``
    records beyond the checkpoint in LSN order, and *required_lsns* the
    LSNs of every post-checkpoint data record that must have produced a
    delta (all appends/loads/deletes of the table, updates of the
    indexed column).  Returns ``(index, deltas_replayed)`` on success or
    ``(None, 0)`` when anything disqualifies the restore — checksum
    mismatch, definition drift, a missing or corrupt delta, an
    ``invalidate`` marker, or a final patch-set/partition row-count
    disagreement — in which case the caller falls back to the paper's
    rebuild-from-data path.
    """
    from repro.core.constraints import ConstraintKind
    from repro.core.delta import PatchDelta, delta_checksum
    from repro.core.maintenance import MaintenanceStats
    from repro.core.patch_index import PatchIndex, PatchIndexMode
    from repro.core.patches import PatchSet

    index = None
    try:
        body = {key: value for key, value in entry.items() if key != "checksum"}
        if entry.get("checksum") != delta_checksum(body):
            return None, 0
        definition = entry.get("definition", {})
        expected = {
            "name": payload["name"],
            "table": payload["table"],
            "column": payload["column"],
            "kind": payload["kind"],
            "threshold": float(payload.get("threshold", 1.0)),
            "scope": payload.get("scope", "global"),
            "ascending": bool(payload.get("ascending", True)),
            "strict": bool(payload.get("strict", False)),
        }
        for key, value in expected.items():
            if definition.get(key) != value:
                return None, 0
        deltas: list[PatchDelta] = []
        seen_lsns: set[int] = set()
        for record in delta_records:
            delta, applies_to = PatchDelta.from_payload(record.payload)
            if delta.invalidates:
                return None, 0
            deltas.append(delta)
            if applies_to is not None:
                seen_lsns.add(applies_to)
        if required_lsns - seen_lsns:
            return None, 0
        partitions = entry["partitions"]
        if len(partitions) != table.partition_count:
            return None, 0
        patch_sets = [
            PatchSet.build(
                np.asarray(part["rowids"], dtype=np.int64),
                int(part["row_count"]),
                entry["design"],
            )
            for part in partitions
        ]
        # The live index may legitimately carry a different mode than its
        # create record (a rebuild re-resolves AUTO); the persisted
        # definition records the live mode as of the checkpoint.
        mode = definition.get("mode")
        index = PatchIndex(
            payload["name"],
            table,
            payload["column"],
            ConstraintKind.from_name(payload["kind"]),
            patch_sets,
            expected["threshold"],
            ascending=expected["ascending"],
            strict=expected["strict"],
            scope=expected["scope"],
            provenance=provenance,
            mode=PatchIndexMode(mode) if mode is not None else None,
        )
        index.rebuild_count = int(entry.get("rebuild_count", 0))
        if entry.get("stats") is not None:
            index.seed_maintenance_stats(
                MaintenanceStats.from_payload(entry["stats"])
            )
        for delta in deltas:
            index.apply_external_delta(delta)
        for partition in table.partitions:
            patches = index.partition_patches(partition.partition_id)
            if patches.row_count != partition.row_count:
                raise StorageError(
                    f"restored patch set of {index.name!r} covers "
                    f"{patches.row_count} rows, partition "
                    f"{partition.partition_id} holds {partition.row_count}"
                )
    except (StorageError, KeyError, TypeError, ValueError):
        if index is not None:
            index.detach()
        return None, 0
    return index, len(deltas)


# -- the seam ----------------------------------------------------------------


class StorageEngine:
    """Interface a Database persists through; also the in-memory engine.

    The base class implements the metadata-only behaviour the engine
    historically had: table data lives in memory, checkpoints write a
    WAL marker and compact the metadata log, and recovery is a no-op
    (``Database.recover`` with data loaders covers the legacy path).
    """

    name = "memory"
    #: True when table mutations are logged as WAL data records.
    logs_data = False
    #: True when the engine can pin MVCC snapshots (durable only: a
    #: snapshot is reconstructed from immutable segments + the WAL).
    supports_snapshots = False

    def cache_stats(self) -> dict | None:
        """Block-cache snapshot, or None when the engine has no cache."""
        return None

    def pin_snapshot(self, database: "Database") -> SnapshotHandle | None:
        """Pin the current (generation, WAL LSN) state; None = unsupported."""
        return None

    def release_snapshot(self, handle: SnapshotHandle) -> None:
        """Drop one pin; deferred generation GC may run (no-op here)."""

    def encoded_fraction(self, table_name: str) -> float:
        """Fraction of *table_name*'s blocks with a non-raw encoding."""
        return 0.0

    def encoded_ratios(self) -> dict[str, float]:
        """Per-table encoded/raw payload byte ratio (empty without one)."""
        return {}

    def cache_hit_ratio(self) -> float:
        """Lifetime block-cache hit ratio (0.0 without a cache)."""
        return 0.0

    def open_wal(
        self, database: "Database", wal_path: str | os.PathLike | None
    ) -> WriteAheadLog:
        return WriteAheadLog(wal_path, metrics=database.obs)

    def recover(self, database: "Database") -> None:
        """Restore durable state on open (no-op for the memory engine)."""

    def table_event(
        self, database: "Database", event: str, payload: dict
    ) -> None:
        """Observe one table mutation (no-op for the memory engine)."""

    def checkpoint(self, database: "Database") -> dict:
        """Durably flush state; returns a summary for the caller."""
        lsn = database.wal.last_lsn
        database.wal.checkpoint({"checkpoint_lsn": lsn})
        pruned = database.wal.compact()
        return {
            "engine": self.name,
            "lsn": lsn,
            "tables": len(database.catalog.table_names()),
            "segments": 0,
            "segment_bytes": 0,
            "wal_pruned": pruned,
        }

    def close(self, database: "Database") -> None:
        """Release resources held on behalf of *database*."""

    def describe(self) -> str:
        return self.name


class MemoryEngine(StorageEngine):
    """Volatile row storage with an optional metadata-only WAL."""


class DurableEngine(StorageEngine):
    """Columnar segment persistence with a data WAL under one directory."""

    name = "durable"
    logs_data = True
    supports_snapshots = True

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        mmap: bool = False,
        sync: bool = True,
        cache_bytes: int | None = None,
        encoding: str = "auto",
        cache: BlockCache | None = None,
    ):
        if encoding not in ENCODING_MODES:
            raise StorageError(
                f"encoding must be one of {ENCODING_MODES}, got {encoding!r}"
            )
        self.root = Path(root)
        self.mmap = mmap
        self.sync = sync
        #: Segment encoding mode for checkpoints: "auto" (cost-based
        #: per-block picker) or "raw".
        self.encoding = encoding
        self.cache_bytes = (
            cache_capacity_from_env() if cache_bytes is None else max(0, int(cache_bytes))
        )
        #: Shared decoded-block cache; ``None`` when disabled
        #: (``cache_bytes=0``).  Workers inject a process-wide cache.
        if cache is not None:
            self._cache: BlockCache | None = cache
        elif self.cache_bytes > 0:
            self._cache = BlockCache(self.cache_bytes)
        else:
            self._cache = None
        #: Per-table fraction of blocks carrying a non-raw encoding and
        #: encoded/raw byte ratio, refreshed at checkpoint and load.
        self._encoded_fractions: dict[str, float] = {}
        self._encoded_ratios: dict[str, float] = {}
        #: Snapshot machinery (see :mod:`repro.storage.snapshot`): the
        #: lock serializes pinning with the checkpoint generation flip;
        #: the cache shares one reconstruction per (generation, LSN)
        #: key; pinned/deferred generation bookkeeping drives the
        #: deferred GC of segment directories a checkpoint superseded.
        self._snapshot_lock = make_lock("storage.engine.snapshot")
        self._snapshots: dict[tuple[int, int], SnapshotHandle] = {}
        self._pinned_generations: dict[str, int] = {}
        self._deferred_generations: set[str] = set()
        self._current_manifest: Manifest | None = None
        self._metrics = None

    @property
    def cache(self) -> BlockCache | None:
        return self._cache

    def cache_stats(self) -> dict | None:
        if self._cache is None:
            return None
        return self._cache.stats()

    def encoded_fraction(self, table_name: str) -> float:
        return self._encoded_fractions.get(table_name, 0.0)

    def encoded_ratios(self) -> dict[str, float]:
        """Per-table encoded/raw payload byte ratio (≤ 1.0 when smaller)."""
        return dict(self._encoded_ratios)

    def cache_hit_ratio(self) -> float:
        return self._cache.hit_ratio() if self._cache is not None else 0.0

    # -- lifecycle --------------------------------------------------------

    def open_wal(
        self, database: "Database", wal_path: str | os.PathLike | None
    ) -> WriteAheadLog:
        if wal_path is not None:
            raise StorageError(
                "the durable engine owns the WAL location; do not pass "
                "wal_path together with path="
            )
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / SEGMENTS_DIR).mkdir(exist_ok=True)
        # Publish the registry under the snapshot lock: checkpoint and
        # pin paths read ``_metrics`` while holding it, and the lock is
        # uncontended this early (open runs before any reader exists).
        with self._snapshot_lock:
            self._metrics = database.obs
        if self._cache is not None:
            self._cache.attach_metrics(database.obs)
        return WriteAheadLog(
            self.root / WAL_NAME,
            sync=self.sync,
            tolerate_torn_tail=True,
            metrics=database.obs,
        )

    def describe(self) -> str:
        return f"durable({self.root})"

    # -- mutation logging -------------------------------------------------

    def table_event(
        self, database: "Database", event: str, payload: dict
    ) -> None:
        """Append the WAL data record mirroring one table mutation."""
        table_name = payload.get("table")
        if table_name is None:  # a listener fed us a foreign event
            return
        if event == "append":
            database.wal.append(
                "append",
                {
                    "table": table_name,
                    "columns": {
                        name: column_to_jsonable(column)
                        for name, column in payload["columns"].items()
                    },
                    "row_count": payload["row_count"],
                },
            )
        elif event == "load":
            database.wal.append(
                "load",
                {
                    "table": table_name,
                    "columns": {
                        name: column_to_jsonable(column)
                        for name, column in payload["columns"].items()
                    },
                    "round_robin": bool(payload.get("round_robin", False)),
                },
            )
        elif event == "delete":
            database.wal.append(
                "delete",
                {
                    "table": table_name,
                    "rowids": np.asarray(payload["rowids"]).tolist(),
                },
            )
        elif event == "update":
            table = database.catalog.table(table_name)
            dtype = table.schema.field(payload["column"]).dtype
            database.wal.append(
                "update",
                {
                    "table": table_name,
                    "rowid": int(payload["rowid"]),
                    "column": payload["column"],
                    "value": scalar_to_jsonable(payload["value"], dtype),
                },
            )

    # -- checkpoint -------------------------------------------------------

    def _nsc_patch_rowids(
        self, database: "Database", table: Table
    ) -> dict[str, dict[int, np.ndarray]]:
        """Partition-local NSC patch rowids per column of *table*.

        The patch-aware ``pfor`` codec stores exactly these rows
        verbatim so the kept values pack at the clean-column rate — the
        compressor reusing the PatchIndex's knowledge (paper §VIII).
        """
        per_column: dict[str, dict[int, np.ndarray]] = {}
        for index in database.catalog.indexes_on(table.name):
            if index.kind != "sorted":
                continue
            by_partition = per_column.setdefault(index.column_name, {})
            for partition in table.partitions:
                rowids = index.partition_patches(
                    partition.partition_id
                ).rowids()
                existing = by_partition.get(partition.partition_id)
                if existing is not None:
                    rowids = np.union1d(existing, rowids)
                by_partition[partition.partition_id] = np.asarray(
                    rowids, dtype=np.int64
                )
        return per_column

    def checkpoint(self, database: "Database") -> dict:
        """Flush segments, install the manifest, mark and compact the WAL."""
        lsn = database.wal.last_lsn
        generation = f"g{lsn:012d}"
        tables: dict[str, TableManifest] = {}
        table_details: dict[str, dict] = {}
        segment_count = 0
        segment_bytes = 0
        for table in database.catalog.tables():
            partition_manifests: list[PartitionManifest] = []
            table_dir = self.root / SEGMENTS_DIR / generation / table.name
            table_dir.mkdir(parents=True, exist_ok=True)
            table_bytes = 0
            patch_rowids = (
                self._nsc_patch_rowids(database, table)
                if self.encoding == "auto"
                else {}
            )
            column_details: dict[str, dict] = {
                field.name: {"segment_bytes": 0, "encodings": {}}
                for field in table.schema
            }
            encoded_blocks = 0
            total_blocks = 0
            payload_total = 0
            raw_payload_total = 0
            for partition in table.partitions:
                segments: dict[str, str] = {}
                for field in table.schema:
                    filename = f"p{partition.partition_id}.{field.name}.seg"
                    relative = (
                        f"{SEGMENTS_DIR}/{generation}/{table.name}/{filename}"
                    )
                    info = write_segment(
                        table_dir / filename,
                        partition.column(field.name),
                        table.block_size,
                        sync=self.sync,
                        encoding=self.encoding,
                        patch_rowids=patch_rowids.get(field.name, {}).get(
                            partition.partition_id
                        ),
                    )
                    segments[field.name] = relative
                    segment_count += 1
                    table_bytes += info.bytes_written
                    detail = column_details[field.name]
                    detail["segment_bytes"] += info.bytes_written
                    for tag, count in info.encodings.items():
                        detail["encodings"][tag] = (
                            detail["encodings"].get(tag, 0) + count
                        )
                        total_blocks += count
                        if tag != "raw":
                            encoded_blocks += count
                    payload_total += info.payload_bytes
                    raw_payload_total += info.raw_payload_bytes
                partition_manifests.append(
                    PartitionManifest(
                        row_count=partition.row_count, segments=segments
                    )
                )
            from repro.storage.database import schema_to_payload

            tables[table.name] = TableManifest(
                name=table.name,
                schema=schema_to_payload(table.schema),
                block_size=table.block_size,
                partitions=partition_manifests,
            )
            segment_bytes += table_bytes
            self._encoded_fractions[table.name] = (
                encoded_blocks / total_blocks if total_blocks else 0.0
            )
            self._encoded_ratios[table.name] = (
                payload_total / raw_payload_total if raw_payload_total else 1.0
            )
            table_details[table.name] = {
                "segment_bytes": table_bytes,
                "encoded_ratio": self._encoded_ratios[table.name],
                "columns": column_details,
            }
            database.obs.gauge(f"storage.{table.name}.segments").set(
                len(partition_manifests) * len(table.schema)
            )
            database.obs.gauge(f"storage.{table.name}.segment_bytes").set(
                table_bytes
            )
            database.obs.gauge(f"storage.{table.name}.encoded_ratio").set(
                self._encoded_ratios[table.name]
            )
        patches_path = self._write_patch_sets(database, generation, lsn)
        # The flip — manifest install, WAL marker + compaction, old-
        # generation GC — happens under the snapshot lock so a reader
        # pinning concurrently sees either entirely the old or entirely
        # the new generation, never a torn mix (the slow segment writes
        # above ran outside the lock into the not-yet-visible directory).
        manifest = Manifest(
            checkpoint_lsn=lsn, tables=tables, patches=patches_path
        )
        with self._snapshot_lock:  # lock-ok: the flip's fsyncs ARE the atomicity contract vs concurrent pins
            write_manifest(self.root, manifest, sync=self.sync)
            self._current_manifest = manifest
            database.wal.checkpoint({"checkpoint_lsn": lsn})
            pruned = database.wal.compact()
            doomed = self._collect_old_generations_locked(generation)
            # The generation flipped: every cached block keyed by an older
            # generation is unreachable from the new readers, so drop them
            # eagerly rather than letting them age out of the LRU.
            if self._cache is not None:
                self._cache.clear()
        # Directory deletion is slow and, once a generation is neither
        # current nor pinned, invisible to the bookkeeping — do it after
        # releasing the lock so concurrent pins don't stall behind rmtree.
        for stale in doomed:
            shutil.rmtree(stale, ignore_errors=True)
        database.obs.gauge("storage.checkpoint_lsn").set(lsn)
        return {
            "engine": self.name,
            "lsn": lsn,
            "tables": len(tables),
            "segments": segment_count,
            "segment_bytes": segment_bytes,
            "wal_pruned": pruned,
            "table_details": table_details,
        }

    def _write_patch_sets(
        self, database: "Database", generation: str, lsn: int
    ) -> str:
        """Materialize every index's patch sets into the generation dir.

        Runs outside the snapshot lock (into the not-yet-visible
        generation directory, like the segment writes); the manifest's
        ``patches`` pointer makes the file reachable only at the flip.
        With the patch sets persisted per checkpoint, recovery and
        snapshot reconstruction replay the ``patch_delta`` tail instead
        of re-discovering non-drifted indexes from data.
        """
        entries: dict[str, dict] = {}
        for table in database.catalog.tables():
            for index in database.catalog.indexes_on(table.name):
                entries[index.name] = persisted_index_entry(index)
        relative = f"{SEGMENTS_DIR}/{generation}/{PATCHES_NAME}"
        path = self.root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"checkpoint_lsn": lsn, "indexes": entries}, handle)
            handle.write("\n")
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        return relative

    def _load_persisted_patches(self, manifest: Manifest | None) -> dict:
        """Per-index ``patches.json`` entries, or ``{}`` when unusable.

        A missing or unreadable file degrades every index to the
        rebuild-from-data fallback rather than failing recovery: the
        persisted patch sets are an optimization, never a correctness
        requirement.
        """
        if manifest is None or manifest.patches is None:
            return {}
        path = self.root / manifest.patches
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}
        indexes = raw.get("indexes") if isinstance(raw, dict) else None
        return dict(indexes) if isinstance(indexes, dict) else {}

    def _collect_old_generations_locked(self, current: str) -> list[Path]:
        """Pick superseded segment generations to delete; defer pinned ones.

        Called with the snapshot lock held (the ``_locked`` suffix is
        the project convention the L13 lint rule understands).  A
        generation still pinned by a live snapshot is left on disk and
        queued for deferred GC — :meth:`release_snapshot` collects it
        once the last pin drops — so a checkpoint never deletes files an
        in-flight scan reads.  Returns the doomed directories; the
        caller deletes them *after* releasing the lock (a directory that
        is neither current nor pinned is unreachable from any future
        pin, and a concurrent double-delete is harmless).
        """
        doomed: list[Path] = []
        segments_root = self.root / SEGMENTS_DIR
        for entry in segments_root.iterdir():
            if entry.name == current or not entry.is_dir():
                continue
            if self._pinned_generations.get(entry.name, 0) > 0:
                self._deferred_generations.add(entry.name)
                continue
            doomed.append(entry)
            self._deferred_generations.discard(entry.name)
        if self._metrics is not None:
            self._metrics.gauge("storage.snapshot.deferred_generations").set(
                len(self._deferred_generations)
            )
        return doomed

    # -- recovery ---------------------------------------------------------

    def recover(self, database: "Database") -> None:
        """Manifest load → WAL tail replay → PatchIndex restore/rebuild.

        Table recovery is unchanged: segments plus the data tail.  Each
        index is then *restored* — persisted patch sets of the
        checkpoint generation with the ``patch_delta`` tail replayed on
        top (:func:`restore_patch_index`) — and only falls back to the
        paper's rebuild-from-data discovery when the persisted state or
        delta chain is unusable.  ``recovery.indexes_restored`` vs
        ``recovery.indexes_rebuilt`` gauges report which path each index
        took.
        """
        started = time.perf_counter()
        manifest = read_manifest(self.root)
        with self._snapshot_lock:
            # Recovery runs before the database is shared, but the
            # manifest is lock-guarded state everywhere else — keep the
            # discipline uniform so the static checker can prove it.
            self._current_manifest = manifest
        checkpoint_lsn = manifest.checkpoint_lsn if manifest else None
        if manifest is not None:
            for table_manifest in manifest.tables.values():
                database._install_table(
                    self._load_table(table_manifest, manifest.checkpoint_lsn)
                )
        # Tables dropped after the checkpoint are gone even though the
        # manifest still carries them; apply those drops before replay.
        for record in database.wal.records():
            if (
                record.kind == "drop_table"
                and (checkpoint_lsn is None or record.lsn > checkpoint_lsn)
                and database.catalog.has_table(record.payload["name"])
            ):
                database.catalog.drop_table(record.payload["name"])

        from repro.storage.database import payload_to_schema

        replayed = 0
        index_records: list[WalRecord] = []
        patch_records: dict[str, list[WalRecord]] = {}
        # (table, kind, updated column, lsn) of every replayed data
        # record — the gap-detection input for index restores.
        data_tail: list[tuple[str, str, str | None, int]] = []
        database._replaying = True
        try:
            for record in database.wal.live_records():
                if record.kind == "create_table":
                    name = record.payload["name"]
                    if database.catalog.has_table(name):
                        continue  # already loaded from the manifest
                    table = Table(
                        name,
                        payload_to_schema(record.payload["schema"]),
                        int(record.payload.get("partition_count", 1)),
                        int(
                            record.payload.get(
                                "block_size", DEFAULT_BLOCK_SIZE
                            )
                        ),
                    )
                    database._install_table(table)
                elif record.kind == "create_index":
                    index_records.append(record)
                elif record.kind in PATCH_KINDS:
                    if (
                        checkpoint_lsn is not None
                        and record.lsn <= checkpoint_lsn
                    ):
                        continue  # reflected in the persisted patch sets
                    patch_records.setdefault(
                        record.payload.get("index"), []
                    ).append(record)
                elif record.kind in DATA_KINDS:
                    if (
                        checkpoint_lsn is not None
                        and record.lsn <= checkpoint_lsn
                    ):
                        continue  # already flushed into segments
                    self._apply_data_record(database, record)
                    data_tail.append(
                        (
                            record.payload["table"],
                            record.kind,
                            record.payload.get("column"),
                            record.lsn,
                        )
                    )
                    replayed += 1
            persisted = self._load_persisted_patches(manifest)
            rebuilt = 0
            restored = 0
            deltas_replayed = 0
            for record in index_records:
                payload = record.payload
                if not database.catalog.has_table(payload["table"]):
                    raise WalError(
                        f"index {payload['name']!r} references missing table"
                    )
                index = None
                entry = persisted.get(payload["name"])
                if (
                    entry is not None
                    and checkpoint_lsn is not None
                    and record.lsn <= checkpoint_lsn
                ):
                    required = {
                        lsn
                        for tbl, kind, column, lsn in data_tail
                        if tbl == payload["table"]
                        and (
                            kind != "update" or column == payload["column"]
                        )
                    }
                    index, count = restore_patch_index(
                        database.catalog.table(payload["table"]),
                        payload,
                        entry,
                        patch_records.get(payload["name"], []),
                        required,
                        provenance="recovery",
                    )
                    deltas_replayed += count
                if index is not None:
                    database.catalog.add_index(index)
                    index.delta_sink = database._on_patch_delta
                    restored += 1
                    continue
                # Rebuild from data via discovery — the threshold was
                # enforced at creation time; recovery must not fail just
                # because maintenance drifted the column past it since.
                database.create_patch_index(
                    payload["name"],
                    payload["table"],
                    payload["column"],
                    kind=payload["kind"],
                    mode=payload.get("mode", "auto"),
                    threshold=float(payload.get("threshold", 1.0)),
                    scope=payload.get("scope", "global"),
                    ascending=bool(payload.get("ascending", True)),
                    strict=bool(payload.get("strict", False)),
                    _log=False,
                    _provenance="recovery",
                    _enforce_threshold=False,
                )
                rebuilt += 1
        finally:
            database._replaying = False
        elapsed = time.perf_counter() - started
        database.obs.counter("recovery.count").inc()
        database.obs.histogram("recovery.seconds").observe(elapsed)
        database.obs.gauge("recovery.replayed_records").set(replayed)
        database.obs.gauge("recovery.indexes_rebuilt").set(rebuilt)
        database.obs.gauge("recovery.indexes_restored").set(restored)
        database.obs.gauge("recovery.delta_records_replayed").set(
            deltas_replayed
        )

    def attach_tables(
        self, expected_lsn: int | None = None
    ) -> dict[str, Table]:
        """Read-only attach for a worker process: tables, no Database.

        Reproduces the coordinator's table state from the data directory
        alone — manifest load (memory-mapping segment columns when the
        engine was opened with ``mmap=True``), post-checkpoint drops,
        then a deterministic replay of the live WAL data tail.  The WAL
        is opened without torn-tail tolerance: tolerating a torn tail
        truncates the file, and an attach must never write to the
        coordinator's live log.

        *expected_lsn* is the coordinator WAL's last LSN at planning
        time; a mismatch means the database changed (or the worker sees
        a different directory) and the attach refuses rather than serve
        divergent data — the coordinator falls back to serial execution.
        """
        manifest = read_manifest(self.root)
        wal = WriteAheadLog(
            self.root / WAL_NAME, sync=False, tolerate_torn_tail=False
        )
        if expected_lsn is not None and wal.last_lsn != expected_lsn:
            raise StorageError(
                f"worker attach at {self.root} saw WAL LSN {wal.last_lsn}, "
                f"coordinator planned against {expected_lsn}"
            )
        return self._reconstruct_tables(manifest, wal.records())

    def _reconstruct_tables(
        self,
        manifest: Manifest | None,
        records: list[WalRecord],
        *,
        record_stats: bool = True,
    ) -> dict[str, Table]:
        """Table state at one point of the log: manifest + tail replay.

        The shared core of :meth:`attach_tables` (worker processes) and
        :meth:`pin_snapshot` (in-process MVCC readers): load every table
        of *manifest* lazily from its segment files, apply post-
        checkpoint drops, then replay the live data tail of *records*.
        Callers choose the point in time by passing only the records at
        or below their LSN.  ``record_stats=False`` keeps a snapshot
        reconstruction from overwriting the live engine's encoded-ratio
        gauges.
        """
        checkpoint_lsn = manifest.checkpoint_lsn if manifest else None
        tables: dict[str, Table] = {}
        if manifest is not None:
            for table_manifest in manifest.tables.values():
                tables[table_manifest.name] = self._load_table(
                    table_manifest,
                    manifest.checkpoint_lsn,
                    record_stats=record_stats,
                )
        for record in records:
            if (
                record.kind == "drop_table"
                and (checkpoint_lsn is None or record.lsn > checkpoint_lsn)
            ):
                tables.pop(record.payload["name"], None)

        from repro.storage.database import payload_to_schema

        for record in live_records_of(records):
            if record.kind == "create_table":
                name = record.payload["name"]
                if name in tables:
                    continue  # already loaded from the manifest
                tables[name] = Table(
                    name,
                    payload_to_schema(record.payload["schema"]),
                    int(record.payload.get("partition_count", 1)),
                    int(record.payload.get("block_size", DEFAULT_BLOCK_SIZE)),
                )
            elif record.kind in DATA_KINDS:
                if checkpoint_lsn is not None and record.lsn <= checkpoint_lsn:
                    continue  # already flushed into segments
                table = tables.get(record.payload["table"])
                if table is None:
                    raise WalError(
                        f"data record for unknown table "
                        f"{record.payload['table']!r} during attach"
                    )
                self._apply_record_to_table(table, record)
        return tables

    # -- snapshots ---------------------------------------------------------

    def pin_snapshot(self, database: "Database") -> SnapshotHandle:
        """Pin the current (manifest generation, WAL LSN) for a reader.

        Reconstructs the table state at exactly that pair — or reuses
        the cached reconstruction when an earlier reader already pinned
        the same key — and takes one refcount on it plus one on the
        generation's segment directory, deferring its GC past any
        checkpoint that supersedes it.  Runs under the snapshot lock so
        it serializes only with the checkpoint *flip* (and other pins),
        never with WAL appends: writers do not block readers.
        """
        wal = database.wal
        with self._snapshot_lock:
            manifest = self._current_manifest
            generation_lsn = (
                manifest.checkpoint_lsn if manifest is not None else 0
            )
            wal_lsn = wal.last_lsn
            key = (generation_lsn, wal_lsn)
            handle = self._snapshots.get(key)
            if handle is None:
                handle = self._advance_snapshot_locked(
                    wal, generation_lsn, wal_lsn
                )
            if handle is None:
                records = [
                    record
                    for record in wal.records()
                    if record.lsn <= wal_lsn
                ]
                tables = self._reconstruct_tables(
                    manifest, records, record_stats=False
                )
                handle = SnapshotHandle(
                    key,
                    generation_lsn,
                    wal_lsn,
                    tables,
                    records=records,
                    # Bind the registry here, under the lock: the
                    # builder later runs under the handle's catalog
                    # lock, where touching engine state would invert
                    # the catalog/snapshot lock order.
                    index_builder=functools.partial(
                        self._build_snapshot_indexes,
                        metrics=self._metrics,
                    ),
                )
                # Retire unpinned reconstructions of superseded states;
                # the cache then holds the pinned set plus this key.
                for stale_key, stale in list(self._snapshots.items()):
                    if stale.pins <= 0:
                        del self._snapshots[stale_key]
                self._snapshots[key] = handle
                if self._metrics is not None:
                    self._metrics.counter("storage.snapshot.builds").inc()
            elif self._metrics is not None:
                self._metrics.counter("storage.snapshot.reuses").inc()
            handle.pins += 1
            track_resource("snapshot_pin", str(handle.key))
            generation_name = handle.generation_name
            if generation_name is not None:
                self._pinned_generations[generation_name] = (
                    self._pinned_generations.get(generation_name, 0) + 1
                )
            if self._metrics is not None:
                self._metrics.counter("storage.snapshot.pins").inc()
                self._metrics.gauge("storage.snapshot.active").set(
                    sum(h.pins for h in self._snapshots.values())
                )
        return handle

    def _advance_snapshot_locked(
        self, wal: WriteAheadLog, generation_lsn: int, wal_lsn: int
    ) -> SnapshotHandle | None:
        """Roll an unpinned cached handle forward to *wal_lsn* in place.

        Called with the snapshot lock held on a cache miss.  When a
        cached reconstruction of the *same* generation sits at a lower
        LSN, is unpinned (no reader observes its tables), and the WAL
        span between the two LSNs is DDL-free (only data and
        ``patch_delta`` records), the handle's tables are advanced by
        replaying just that tail — its PatchIndexes, attached as table
        listeners, maintain themselves through the same incremental path
        as the live database — and the handle is rekeyed.  Anything else
        returns None and the caller reconstructs from scratch.
        """
        best = None
        for cached in self._snapshots.values():
            if (
                cached.pins <= 0
                and cached.generation_lsn == generation_lsn
                and cached.wal_lsn < wal_lsn
                and (best is None or cached.wal_lsn > best.wal_lsn)
            ):
                best = cached
        if best is None:
            return None
        tail = [
            record
            for record in wal.records()
            if best.wal_lsn < record.lsn <= wal_lsn
        ]
        for record in tail:
            if record.kind not in DATA_KINDS and record.kind not in PATCH_KINDS:
                return None  # DDL in the span: reconstruct from scratch
            if (
                record.kind in DATA_KINDS
                and record.payload.get("table") not in best.tables
            ):
                return None
        applied = 0
        for record in tail:
            if record.kind in DATA_KINDS:
                self._apply_record_to_table(
                    best.tables[record.payload["table"]], record
                )
                applied += 1
        del self._snapshots[best.key]
        best.key = (generation_lsn, wal_lsn)
        best.wal_lsn = wal_lsn
        best.records.extend(tail)
        self._snapshots[best.key] = best
        if self._metrics is not None:
            self._metrics.counter("storage.snapshot.advances").inc()
            self._metrics.counter("storage.snapshot.advance_records").inc(
                applied
            )
        return best

    def _build_snapshot_indexes(
        self, handle: SnapshotHandle, catalog, *, metrics=None
    ) -> None:
        """Attach PatchIndexes to a snapshot catalog (lazy, per handle).

        Mirrors recovery at the pinned point in time: each index that
        existed at the pinned LSN is restored from the pinned
        generation's ``patches.json`` plus its ``patch_delta`` tail at
        or below the pin, falling back to fresh discovery over the
        snapshot tables.  Snapshot indexes keep ``delta_sink=None`` —
        their deltas are never logged — but stay attached as table
        listeners so :meth:`_advance_snapshot_locked` maintains them.
        """
        from repro.core.patch_index import PatchIndex, PatchIndexMode

        persisted: dict = {}
        generation_name = handle.generation_name
        if generation_name is not None:
            path = (
                self.root / SEGMENTS_DIR / generation_name / PATCHES_NAME
            )
            try:
                raw = json.loads(path.read_text(encoding="utf-8"))
                indexes = raw.get("indexes") if isinstance(raw, dict) else None
                if isinstance(indexes, dict):
                    persisted = dict(indexes)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                persisted = {}
        live = live_records_of(handle.records)
        index_records = [r for r in live if r.kind == "create_index"]
        patch_records: dict[str, list[WalRecord]] = {}
        data_tail: list[tuple[str, str, str | None, int]] = []
        for record in live:
            if record.lsn <= handle.generation_lsn:
                continue
            if record.kind in PATCH_KINDS:
                patch_records.setdefault(
                    record.payload.get("index"), []
                ).append(record)
            elif record.kind in DATA_KINDS:
                data_tail.append(
                    (
                        record.payload["table"],
                        record.kind,
                        record.payload.get("column"),
                        record.lsn,
                    )
                )
        built = 0
        for record in index_records:
            payload = record.payload
            table = handle.tables.get(payload["table"])
            if table is None:
                continue
            index = None
            entry = persisted.get(payload["name"])
            if entry is not None and record.lsn <= handle.generation_lsn:
                required = {
                    lsn
                    for tbl, kind, column, lsn in data_tail
                    if tbl == payload["table"]
                    and (kind != "update" or column == payload["column"])
                }
                index, _ = restore_patch_index(
                    table,
                    payload,
                    entry,
                    patch_records.get(payload["name"], []),
                    required,
                    provenance="snapshot",
                )
            if index is None:
                try:
                    index = PatchIndex.create(
                        payload["name"],
                        table,
                        payload["column"],
                        kind=payload["kind"],
                        mode=PatchIndexMode(payload.get("mode", "auto")),
                        threshold=float(payload.get("threshold", 1.0)),
                        scope=payload.get("scope", "global"),
                        ascending=bool(payload.get("ascending", True)),
                        strict=bool(payload.get("strict", False)),
                        provenance="snapshot",
                        enforce_threshold=False,
                    )
                except StorageError:  # pragma: no cover - defensive
                    continue
            catalog.add_index(index)
            built += 1
        if metrics is not None and built:
            metrics.counter("storage.snapshot.indexes_built").inc(built)

    def release_snapshot(self, handle: SnapshotHandle) -> None:
        """Drop one pin and garbage-collect deferred generations."""
        with self._snapshot_lock:
            if handle.pins > 0:
                handle.pins -= 1
                release_resource("snapshot_pin", str(handle.key))
            generation_name = handle.generation_name
            if generation_name is not None:
                remaining = (
                    self._pinned_generations.get(generation_name, 0) - 1
                )
                if remaining > 0:
                    self._pinned_generations[generation_name] = remaining
                else:
                    self._pinned_generations.pop(generation_name, None)
            doomed = self._sweep_deferred_generations_locked()
            if self._metrics is not None:
                self._metrics.gauge("storage.snapshot.active").set(
                    sum(h.pins for h in self._snapshots.values())
                )
        # rmtree outside the lock: a swept generation is already gone
        # from every bookkeeping structure, so no pin can reach it, and
        # readers should not queue behind directory deletion.
        for path in doomed:
            shutil.rmtree(path, ignore_errors=True)

    def _sweep_deferred_generations_locked(self) -> list[Path]:
        """Pick deferred generation dirs that lost their last pin.

        Called with the snapshot lock held (``_locked`` convention).
        Cached (unpinned) reconstructions over a swept generation are
        evicted with it so a later pin can never resurrect readers over
        deleted files.  Returns the directories to delete; the caller
        removes them after releasing the lock.
        """
        doomed: list[Path] = []
        for generation_name in list(self._deferred_generations):
            if self._pinned_generations.get(generation_name, 0) > 0:
                continue
            doomed.append(self.root / SEGMENTS_DIR / generation_name)
            self._deferred_generations.discard(generation_name)
            for key, cached in list(self._snapshots.items()):
                if (
                    cached.pins <= 0
                    and cached.generation_name == generation_name
                ):
                    del self._snapshots[key]
        if self._metrics is not None:
            self._metrics.gauge("storage.snapshot.deferred_generations").set(
                len(self._deferred_generations)
            )
        return doomed

    def _load_table(
        self,
        table_manifest: TableManifest,
        generation: int,
        *,
        record_stats: bool = True,
    ) -> Table:
        """Attach one table to its checkpointed segment files.

        Columns stay *lazy*: each is backed by a
        :class:`~repro.storage.cache.SegmentColumnSource` that decodes
        blocks on demand through the shared cache, keyed by the manifest
        *generation* (the checkpoint LSN) so a later checkpoint can
        never serve stale blocks.  Block sketches come straight from the
        segment headers, so range pruning works without touching any
        value bytes.
        """
        from repro.storage.database import payload_to_schema

        schema = payload_to_schema(table_manifest.schema)
        table = Table(
            table_manifest.name,
            schema,
            table_manifest.partition_count,
            table_manifest.block_size,
        )
        partitions: list[Partition] = []
        encoded_blocks = 0
        total_blocks = 0
        payload_total = 0
        raw_payload_total = 0
        for partition_id, partition_manifest in enumerate(
            table_manifest.partitions
        ):
            sources: dict[str, SegmentColumnSource] = {}
            stats = {}
            for field in schema:
                relative = partition_manifest.segments[field.name]
                reader = open_segment(
                    self.root / relative, mmap=self.mmap
                )
                sources[field.name] = SegmentColumnSource(
                    reader,
                    self._cache,
                    table=table_manifest.name,
                    column=field.name,
                    segment=relative,
                    generation=generation,
                )
                stats[field.name] = reader.stats
                # Estimate the encoded/raw ratio from the header alone
                # (strings lack an exact raw size there; use encoded).
                from repro.types.datatypes import numpy_dtype

                item = (
                    numpy_dtype(reader.dtype).itemsize
                    if reader.dtype != DataType.STRING
                    else 0
                )
                for index, tag in enumerate(reader.encodings):
                    total_blocks += 1
                    if tag != "raw":
                        encoded_blocks += 1
                    encoded_size = reader.block_payload_bytes(index)
                    payload_total += encoded_size
                    raw_payload_total += (
                        reader.stats[index].row_count * item
                        if item
                        else encoded_size
                    )
            partition = Partition(
                partition_id,
                schema,
                {},
                base_rowid=0,
                block_size=table_manifest.block_size,
                sources=sources,
            )
            for name, blocks in stats.items():
                partition.preload_block_stats(name, blocks)
            partitions.append(partition)
        table.partitions = partitions
        table._renumber()
        if record_stats:
            self._encoded_fractions[table_manifest.name] = (
                encoded_blocks / total_blocks if total_blocks else 0.0
            )
            self._encoded_ratios[table_manifest.name] = (
                payload_total / raw_payload_total if raw_payload_total else 1.0
            )
        return table

    def _apply_data_record(
        self, database: "Database", record: WalRecord
    ) -> None:
        """Re-apply one data record to the recovered catalog."""
        table = database.catalog.table(record.payload["table"])
        self._apply_record_to_table(table, record)

    def _apply_record_to_table(self, table: Table, record: WalRecord) -> None:
        """Re-apply one data record to an already-resolved table."""
        payload = record.payload
        if record.kind == "append":
            names = table.schema.names
            columns = {
                name: payload["columns"][name] for name in names
            }
            rows = [
                [columns[name][position] for name in names]
                for position in range(int(payload["row_count"]))
            ]
            table.insert_rows(rows)
        elif record.kind == "load":
            table.load_columns(
                {
                    name: column_from_jsonable(
                        table.schema.field(name).dtype, items
                    )
                    for name, items in payload["columns"].items()
                },
                partition_by_round_robin_blocks=bool(
                    payload.get("round_robin", False)
                ),
            )
        elif record.kind == "delete":
            table.delete_rowids(
                np.asarray(payload["rowids"], dtype=np.int64)
            )
        elif record.kind == "update":
            table.update_rowid(
                int(payload["rowid"]), payload["column"], payload["value"]
            )
