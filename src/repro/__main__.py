r"""Interactive SQL shell and network server.

``python -m repro [--threads N] [--metrics-dump PATH] [--data-dir DIR]
[wal-path]`` starts the REPL over a local
:class:`repro.storage.database.Database`;
``python -m repro --connect repro://host:port`` runs the same REPL
against a remote server; ``python -m repro serve --data-dir DIR
[--host H] [--port P]`` starts the server itself.

A minimal REPL — enough to poke at PatchIndexes interactively:

    $ python -m repro
    repro> CREATE TABLE t (c BIGINT);
    repro> INSERT INTO t VALUES (1), (2), (2);
    repro> CREATE PATCHINDEX pi ON t(c) TYPE UNIQUE;
    repro> SELECT COUNT(DISTINCT c) AS n FROM t;
    repro> \d            -- describe tables and indexes
    repro> \threads 4    -- set the degree of parallelism (\threads shows it)
    repro> \profile on   -- print a query profile after every statement
    repro> \metrics      -- dump the instance's metrics registry
    repro> \cache        -- show block cache occupancy and hit ratio
    repro> \checkpoint   -- flush durable state (same as CHECKPOINT;)
    repro> EXPLAIN ANALYZE SELECT DISTINCT c FROM t;
    repro> \q

Statements may span lines; they execute at the terminating semicolon.
``--threads N`` (or the ``REPRO_THREADS`` environment variable) sets
the morsel-parallel worker count; ``--threads 1`` forces serial plans.
``--metrics-dump PATH`` writes the metrics registry as JSON on exit.
``--data-dir DIR`` opens (or creates) a durable database directory:
data survives restarts, ``CHECKPOINT`` / ``\checkpoint`` flushes
segment files, and reopening the same directory recovers tables and
rebuilds PatchIndexes from data.

The REPL drives remote databases through the same commands — a
:class:`repro.serve.ServerClient` mirrors the ``Database`` surface the
shell uses, so ``\d``, ``\metrics``, ``\checkpoint`` and friends work
identically over the wire.
"""

from __future__ import annotations

import sys

from repro.errors import ReproError
from repro.exec.parallel import default_parallelism
from repro.storage.database import Database

_BANNER = (
    "repro — PatchIndex reproduction shell. "
    "End statements with ';'.  \\d describes, \\threads sets "
    "parallelism, \\profile toggles profiling, \\metrics dumps "
    "metrics, \\cache shows the block cache, \\drift shows PatchIndex "
    "maintenance drift, \\checkpoint flushes durable state, \\q quits."
)


def run_shell(
    database: Database,
    input_stream=None,
    output=None,
) -> int:
    """Drive the REPL; returns an exit code.  Streams are injectable
    for tests; ``input_stream=None`` uses interactive ``input()``."""
    out = output or sys.stdout

    def emit(text: str) -> None:
        print(text, file=out)

    emit(_BANNER)
    profiling = False
    buffer: list[str] = []
    lines = iter(input_stream) if input_stream is not None else None
    while True:
        prompt = "repro> " if not buffer else "  ...> "
        if lines is not None:
            line = next(lines, None)
            if line is None:
                return 0
            line = line.rstrip("\n")
        else:  # pragma: no cover - interactive path
            try:
                line = input(prompt)
            except EOFError:
                return 0
        stripped = line.strip()
        if not buffer and stripped in ("\\q", "quit", "exit"):
            return 0
        if not buffer and stripped == "\\d":
            emit(database.describe() or "(empty catalog)")
            continue
        if not buffer and stripped.startswith("\\threads"):
            argument = stripped[len("\\threads"):].strip()
            if not argument:
                effective = (
                    database.parallelism
                    if database.parallelism is not None
                    else default_parallelism()
                )
                emit(f"parallelism: {effective}")
            else:
                try:
                    database.parallelism = max(1, int(argument))
                    emit(f"parallelism set to {database.parallelism}")
                except ValueError:
                    emit(f"error: \\threads expects an integer, got {argument!r}")
            continue
        if not buffer and stripped.startswith("\\profile"):
            argument = stripped[len("\\profile"):].strip().lower()
            if argument in ("on", "off"):
                profiling = argument == "on"
            elif argument:
                emit(f"error: \\profile expects on/off, got {argument!r}")
                continue
            else:
                profiling = not profiling
            emit(f"profiling {'on' if profiling else 'off'}")
            continue
        if not buffer and stripped == "\\metrics":
            emit(database.metrics().to_text() or "(no metrics)")
            continue
        if not buffer and stripped == "\\cache":
            stats = database.cache_stats()
            if stats is None:
                emit("(no cache: in-memory database or cache_bytes=0)")
            else:
                emit(
                    f"block cache: {stats['bytes']}/{stats['capacity_bytes']} "
                    f"bytes in {stats['entries']} entries"
                )
                emit(
                    f"  hits={stats['hits']} misses={stats['misses']} "
                    f"hit_ratio={stats['hit_ratio']:.3f}"
                )
                emit(
                    f"  evictions={stats['evictions']} "
                    f"oversized_skips={stats['skip_count']}"
                )
            continue
        if not buffer and stripped == "\\drift":
            try:
                report = database.drift_report()
            except AttributeError:
                emit("(drift reporting unavailable on this connection)")
                continue
            if not report:
                emit("(no patch indexes)")
                continue
            for entry in report:
                marker = " REBUILD PENDING" if entry["rebuild_pending"] else ""
                location = (
                    f" on {entry['table']}({entry['column']})"
                    if "table" in entry
                    else ""
                )
                emit(
                    f"{entry['index']}{location}: "
                    f"drift={entry['drift_rate']:.4f} "
                    f"threshold={entry['rebuild_threshold']:.4f} "
                    f"patches={entry['patch_count']} "
                    f"rebuilds={entry['rebuilds']}{marker}"
                )
            continue
        if not buffer and stripped == "\\checkpoint":
            try:
                info = database.checkpoint()
                emit(
                    f"checkpoint at lsn {info['lsn']}: "
                    f"{info['segments']} segments, "
                    f"{info['wal_pruned']} wal records pruned "
                    f"({info['seconds']:.3f}s)"
                )
            except ReproError as error:
                emit(f"error: {error}")
            continue
        if not stripped and not buffer:
            continue
        buffer.append(line)
        if not stripped.endswith(";"):
            continue
        statement = "\n".join(buffer)
        buffer = []
        try:
            result = database.sql(statement, profile=profiling)
            emit(result.pretty())
            if profiling and result.profile is not None:
                emit(result.profile.to_text())
        except ReproError as error:
            emit(f"error: {error}")


def run_server(
    data_dir: str | None,
    host: str,
    port: int,
    threads: int | None,
) -> int:
    """Run ``python -m repro serve`` until interrupted."""
    import asyncio

    from repro.serve import ReproServer

    database = Database(path=data_dir, parallelism=threads)
    server = ReproServer(database, host=host, port=port)

    async def serve() -> None:
        await server.start()
        storage = data_dir if data_dir is not None else "(in-memory)"
        print(
            f"repro server listening on repro://{server.host}:{server.port} "
            f"— storage {storage}; ctrl-c stops",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    threads: int | None = None
    metrics_dump: str | None = None
    data_dir: str | None = None
    connect_uri: str | None = None
    host = "127.0.0.1"
    port: int | None = None
    positional: list[str] = []
    position = 0
    while position < len(argv):
        argument = argv[position]
        if argument == "--threads":
            if position + 1 >= len(argv):
                print("error: --threads requires a value", file=sys.stderr)
                return 2
            value = argv[position + 1]
            position += 2
        elif argument.startswith("--threads="):
            value = argument.split("=", 1)[1]
            position += 1
        elif argument == "--metrics-dump":
            if position + 1 >= len(argv):
                print("error: --metrics-dump requires a path", file=sys.stderr)
                return 2
            metrics_dump = argv[position + 1]
            position += 2
            continue
        elif argument.startswith("--metrics-dump="):
            metrics_dump = argument.split("=", 1)[1]
            position += 1
            continue
        elif argument == "--data-dir":
            if position + 1 >= len(argv):
                print("error: --data-dir requires a path", file=sys.stderr)
                return 2
            data_dir = argv[position + 1]
            position += 2
            continue
        elif argument.startswith("--data-dir="):
            data_dir = argument.split("=", 1)[1]
            position += 1
            continue
        elif argument == "--connect":
            if position + 1 >= len(argv):
                print("error: --connect requires a URI", file=sys.stderr)
                return 2
            connect_uri = argv[position + 1]
            position += 2
            continue
        elif argument.startswith("--connect="):
            connect_uri = argument.split("=", 1)[1]
            position += 1
            continue
        elif argument == "--host":
            if position + 1 >= len(argv):
                print("error: --host requires a value", file=sys.stderr)
                return 2
            host = argv[position + 1]
            position += 2
            continue
        elif argument.startswith("--host="):
            host = argument.split("=", 1)[1]
            position += 1
            continue
        elif argument == "--port":
            if position + 1 >= len(argv):
                print("error: --port requires a value", file=sys.stderr)
                return 2
            value = argv[position + 1]
            position += 2
            try:
                port = int(value)
            except ValueError:
                print(
                    f"error: --port expects an integer, got {value!r}",
                    file=sys.stderr,
                )
                return 2
            continue
        elif argument.startswith("--port="):
            value = argument.split("=", 1)[1]
            position += 1
            try:
                port = int(value)
            except ValueError:
                print(
                    f"error: --port expects an integer, got {value!r}",
                    file=sys.stderr,
                )
                return 2
            continue
        else:
            positional.append(argument)
            position += 1
            continue
        try:
            threads = max(1, int(value))
        except ValueError:
            print(f"error: --threads expects an integer, got {value!r}", file=sys.stderr)
            return 2
    if positional and positional[0] == "serve":
        if len(positional) > 1:
            print(
                f"error: serve takes no positional arguments, got "
                f"{positional[1:]!r}",
                file=sys.stderr,
            )
            return 2
        if connect_uri is not None:
            print("error: serve and --connect are exclusive", file=sys.stderr)
            return 2
        from repro.serve.protocol import DEFAULT_PORT

        return run_server(
            data_dir, host, port if port is not None else DEFAULT_PORT, threads
        )
    wal_path = positional[0] if positional else None
    if connect_uri is not None:
        if wal_path is not None or data_dir is not None:
            print(
                "error: --connect is exclusive with local storage options",
                file=sys.stderr,
            )
            return 2
        from repro.serve import ServerClient

        database = ServerClient.from_uri(connect_uri)
        if threads is not None:
            database.parallelism = threads
    else:
        if data_dir is not None and wal_path is not None:
            print(
                "error: pass either --data-dir or a wal path, not both",
                file=sys.stderr,
            )
            return 2
        database = Database(wal_path, path=data_dir, parallelism=threads)
    code = run_shell(database)
    if metrics_dump is not None:
        try:
            with open(metrics_dump, "w", encoding="utf-8") as handle:
                handle.write(database.metrics().to_json())
                handle.write("\n")
        except OSError as error:
            print(f"error: cannot write metrics to {metrics_dump!r}: {error}", file=sys.stderr)
            return 2
    if connect_uri is not None:
        database.close()
    return code


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
