"""Runtime concurrency sanitizer — opt-in via ``REPRO_SANITIZE=1``.

The static layer (``tools/lockgraph.py``, lint rules L11–L13) proves
what it can about lock order and guarded state from source text alone.
This module is the runtime half of the same contract:

* :func:`make_lock` is the factory the engine's hot locks go through.
  With the knob off it returns a plain :class:`threading.Lock` /
  ``RLock`` — zero overhead, nothing changes.  With ``REPRO_SANITIZE=1``
  it returns a :class:`SanitizedLock` that

  - records every *held → acquiring* lock pair into a global order
    graph, keyed by lock **name** (instances of the same lock site share
    a node, matching the static graph's granularity), and raises a typed
    :class:`~repro.errors.LockOrderError` carrying both acquisition
    stacks the moment an inversion appears — no need to actually hit the
    deadlock interleaving;
  - exports held-time histograms through a dedicated
    :class:`~repro.obs.metrics.MetricsRegistry` under the ``sanitize``
    namespace (``sanitize.lock.<name>.held_seconds``).

* :class:`ResourceLedger` tracks balanced acquire/release of leakable
  resources — snapshot pins, shm segments — with the acquiring stack
  kept per token.  :func:`assert_balanced` raises
  :class:`~repro.errors.ResourceLeakError` listing every outstanding
  token; the test-suite teardown fixture calls it after each test.

* :func:`register_cache` keeps a weak set of live
  :class:`~repro.storage.cache.BlockCache` instances so teardown can
  cross-check each cache's byte/entry accounting against its actual
  entries (``verify_caches``).

The sanitizer's own bookkeeping uses raw ``threading.Lock`` objects and
the metrics registry's internal (raw) locks — sanitized locks must never
be needed to *record* sanitized locks, or instrumentation would recurse.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
import weakref
from typing import TYPE_CHECKING

from repro.errors import LockOrderError, ResourceLeakError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.storage.cache import BlockCache

ENV_FLAG = "REPRO_SANITIZE"

#: Sanitizer-owned instruments, separate from any Database registry so
#: held-time histograms survive engine open/close cycles within a test.
#: Created lazily: storage modules import :func:`make_lock` at import
#: time, and the metrics import would drag the operator tree with it.
_registry: "MetricsRegistry | None" = None


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get(ENV_FLAG, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def registry() -> "MetricsRegistry":
    """The sanitizer's own metrics registry (``sanitize.*`` namespace)."""
    global _registry
    if _registry is None:
        from repro.obs.metrics import MetricsRegistry

        _registry = MetricsRegistry()
    return _registry


def _capture_stack(skip: int = 2) -> str:
    """A compact formatted stack of the caller, newest frame last."""
    frames = traceback.format_stack()[:-skip]
    # Keep the last few frames: enough to name the call site without
    # dumping the whole pytest bootstrap into every error message.
    return "".join(frames[-6:]).rstrip()


# -- lock order graph ----------------------------------------------------------

#: Guards the order graph and the per-thread held stacks registry.  A
#: raw lock on purpose: see the module docstring's recursion note.
_graph_lock = threading.Lock()

#: (first_name, second_name) -> stack captured when ``second`` was first
#: acquired while ``first`` was held.
_order_edges: dict[tuple[str, str], str] = {}

_held_local = threading.local()


def _held_stack() -> list["SanitizedLock"]:
    stack = getattr(_held_local, "stack", None)
    if stack is None:
        stack = []
        _held_local.stack = stack
    return stack


def order_edges() -> dict[tuple[str, str], str]:
    """Snapshot of the observed acquisition-order edges (name pairs)."""
    with _graph_lock:
        return dict(_order_edges)


def reset_order_graph() -> None:
    """Forget all recorded edges (test isolation helper)."""
    with _graph_lock:
        _order_edges.clear()


class SanitizedLock:
    """A ``threading.Lock``/``RLock`` wrapper that checks acquisition order.

    Context-manager compatible with the locks it replaces.  Reentrant
    acquisitions of a reentrant lock are recognised per-thread and do
    not add order edges (nor double-count held time).
    """

    def __init__(self, name: str, *, reentrant: bool = False):
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._acquired_at = 0.0

    # -- order checking ----------------------------------------------------

    def _check_order(self, held: list["SanitizedLock"]) -> None:
        current_stack = None
        for prior in held:
            if prior.name == self.name:
                continue  # reentrant pair or sibling instance; no edge
            key = (self.name, prior.name)  # the *inverted* direction
            with _graph_lock:
                inverted = _order_edges.get(key)
            if inverted is not None:
                if current_stack is None:
                    current_stack = _capture_stack()
                raise LockOrderError(
                    prior.name, self.name, current_stack, inverted
                )

    def _record_edges(self, held: list["SanitizedLock"]) -> None:
        stack = None
        for prior in held:
            if prior.name == self.name:
                continue
            key = (prior.name, self.name)
            with _graph_lock:
                known = key in _order_edges
            if not known:
                if stack is None:
                    stack = _capture_stack()
                with _graph_lock:
                    _order_edges.setdefault(key, stack)

    # -- lock protocol -----------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _held_stack()
        already_held = any(entry is self for entry in held)
        if already_held and not self.reentrant:
            # Re-acquiring a non-reentrant lock on the same thread can
            # only block forever; report it instead of hanging.
            stack = _capture_stack()
            raise LockOrderError(self.name, self.name, stack, stack)
        reacquire = self.reentrant and already_held
        if not reacquire:
            self._check_order(held)
        got = self._inner.acquire(blocking, timeout)
        if got:
            if not reacquire:
                self._record_edges(held)
            held.append(self)
            if not reacquire:
                self._acquired_at = time.perf_counter()
        return got

    def release(self) -> None:
        held = _held_stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is self:
                del held[index]
                break
        still_held = any(entry is self for entry in held)
        if not still_held:
            elapsed = time.perf_counter() - getattr(
                self, "_acquired_at", time.perf_counter()
            )
            registry().histogram(
                f"sanitize.lock.{self.name}.held_seconds"
            ).observe(elapsed)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        if inner_locked is not None:
            return inner_locked()
        return False  # pragma: no cover - RLock has no locked() pre-3.12

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RLock" if self.reentrant else "Lock"
        return f"SanitizedLock({self.name!r}, {kind})"


def make_lock(name: str, *, reentrant: bool = False):
    """An engine lock: plain when the sanitizer is off, wrapped when on.

    ``name`` keys the order graph and the held-time histogram; use a
    stable dotted site name (``storage.engine.snapshot``), not a
    per-instance identity, so the runtime graph lines up with the static
    one in ``tools/lockgraph.py``.
    """
    if not enabled():
        return threading.RLock() if reentrant else threading.Lock()
    return SanitizedLock(name, reentrant=reentrant)


# -- resource ledger -----------------------------------------------------------


class ResourceLedger:
    """Balanced acquire/release accounting for leakable resources.

    Tokens are counted per ``(kind, token)`` pair, each with the stack
    of its most recent acquisition.  Releases of unknown tokens are
    ignored rather than driven negative: with the process pool, shm
    segments are created worker-side and unlinked coordinator-side, so
    one process's ledger legitimately sees only one half of some pairs
    (the authoritative cross-process check is the ``/dev/shm`` scan in
    :func:`leaked_shm_segments`).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], int] = {}
        self._stacks: dict[tuple[str, str], str] = {}

    def track(self, kind: str, token: str) -> None:
        key = (kind, str(token))
        stack = _capture_stack()
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            self._stacks[key] = stack
            count = sum(
                value for (k, _), value in self._counts.items() if k == kind
            )
        registry().gauge(f"sanitize.resources.{kind}").set(count)

    def release(self, kind: str, token: str) -> None:
        key = (kind, str(token))
        with self._lock:
            if key not in self._counts:
                return
            self._counts[key] -= 1
            if self._counts[key] <= 0:
                del self._counts[key]
                self._stacks.pop(key, None)
            count = sum(
                value for (k, _), value in self._counts.items() if k == kind
            )
        registry().gauge(f"sanitize.resources.{kind}").set(count)

    def balances(self) -> dict[str, int]:
        """Outstanding count per kind (zero entries omitted)."""
        with self._lock:
            totals: dict[str, int] = {}
            for (kind, _), count in self._counts.items():
                totals[kind] = totals.get(kind, 0) + count
            return totals

    def outstanding(self) -> list[tuple[str, str, int, str]]:
        """(kind, token, count, acquiring stack) for each open token."""
        with self._lock:
            return [
                (kind, token, count, self._stacks.get((kind, token), ""))
                for (kind, token), count in sorted(self._counts.items())
            ]

    def reset(self) -> None:
        with self._lock:
            kinds = {kind for kind, _ in self._counts}
            self._counts.clear()
            self._stacks.clear()
        for kind in kinds:
            registry().gauge(f"sanitize.resources.{kind}").set(0)


_ledger = ResourceLedger()


def ledger() -> ResourceLedger:
    return _ledger


def track_resource(kind: str, token: str) -> None:
    """Record one acquisition of a leakable resource (no-op when off)."""
    if enabled():
        _ledger.track(kind, token)


def release_resource(kind: str, token: str) -> None:
    """Record one release of a leakable resource (no-op when off)."""
    if enabled():
        _ledger.release(kind, token)


# -- cache cross-checks --------------------------------------------------------

_caches: "weakref.WeakSet[BlockCache]" = weakref.WeakSet()


def register_cache(cache: "BlockCache") -> None:
    """Keep a weak reference to a live cache for teardown verification."""
    _caches.add(cache)


def verify_caches() -> list[str]:
    """Accounting mismatches across all live BlockCaches (empty = good)."""
    problems: list[str] = []
    for cache in list(_caches):
        mismatch = cache.verify_accounting()
        if mismatch:
            problems.append(mismatch)
    return problems


# -- shm segment scan ----------------------------------------------------------


def leaked_shm_segments() -> list[str]:
    """Names of ``/dev/shm`` blocks left behind by *this* process's queries.

    Block names embed the coordinator pid (``repro_<pid>_<seq>``), so
    the scan cannot be confused by a concurrently running suite.  On
    platforms without ``/dev/shm`` the check degrades to empty.
    """
    shm_dir = "/dev/shm"
    prefix = f"repro_{os.getpid()}_"
    try:
        entries = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - non-Linux fallback
        return []
    return sorted(name for name in entries if name.startswith(prefix))


# -- teardown assertion --------------------------------------------------------


def check_balances() -> list[str]:
    """All outstanding imbalances, formatted one per entry (empty = good)."""
    problems: list[str] = []
    for kind, token, count, stack in _ledger.outstanding():
        where = f"\n  acquired at:\n{stack}" if stack else ""
        problems.append(
            f"{kind} {token!r} outstanding (count={count}){where}"
        )
    problems.extend(verify_caches())
    problems.extend(
        f"shm segment {name!r} still present in /dev/shm"
        for name in leaked_shm_segments()
    )
    return problems


def assert_balanced() -> None:
    """Raise :class:`ResourceLeakError` unless every balance is zero."""
    problems = check_balances()
    if problems:
        raise ResourceLeakError(
            "sanitizer found unbalanced resources at teardown:\n- "
            + "\n- ".join(problems)
        )


def reset() -> None:
    """Clear ledger and order graph between tests (registry persists)."""
    _ledger.reset()
    reset_order_graph()
