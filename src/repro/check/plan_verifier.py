"""Pre-execution verification of physical plans.

The optimizer rewrites queries into patched plans (distinct / sort /
join over ``R \\ P_c ∪ P_c``, paper §VI-B) and the physical planner
layers morsel-driven parallelism on top.  Each rewrite is only correct
under invariants that the operator constructors cannot see — a
MergeUnion is a sort-preserving union *only if* both inputs really are
globally sorted, a PatchSelect pair reconstructs the relation *only if*
the two branches partition the same scan with the same index.  This
module proves those invariants statically, in one O(plan-size) pass,
before any batch flows.

:func:`verify_plan` walks the operator tree bottom-up and propagates
:class:`PlanProperties` — the output schema plus a proven
:class:`OrderProperty` (sort keys and whether the order holds globally
or per partition).  Order is *established* by Sort / TopN /
ParallelSort and by the exclude-patches branch of an NSC PatchSelect
(the kept subsequence is sorted by construction, paper §IV), and
*preserved* by Filter, Project (modulo renames), Limit, MergeUnion,
the left side of MergeJoin, and Exchange (whose gather is ordered by
morsel submission = rowid order).  Everything else destroys it.

Violations raise :class:`~repro.errors.PlanInvariantError` whose
``rule`` attribute names the violated invariant:

``patchselect-placement``
    PatchSelect must sit directly on a TableScan of the index's table
    (batch rowids must be contiguous tuple identifiers, §VI-A1).
``patchselect-partitioning``
    use/exclude branches of a rewrite union must partition one scan
    with one PatchIndex — same index + mode in two branches, or the
    two modes over different row sets, is a broken ``R \\ P ∪ P``.
``nuc-use-distinct``
    in a distinct rewrite over a nearly-unique column the use-patches
    branch carries the duplicates and must pass through a Distinct.
``merge-input-order``
    MergeUnion / MergeJoin inputs must carry a proven sort order (or,
    for MergeJoin, an explicit ``check_sorted`` runtime guard).
``patch-design``
    an index's partition patch sets must share one physical design and
    an AUTO-designed index must honor the 1/64 crossover (§V).
``exchange-ordering``
    morsels at an Exchange boundary must be ascending, disjoint, and
    partition-respecting, so the ordered gather preserves rowid order.
``limit-order``
    LIMIT / TopN must not sit below order-destroying operators, and
    Sort must not reorder an already-truncated result.
``scan-ranges``
    scan ranges must be ascending, disjoint, and within the table.
``expression-binding``
    every expression / key / aggregate must resolve in its input
    schema.
``union-types``
    union inputs must agree on column names and types.

The verifier is always on: :meth:`repro.plan.physical.PhysicalPlanner.plan`
runs it on every plan it produces, and EXPLAIN surfaces the result as a
``verified: ok`` line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.patches import CROSSOVER_RATE
from repro.errors import PlanInvariantError, SchemaError
from repro.exec.expressions import ColumnRef, Expression
from repro.exec.operators.aggregate import AggregateSpec, HashAggregate
from repro.exec.operators.base import Operator
from repro.exec.operators.distinct import Distinct
from repro.exec.operators.filter import Filter
from repro.exec.operators.hash_join import HashJoin
from repro.exec.operators.limit import Limit
from repro.exec.operators.merge_join import MergeJoin
from repro.exec.operators.merge_union import MergeUnion
from repro.exec.operators.patch_select import PatchSelect, PatchSelectMode
from repro.exec.operators.project import Project
from repro.exec.operators.scan import TableScan
from repro.exec.operators.sort import Sort, SortKey
from repro.exec.operators.topn import TopN
from repro.exec.operators.union import UnionAll
from repro.exec.parallel.exchange import Exchange
from repro.exec.parallel.morsels import validate_morsels
from repro.exec.parallel.terminals import (
    ParallelAggregate,
    ParallelDistinct,
    ParallelSort,
)
from repro.storage.schema import Schema

#: Ordering scopes: proven across the whole input vs. only within each
#: table partition (the §VI-A2 partition-local NSC case).
GLOBAL = "global"
PARTITION = "partition"

#: Operators whose output row order has no relation to their input
#: order; a Limit/TopN below one of these truncates rows in an order
#: the parent then scrambles, which the planner never produces.
_ORDER_DESTROYERS = (Distinct, HashAggregate, HashJoin, UnionAll)


@dataclass(frozen=True)
class OrderProperty:
    """A proven sort order: key prefix plus the scope it holds in."""

    keys: tuple[SortKey, ...]
    scope: str = GLOBAL

    def covers(
        self, keys: tuple[SortKey, ...], require_global: bool = True
    ) -> bool:
        """Does this proven order satisfy a requirement for *keys*?"""
        if require_global and self.scope != GLOBAL:
            return False
        if len(keys) > len(self.keys):
            return False
        return self.keys[: len(keys)] == tuple(keys)


@dataclass(frozen=True)
class PlanProperties:
    """Bottom-up plan properties: output schema and proven ordering."""

    schema: Schema
    ordering: OrderProperty | None = None


@dataclass(frozen=True)
class _PatchUse:
    """One PatchSelect found inside a union branch."""

    index: object
    mode: PatchSelectMode
    #: True when a Distinct sits between this PatchSelect and the union.
    deduped: bool
    #: (table identity, covered rowid ranges) of the underlying scan.
    scan_signature: tuple


def verify_plan(operator: Operator) -> PlanProperties:
    """Verify a physical plan, returning its proven properties.

    Raises :class:`~repro.errors.PlanInvariantError` on the first
    violated invariant; see the module docstring for the rule
    catalogue.  The pass is O(plan size) and side-effect free.
    """
    return _Verifier().verify(operator)


class _Verifier:
    """Single-pass bottom-up property propagation (see module doc)."""

    def verify(
        self, op: Operator, under_distinct: bool = False
    ) -> PlanProperties:
        if isinstance(op, TableScan):
            return self._verify_scan(op)
        if isinstance(op, PatchSelect):
            return self._verify_patch_select(op)
        if isinstance(op, Filter):
            return self._verify_filter(op, under_distinct)
        if isinstance(op, Project):
            return self._verify_project(op, under_distinct)
        if isinstance(op, Sort):
            return self._verify_sort(op, under_distinct)
        if isinstance(op, TopN):
            return self._verify_topn(op, under_distinct)
        if isinstance(op, Limit):
            child = self.verify(op.child, under_distinct)
            return PlanProperties(op.schema, child.ordering)
        if isinstance(op, Distinct):
            return self._verify_distinct(op)
        if isinstance(op, HashAggregate):
            return self._verify_aggregate(op)
        if isinstance(op, UnionAll):
            return self._verify_union_all(op, under_distinct)
        if isinstance(op, MergeUnion):
            return self._verify_merge_union(op, under_distinct)
        if isinstance(op, MergeJoin):
            return self._verify_merge_join(op)
        if isinstance(op, HashJoin):
            return self._verify_hash_join(op)
        if isinstance(op, Exchange):
            return self._verify_exchange(op, under_distinct)
        if isinstance(op, ParallelSort):
            return self._verify_parallel_sort(op)
        if isinstance(op, ParallelDistinct):
            return self._verify_parallel_distinct(op)
        if isinstance(op, ParallelAggregate):
            return self._verify_parallel_aggregate(op)
        # Unknown operator (e.g. a test double): verify the subtrees,
        # claim nothing about the output order.
        for child in op.children():
            self.verify(child, under_distinct)
        return PlanProperties(op.schema)

    # -- leaves ------------------------------------------------------------

    def _verify_scan(self, op: TableScan) -> PlanProperties:
        ranges = op.scan_ranges
        if ranges is not None:
            previous_stop = 0
            for start, stop in ranges:
                if start >= stop or start < previous_stop:
                    raise PlanInvariantError(
                        "scan-ranges",
                        f"scan of {op.table.name!r} has unordered or "
                        f"overlapping range [{start}, {stop})",
                    )
                previous_stop = stop
            if previous_stop > op.table.row_count:
                raise PlanInvariantError(
                    "scan-ranges",
                    f"scan range ends at {previous_stop} but table "
                    f"{op.table.name!r} has {op.table.row_count} rows",
                )
        return PlanProperties(op.schema)

    def _verify_patch_select(self, op: PatchSelect) -> PlanProperties:
        if not isinstance(op.child, TableScan):
            raise PlanInvariantError(
                "patchselect-placement",
                f"PatchSelect({op.index.name}) sits on "
                f"{type(op.child).__name__}; it must sit directly on a "
                "TableScan so batch rowids are contiguous tuple ids",
            )
        if op.child.table is not op.index.table:
            raise PlanInvariantError(
                "patchselect-placement",
                f"PatchSelect({op.index.name}) scans table "
                f"{op.child.table.name!r} but the index patches "
                f"{op.index.table.name!r}",
            )
        self._verify_patch_design(op.index)
        self.verify(op.child)
        ordering = None
        if (
            op.mode == PatchSelectMode.EXCLUDE_PATCHES
            and op.index.kind == "sorted"
            and op.index.column_name in op.schema
        ):
            # The kept subsequence of an NSC column is sorted in rowid
            # order by construction (paper §IV) — globally when the
            # index proved global scope or the table is unpartitioned.
            scope = (
                GLOBAL
                if op.index.scope == GLOBAL
                or op.index.table.partition_count == 1
                else PARTITION
            )
            ordering = OrderProperty(
                (SortKey(op.index.column_name, op.index.ascending),), scope
            )
        return PlanProperties(op.schema, ordering)

    def _verify_patch_design(self, index) -> None:
        designs = {
            index.partition_patches(pid).design
            for pid in range(index.table.partition_count)
        }
        if not designs <= {"identifier", "bitmap"}:
            raise PlanInvariantError(
                "patch-design",
                f"index {index.name!r} has unknown patch design(s) "
                f"{sorted(designs - {'identifier', 'bitmap'})}",
            )
        if len(designs) > 1:
            raise PlanInvariantError(
                "patch-design",
                f"index {index.name!r} mixes patch designs across "
                f"partitions ({sorted(designs)}); partition-transparent "
                "access requires one design",
            )
        mode = getattr(index, "mode", None)
        if mode is None or not designs:
            return
        design = next(iter(designs))
        if mode.value in ("identifier", "bitmap"):
            if design != mode.value:
                raise PlanInvariantError(
                    "patch-design",
                    f"index {index.name!r} was pinned to "
                    f"{mode.value} but carries {design} patch sets",
                )
            return
        # AUTO design must honor the 1/64 crossover at creation time.
        # Conservative incremental maintenance can legitimately drift
        # the rate past the crossover without re-choosing the design,
        # so the check only applies while the index is drift-free.
        if index.maintenance_stats() is None:
            expected = mode.resolve(index.exception_rate)
            if design != expected:
                raise PlanInvariantError(
                    "patch-design",
                    f"index {index.name!r} uses {design} patches at "
                    f"exception rate {index.exception_rate:.4f}; the "
                    f"1/64 crossover ({CROSSOVER_RATE:.4f}) selects "
                    f"{expected}",
                )

    # -- row-preserving operators ------------------------------------------

    def _verify_filter(self, op: Filter, under_distinct: bool) -> PlanProperties:
        child = self.verify(op.child, under_distinct)
        self._bind_expression(op.predicate, child.schema, "filter predicate")
        return PlanProperties(op.schema, child.ordering)

    def _verify_project(
        self, op: Project, under_distinct: bool
    ) -> PlanProperties:
        child = self.verify(op.child, under_distinct)
        for name, expression in op.outputs:
            self._bind_expression(
                expression, child.schema, f"projection {name!r}"
            )
        return PlanProperties(
            op.schema, _project_ordering(child.ordering, op.outputs)
        )

    # -- order-establishing operators --------------------------------------

    def _verify_sort(self, op: Sort, under_distinct: bool) -> PlanProperties:
        if isinstance(op.child, (Limit, TopN)):
            raise PlanInvariantError(
                "limit-order",
                "Sort above a Limit/TopN reorders an already-truncated "
                "result; the planner fuses ORDER BY + LIMIT into TopN",
            )
        child = self.verify(op.child, under_distinct)
        self._bind_keys(op.keys, child.schema, "Sort")
        return PlanProperties(op.schema, OrderProperty(tuple(op.keys)))

    def _verify_topn(self, op: TopN, under_distinct: bool) -> PlanProperties:
        if isinstance(op.child, (Limit, TopN)):
            raise PlanInvariantError(
                "limit-order",
                "TopN above a Limit/TopN truncates twice with "
                "conflicting orders",
            )
        child = self.verify(op.child, under_distinct)
        self._bind_keys(op.keys, child.schema, "TopN")
        return PlanProperties(op.schema, OrderProperty(tuple(op.keys)))

    # -- order-destroying operators ----------------------------------------

    def _verify_distinct(self, op: Distinct) -> PlanProperties:
        self._reject_limit_below(op, op.child)
        child = self.verify(op.child, under_distinct=True)
        missing = [
            name for name in op.column_names if name not in child.schema
        ]
        if missing:
            raise PlanInvariantError(
                "expression-binding",
                f"Distinct keys {missing} missing from input schema",
            )
        return PlanProperties(op.schema)

    def _verify_aggregate(self, op: HashAggregate) -> PlanProperties:
        self._reject_limit_below(op, op.child)
        child = self.verify(op.child)
        self._bind_aggregates(op.group_by, op.aggregates, child.schema)
        return PlanProperties(op.schema)

    def _verify_hash_join(self, op: HashJoin) -> PlanProperties:
        self._reject_limit_below(op, op.probe)
        self._reject_limit_below(op, op.build)
        probe = self.verify(op.probe)
        build = self.verify(op.build)
        if op.probe_key not in probe.schema:
            raise PlanInvariantError(
                "expression-binding",
                f"HashJoin probe key {op.probe_key!r} missing from "
                "probe schema",
            )
        if op.build_key not in build.schema:
            raise PlanInvariantError(
                "expression-binding",
                f"HashJoin build key {op.build_key!r} missing from "
                "build schema",
            )
        return PlanProperties(op.schema)

    # -- unions and merges -------------------------------------------------

    def _verify_union_all(
        self, op: UnionAll, under_distinct: bool
    ) -> PlanProperties:
        for branch in op.inputs:
            self._reject_limit_below(op, branch)
            self.verify(branch, under_distinct)
        self._check_union_types(op.schema, [b.schema for b in op.inputs])
        self._check_patch_partitioning(op.inputs, under_distinct)
        return PlanProperties(op.schema)

    def _verify_merge_union(
        self, op: MergeUnion, under_distinct: bool
    ) -> PlanProperties:
        left = self.verify(op.left, under_distinct)
        right = self.verify(op.right, under_distinct)
        self._check_union_types(op.schema, [left.schema, right.schema])
        self._bind_keys(op.keys, left.schema, "MergeUnion")
        keys = tuple(op.keys)
        for side, props in (("left", left), ("right", right)):
            if props.ordering is None or not props.ordering.covers(keys):
                raise PlanInvariantError(
                    "merge-input-order",
                    f"MergeUnion {side} input has no proven global "
                    f"order on ({', '.join(map(str, keys))}); merging "
                    "unsorted runs silently reorders the result",
                )
        self._check_patch_partitioning([op.left, op.right], under_distinct)
        return PlanProperties(op.schema, OrderProperty(keys))

    def _verify_merge_join(self, op: MergeJoin) -> PlanProperties:
        left = self.verify(op.left)
        right = self.verify(op.right)
        if op.left_key not in left.schema:
            raise PlanInvariantError(
                "expression-binding",
                f"MergeJoin left key {op.left_key!r} missing from left "
                "schema",
            )
        if op.right_key not in right.schema:
            raise PlanInvariantError(
                "expression-binding",
                f"MergeJoin right key {op.right_key!r} missing from "
                "right schema",
            )
        if not op.check_sorted:
            # Without the runtime sortedness guard both inputs need a
            # static proof: the right side is binary-searched (global
            # order is a correctness requirement), the left side
            # streams and may be partition-locally ordered.
            left_keys = (SortKey(op.left_key, True),)
            if left.ordering is None or not left.ordering.covers(
                left_keys, require_global=False
            ):
                raise PlanInvariantError(
                    "merge-input-order",
                    f"MergeJoin left input has no proven order on "
                    f"{op.left_key!r} and check_sorted is off",
                )
            right_keys = (SortKey(op.right_key, True),)
            if right.ordering is None or not right.ordering.covers(
                right_keys
            ):
                raise PlanInvariantError(
                    "merge-input-order",
                    f"MergeJoin right input has no proven global order "
                    f"on {op.right_key!r} and check_sorted is off; "
                    "binary search over an unsorted side drops matches",
                )
        return PlanProperties(op.schema, left.ordering)

    # -- parallel operators ------------------------------------------------

    def _verify_exchange(
        self, op: Exchange, under_distinct: bool
    ) -> PlanProperties:
        template = self._verify_parallel_common(op, under_distinct)
        # The gather returns batches in morsel-submission order, which
        # validate_morsels proved to be ascending rowid order — so the
        # Exchange boundary preserves the template's proven ordering.
        return PlanProperties(op.schema, template.ordering)

    def _verify_parallel_sort(self, op: ParallelSort) -> PlanProperties:
        template = self._verify_parallel_common(op)
        self._bind_keys(op.keys, template.schema, "ParallelSort")
        return PlanProperties(op.schema, OrderProperty(tuple(op.keys)))

    def _verify_parallel_distinct(self, op: ParallelDistinct) -> PlanProperties:
        self._verify_parallel_common(op, under_distinct=True)
        return PlanProperties(op.schema)

    def _verify_parallel_aggregate(
        self, op: ParallelAggregate
    ) -> PlanProperties:
        template = self._verify_parallel_common(op)
        self._bind_aggregates(op.group_by, op.aggregates, template.schema)
        return PlanProperties(op.schema)

    def _verify_parallel_common(
        self, op, under_distinct: bool = False
    ) -> PlanProperties:
        if op.parallelism < 1:
            raise PlanInvariantError(
                "exchange-ordering",
                f"{type(op).__name__} has parallelism {op.parallelism}",
            )
        validate_morsels(op.morsels, _scan_table(op.template))
        return self.verify(op.template, under_distinct)

    # -- shared checks -----------------------------------------------------

    def _reject_limit_below(self, op: Operator, child: Operator) -> None:
        if isinstance(op, _ORDER_DESTROYERS) and isinstance(
            child, (Limit, TopN)
        ):
            raise PlanInvariantError(
                "limit-order",
                f"{type(child).__name__} below {type(op).__name__} "
                "truncates rows in an order the parent then destroys",
            )

    def _bind_expression(
        self, expression: Expression, schema: Schema, what: str
    ) -> None:
        missing = expression.referenced_columns() - set(schema.names)
        if missing:
            raise PlanInvariantError(
                "expression-binding",
                f"{what} references columns {sorted(missing)} missing "
                "from the input schema",
            )
        try:
            expression.output_type(schema)
        except SchemaError as exc:
            raise PlanInvariantError(
                "expression-binding", f"{what} does not type-check: {exc}"
            ) from exc

    def _bind_keys(
        self, keys: list[SortKey], schema: Schema, what: str
    ) -> None:
        if not keys:
            raise PlanInvariantError(
                "expression-binding", f"{what} has no sort keys"
            )
        for key in keys:
            if key.column not in schema:
                raise PlanInvariantError(
                    "expression-binding",
                    f"{what} key {key.column!r} missing from the input "
                    "schema",
                )

    def _bind_aggregates(
        self,
        group_by: list[str],
        aggregates: list[AggregateSpec],
        schema: Schema,
    ) -> None:
        for column in group_by:
            if column not in schema:
                raise PlanInvariantError(
                    "expression-binding",
                    f"group-by column {column!r} missing from the input "
                    "schema",
                )
        for spec in aggregates:
            if spec.column is not None and spec.column not in schema:
                raise PlanInvariantError(
                    "expression-binding",
                    f"aggregate {spec.func}({spec.column}) references a "
                    "column missing from the input schema",
                )

    def _check_union_types(
        self, schema: Schema, branch_schemas: list[Schema]
    ) -> None:
        expected = [(field.name, field.dtype) for field in schema.fields]
        for number, branch in enumerate(branch_schemas):
            actual = [(field.name, field.dtype) for field in branch.fields]
            if actual != expected:
                raise PlanInvariantError(
                    "union-types",
                    f"union branch {number} produces {actual} but the "
                    f"union output is {expected}",
                )

    def _check_patch_partitioning(
        self, branches: list[Operator], under_distinct: bool
    ) -> None:
        """The ``R \\ P_c ∪ P_c`` disjointness rule over union branches."""
        by_key: dict[tuple, tuple[int, _PatchUse]] = {}
        for number, branch in enumerate(branches):
            for use in _collect_patch_uses(branch, under_distinct):
                key = (id(use.index), use.mode)
                prior = by_key.get(key)
                if prior is not None and prior[0] != number:
                    raise PlanInvariantError(
                        "patchselect-partitioning",
                        f"union branches {prior[0]} and {number} both "
                        f"apply index {use.index.name!r} in mode "
                        f"{use.mode.value}; the branches overlap instead "
                        "of partitioning the relation",
                    )
                by_key.setdefault(key, (number, use))
        for (index_id, mode), (number, use) in by_key.items():
            if mode != PatchSelectMode.EXCLUDE_PATCHES:
                continue
            paired = by_key.get((index_id, PatchSelectMode.USE_PATCHES))
            if paired is None or paired[0] == number:
                # No counterpart (a lone branch) or both modes in the
                # same branch (a full-relation reconstruction): not a
                # cross-branch partition.
                continue
            use_number, use_side = paired
            if use.scan_signature != use_side.scan_signature:
                raise PlanInvariantError(
                    "patchselect-partitioning",
                    f"union branches {number} and {use_number} apply "
                    f"index {use.index.name!r} to different row sets; "
                    "exclude and use branches must partition one scan",
                )
            if use.index.kind == "unique" and not use_side.deduped:
                raise PlanInvariantError(
                    "nuc-use-distinct",
                    f"the use-patches branch of index {use.index.name!r} "
                    "carries the duplicate values of a nearly-unique "
                    "column and must pass through a Distinct",
                )


def _project_ordering(
    ordering: OrderProperty | None,
    outputs: list[tuple[str, Expression]],
) -> OrderProperty | None:
    """Proven ordering after a projection: renamed keys survive, the
    prefix stops at the first dropped or computed key column."""
    if ordering is None:
        return None
    renames: dict[str, str] = {}
    for name, expression in outputs:
        if isinstance(expression, ColumnRef) and expression.name not in renames:
            renames[expression.name] = name
    kept: list[SortKey] = []
    for key in ordering.keys:
        if key.column not in renames:
            break
        kept.append(SortKey(renames[key.column], key.ascending))
    if not kept:
        return None
    return OrderProperty(tuple(kept), ordering.scope)


def _collect_patch_uses(
    op: Operator, deduped: bool
) -> list[_PatchUse]:
    """PatchSelects reachable from a union branch, with dedup context.

    The walk stops at nested UnionAll/MergeUnion nodes — those verify
    their own partitioning — and records whether a Distinct lies
    between the union and each PatchSelect.
    """
    if isinstance(op, (UnionAll, MergeUnion)):
        return []
    if isinstance(op, (Distinct, ParallelDistinct)):
        deduped = True
    if isinstance(op, PatchSelect):
        child = op.child
        signature: tuple = (type(child).__name__,)
        if isinstance(child, TableScan):
            ranges = child.scan_ranges
            covered = (
                tuple(ranges)
                if ranges is not None
                else ((0, child.table.row_count),)
            )
            signature = (id(child.table), covered)
        return [_PatchUse(op.index, op.mode, deduped, signature)]
    uses: list[_PatchUse] = []
    for child in op.children():
        uses.extend(_collect_patch_uses(child, deduped))
    return uses


def _scan_table(op: Operator):
    """The table of the unique TableScan under a fragment template."""
    if isinstance(op, TableScan):
        return op.table
    for child in op.children():
        table = _scan_table(child)
        if table is not None:
            return table
    return None
