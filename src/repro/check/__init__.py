"""Static analysis and runtime sanitizers for the repro engine.

:mod:`repro.check.plan_verifier` is the pre-execution plan verifier: a
bottom-up pass over a physical operator tree that proves schema, sort
order, and patch-partitioning properties, and rejects invalid plans with
:class:`~repro.errors.PlanInvariantError` before a single batch flows.

:mod:`repro.check.sanitize` is the runtime concurrency sanitizer
(``REPRO_SANITIZE=1``): instrumented engine locks that detect
acquisition-order inversions, held-time histograms under the
``sanitize`` metric namespace, and a resource ledger that proves
snapshot pins / shm segments / cache accounting return to zero.

The project-level lint rules (bare asserts, lock discipline, fsync
discipline, metric namespaces, and the L11–L13 lock-graph rules) live in
``tools/repro_lint.py`` + ``tools/lockgraph.py`` — they run on source
text in CI, not on plans.

Exports resolve lazily so that low-level modules (``repro.storage.*``)
can import :func:`~repro.check.sanitize.make_lock` without dragging the
plan verifier's operator imports into their import cycle.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.plan_verifier import (
        OrderProperty,
        PlanProperties,
        verify_plan,
    )
    from repro.check.sanitize import (
        SanitizedLock,
        assert_balanced,
        make_lock,
    )

__all__ = [
    "OrderProperty",
    "PlanProperties",
    "verify_plan",
    "SanitizedLock",
    "assert_balanced",
    "make_lock",
]

_PLAN_EXPORTS = {"OrderProperty", "PlanProperties", "verify_plan"}
_SANITIZE_EXPORTS = {"SanitizedLock", "assert_balanced", "make_lock"}


def __getattr__(name: str):
    if name in _PLAN_EXPORTS:
        from repro.check import plan_verifier

        return getattr(plan_verifier, name)
    if name in _SANITIZE_EXPORTS:
        from repro.check import sanitize

        return getattr(sanitize, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
