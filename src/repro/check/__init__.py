"""Static analysis for the repro engine.

:mod:`repro.check.plan_verifier` is the pre-execution plan verifier: a
bottom-up pass over a physical operator tree that proves schema, sort
order, and patch-partitioning properties, and rejects invalid plans with
:class:`~repro.errors.PlanInvariantError` before a single batch flows.
The project-level lint rules (bare asserts, lock discipline, fsync
discipline, metric namespaces) live in ``tools/repro_lint.py`` — they
run on source text in CI, not on plans.
"""

from repro.check.plan_verifier import (
    OrderProperty,
    PlanProperties,
    verify_plan,
)

__all__ = ["OrderProperty", "PlanProperties", "verify_plan"]
