"""Logical type system for the repro engine."""

from repro.types.datatypes import (
    DataType,
    numpy_dtype,
    python_type,
    infer_datatype,
    coerce_scalar,
    is_numeric,
    is_orderable,
    common_type,
)

__all__ = [
    "DataType",
    "numpy_dtype",
    "python_type",
    "infer_datatype",
    "coerce_scalar",
    "is_numeric",
    "is_orderable",
    "common_type",
]
