"""Logical data types and their mapping to NumPy storage.

The engine stores every column as a NumPy array plus an optional validity
mask.  The :class:`DataType` enum is the *logical* type visible in
schemas, expressions and SQL; this module centralizes the mapping to the
*physical* NumPy dtype and the scalar coercions used by INSERT and the
expression evaluator.

Notes
-----
``DATE`` is stored as days since the Unix epoch in an ``int64`` array.
This matches how analytical engines store dates for vectorized
comparison, and it keeps sorting/uniqueness semantics identical to plain
integers (which is what the PatchIndex operates on).

``STRING`` columns are stored as ``object`` arrays of Python ``str``.
A vectorized engine would use dictionary encoding; for this
reproduction, object arrays keep NumPy's vectorized comparison and
sorting available while remaining simple.
"""

from __future__ import annotations

import datetime as _dt
import enum

import numpy as np

from repro.errors import TypeMismatchError

_EPOCH = _dt.date(1970, 1, 1)


class DataType(enum.Enum):
    """Logical column data types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"
    BOOL = "bool"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataType.{self.name}"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Resolve a type from a (case-insensitive) SQL type name."""
        normalized = name.strip().lower()
        aliases = {
            "int": cls.INT64,
            "integer": cls.INT64,
            "bigint": cls.INT64,
            "int64": cls.INT64,
            "float": cls.FLOAT64,
            "double": cls.FLOAT64,
            "real": cls.FLOAT64,
            "float64": cls.FLOAT64,
            "string": cls.STRING,
            "varchar": cls.STRING,
            "char": cls.STRING,
            "text": cls.STRING,
            "date": cls.DATE,
            "bool": cls.BOOL,
            "boolean": cls.BOOL,
        }
        if normalized not in aliases:
            raise TypeMismatchError(f"unknown SQL type name: {name!r}")
        return aliases[normalized]


_NUMPY_DTYPES: dict[DataType, np.dtype] = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.STRING: np.dtype(object),
    DataType.DATE: np.dtype(np.int64),
    DataType.BOOL: np.dtype(np.bool_),
}

_PYTHON_TYPES: dict[DataType, type] = {
    DataType.INT64: int,
    DataType.FLOAT64: float,
    DataType.STRING: str,
    DataType.DATE: _dt.date,
    DataType.BOOL: bool,
}

_NUMERIC = frozenset({DataType.INT64, DataType.FLOAT64})
# Every supported type has a total order (strings lexicographic, dates by
# day number), which is what NSC discovery requires.
_ORDERABLE = frozenset(DataType)


def numpy_dtype(dtype: DataType) -> np.dtype:
    """Return the physical NumPy dtype used to store *dtype*."""
    return _NUMPY_DTYPES[dtype]


def python_type(dtype: DataType) -> type:
    """Return the Python scalar type corresponding to *dtype*."""
    return _PYTHON_TYPES[dtype]


def is_numeric(dtype: DataType) -> bool:
    """True if arithmetic is defined on *dtype*."""
    return dtype in _NUMERIC


def is_orderable(dtype: DataType) -> bool:
    """True if *dtype* has a total order usable for NSC constraints."""
    return dtype in _ORDERABLE


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the wider of two types for a binary expression.

    Raises :class:`TypeMismatchError` when the pair has no common type.
    """
    if left == right:
        return left
    if {left, right} == _NUMERIC:
        return DataType.FLOAT64
    raise TypeMismatchError(f"no common type for {left.name} and {right.name}")


def date_to_days(value: _dt.date) -> int:
    """Convert a Python ``date`` to its physical day-number encoding."""
    return (value - _EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Convert a physical day number back to a Python ``date``."""
    return _EPOCH + _dt.timedelta(days=int(days))


def infer_datatype(value: object) -> DataType:
    """Infer the logical type of a Python scalar (used by INSERT/literals)."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, (int, np.integer)):
        return DataType.INT64
    if isinstance(value, (float, np.floating)):
        return DataType.FLOAT64
    if isinstance(value, str):
        return DataType.STRING
    if isinstance(value, _dt.date):
        return DataType.DATE
    raise TypeMismatchError(f"cannot infer data type of {value!r}")


def coerce_scalar(value: object, dtype: DataType) -> object:
    """Coerce a Python scalar to the physical representation of *dtype*.

    ``None`` passes through (it denotes SQL NULL and is recorded in the
    validity mask, not in the value array).
    """
    if value is None:
        return None
    if dtype == DataType.INT64:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise TypeMismatchError(f"expected INT64, got {value!r}")
        return int(value)
    if dtype == DataType.FLOAT64:
        if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            raise TypeMismatchError(f"expected FLOAT64, got {value!r}")
        return float(value)
    if dtype == DataType.STRING:
        if not isinstance(value, str):
            raise TypeMismatchError(f"expected STRING, got {value!r}")
        return value
    if dtype == DataType.DATE:
        if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
            return date_to_days(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        raise TypeMismatchError(f"expected DATE, got {value!r}")
    if dtype == DataType.BOOL:
        if not isinstance(value, (bool, np.bool_)):
            raise TypeMismatchError(f"expected BOOL, got {value!r}")
        return bool(value)
    raise TypeMismatchError(f"unhandled data type {dtype}")  # pragma: no cover
