"""Sort operator: blocking, stable, multi-key.

The underlying kernel is NumPy's stable sort (timsort for the final
key), whose runtime grows with the disorder of the input — the same
qualitative behaviour as the engine-internal QuickSort the paper
describes ("behaving better the more sorted the data values already
are", §VII-B1), which is what the Figure-5 baseline curve relies on.

NULL ordering: NULLS LAST for ascending keys, NULLS FIRST for
descending (i.e. NULL compares greater than every value).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY key."""

    column: str
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.column} {'ASC' if self.ascending else 'DESC'}"


class Sort(Operator):
    """Materializing sort over the full input."""

    def __init__(self, child: Operator, keys: list[SortKey]):
        self.child = child
        self.keys = list(keys)
        self._pending: list[RecordBatch] | None = None
        self._done = False

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[Operator]:
        return [self.child]

    def open(self) -> None:
        super().open()
        self._done = False

    def next_batch(self) -> RecordBatch | None:
        if self._done:
            return None
        self._done = True
        batches: list[RecordBatch] = []
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            if len(batch):
                batches.append(batch)
        if not batches:
            return None
        data = RecordBatch.concat(batches)
        order = sort_order(
            [data.column(key.column) for key in self.keys],
            [key.ascending for key in self.keys],
        )
        return data.take(order).drop_rowids()

    def label(self) -> str:
        return f"Sort({', '.join(str(key) for key in self.keys)})"


def sort_order(
    columns: list[ColumnVector], ascending: list[bool]
) -> np.ndarray:
    """Stable multi-key sort permutation (last key applied first)."""
    n = len(columns[0]) if columns else 0
    order = np.arange(n, dtype=np.int64)
    for column, asc in list(zip(columns, ascending))[::-1]:
        values = column.values[order]
        keys = _null_aware_keys(column, values, order)
        suborder = _stable_argsort(keys, asc)
        order = order[suborder]
    return order


def _null_aware_keys(
    column: ColumnVector, values: np.ndarray, order: np.ndarray
) -> np.ndarray:
    """Keys where NULL sorts after everything (in the ascending view)."""
    if column.validity is None:
        return values
    validity = column.validity[order]
    if values.dtype == np.dtype(object):
        # Object arrays cannot hold a +inf sentinel; sort by
        # (is_null, value) tuples instead (bool compares before value).
        out = np.empty(len(values), dtype=object)
        for position, (valid, value) in enumerate(zip(validity, values)):
            out[position] = (not valid, value)
        return out
    out = values.astype(np.float64, copy=True)
    out[~validity] = np.inf
    return out


def _stable_argsort(keys: np.ndarray, ascending: bool) -> np.ndarray:
    """Stable argsort in either direction.

    Descending uses the reverse-of-reversed trick so that ties keep
    their input order (plain reversal would also reverse ties).
    """
    if ascending:
        return np.argsort(keys, kind="stable")
    n = len(keys)
    return (n - 1) - np.argsort(keys[::-1], kind="stable")[::-1]
