"""Physical operators (volcano-over-batches)."""

from repro.exec.operators.base import Operator
from repro.exec.operators.scan import TableScan
from repro.exec.operators.patch_select import PatchSelect, PatchSelectMode
from repro.exec.operators.filter import Filter
from repro.exec.operators.project import Project
from repro.exec.operators.aggregate import HashAggregate, AggregateSpec
from repro.exec.operators.distinct import Distinct
from repro.exec.operators.sort import Sort, SortKey
from repro.exec.operators.topn import TopN
from repro.exec.operators.limit import Limit
from repro.exec.operators.union import UnionAll
from repro.exec.operators.merge_union import MergeUnion
from repro.exec.operators.hash_join import HashJoin
from repro.exec.operators.merge_join import MergeJoin

__all__ = [
    "Operator",
    "TableScan",
    "PatchSelect",
    "PatchSelectMode",
    "Filter",
    "Project",
    "HashAggregate",
    "AggregateSpec",
    "Distinct",
    "Sort",
    "SortKey",
    "TopN",
    "Limit",
    "UnionAll",
    "MergeUnion",
    "HashJoin",
    "MergeJoin",
]
