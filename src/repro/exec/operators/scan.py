"""Table scan with scan-range pruning and optional ``tid`` column.

The scan walks partitions in order and emits batches whose rowids are
contiguous runs of global tuple identifiers — the property the
PatchSelect operator depends on (paper §VI-A1).

Scan ranges (global ``[start, stop)`` rowid intervals) restrict the scan
to the given intervals; they are typically produced by evaluating
selection predicates against the per-block min/max sketches
(:meth:`repro.storage.partition.Partition.scan_ranges_for_predicate`),
the "small materialized aggregates" mechanism the paper references.

When *with_tid* is set, the scan additionally materializes the virtual
``tid`` column of tuple identifiers, which the paper's NUC discovery
query selects.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError
from repro.exec.batch import DEFAULT_BATCH_SIZE, RecordBatch
from repro.exec.operators.base import Operator
from repro.storage.cache import ScanIO
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType

#: Name of the virtual tuple-identifier column.
TID_COLUMN = "tid"


def normalize_ranges(
    scan_ranges: list[tuple[int, int]] | None, total: int
) -> list[tuple[int, int]] | None:
    """Validate, sort, merge and clip ``[start, stop)`` rowid ranges.

    Negative starts and stops beyond *total* are clipped, empty and
    inverted ranges are dropped, and overlapping or adjacent ranges are
    merged.  ``None`` (no restriction) passes through.
    """
    if scan_ranges is None:
        return None
    cleaned: list[tuple[int, int]] = []
    for start, stop in sorted(scan_ranges):
        start = max(0, start)
        stop = min(total, stop)
        if start >= stop:
            continue
        if cleaned and start <= cleaned[-1][1]:
            cleaned[-1] = (cleaned[-1][0], max(cleaned[-1][1], stop))
        else:
            cleaned.append((start, stop))
    return cleaned


class TableScan(Operator):
    """Scans a table, batch by batch, partition by partition."""

    def __init__(
        self,
        table: Table,
        columns: list[str] | None = None,
        scan_ranges: list[tuple[int, int]] | None = None,
        with_tid: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.table = table
        self.column_names = (
            list(columns) if columns is not None else list(table.schema.names)
        )
        fields = [table.schema.field(name) for name in self.column_names]
        if with_tid:
            if TID_COLUMN in self.column_names:
                raise PlanError(f"table already has a {TID_COLUMN!r} column")
            fields.append(Field(TID_COLUMN, DataType.INT64, nullable=False))
        self._schema = Schema(fields)
        self.with_tid = with_tid
        self.batch_size = batch_size
        self.scan_ranges = self._normalize_ranges(scan_ranges)
        self._cursor: list[tuple[int, int]] | None = None
        #: Decode / block-cache accounting for segment-backed columns
        #: (surfaced as EXPLAIN ANALYZE details).
        self.io = ScanIO()

    def _normalize_ranges(
        self, scan_ranges: list[tuple[int, int]] | None
    ) -> list[tuple[int, int]] | None:
        """Validate, sort, merge and clip the requested scan ranges."""
        return normalize_ranges(scan_ranges, self.table.row_count)

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return []

    def open(self) -> None:
        # Pre-compute the batch work list: (start, stop) global ranges
        # never crossing a partition boundary, each at most batch_size.
        pieces: list[tuple[int, int]] = []
        ranges = (
            self.scan_ranges
            if self.scan_ranges is not None
            else [(0, self.table.row_count)]
        )
        for partition in self.table.partitions:
            p_start, p_stop = partition.rowid_range
            for r_start, r_stop in ranges:
                lo = max(p_start, r_start)
                hi = min(p_stop, r_stop)
                position = lo
                while position < hi:
                    stop = min(position + self.batch_size, hi)
                    pieces.append((position, stop))
                    position = stop
        pieces.reverse()  # pop() from the end keeps order
        self._cursor = pieces

    def next_batch(self) -> RecordBatch | None:
        if self._cursor is None:
            raise PlanError("scan used before open()")
        if not self._cursor:
            return None
        start, stop = self._cursor.pop()
        partition = self.table.partition_of_rowid(start)
        local_start = start - partition.base_rowid
        local_stop = stop - partition.base_rowid
        columns: dict[str, ColumnVector] = {
            name: partition.column_slice(name, local_start, local_stop, self.io)
            for name in self.column_names
        }
        rowids = np.arange(start, stop, dtype=np.int64)
        if self.with_tid:
            columns[TID_COLUMN] = ColumnVector(DataType.INT64, rowids)
        return RecordBatch(self._schema, columns, rowids)

    def close(self) -> None:
        self._cursor = None

    def label(self) -> str:
        parts = [f"TableScan({self.table.name}"]
        if self.scan_ranges is not None:
            covered = sum(stop - start for start, stop in self.scan_ranges)
            parts.append(f", ranges={len(self.scan_ranges)} rows={covered}")
        if self.with_tid:
            parts.append(", +tid")
        parts.append(")")
        return "".join(parts)
