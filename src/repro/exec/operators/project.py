"""Projection operator: compute named output expressions per batch."""

from __future__ import annotations

from repro.errors import PlanError
from repro.exec.batch import RecordBatch
from repro.exec.expressions import ColumnRef, Expression
from repro.exec.operators.base import Operator
from repro.storage.schema import Field, Schema


class Project(Operator):
    """Evaluate ``(alias, expression)`` pairs over each input batch.

    Pure column renames/reorders preserve rowids (the batch still maps
    1:1 to input rows); computed expressions do too, since projection
    never changes row identity.
    """

    def __init__(self, child: Operator, outputs: list[tuple[str, Expression]]):
        if not outputs:
            raise PlanError("projection must produce at least one column")
        self.child = child
        self.outputs = list(outputs)
        self._schema = Schema(
            Field(alias, expression.output_type(child.schema))
            for alias, expression in self.outputs
        )

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return [self.child]

    def next_batch(self) -> RecordBatch | None:
        batch = self.child.next_batch()
        if batch is None:
            return None
        columns = {
            alias: expression.evaluate(batch)
            for alias, expression in self.outputs
        }
        return RecordBatch(self._schema, columns, batch.rowids)

    def label(self) -> str:
        rendered = ", ".join(
            str(expression)
            if isinstance(expression, ColumnRef) and expression.name == alias
            else f"{expression} AS {alias}"
            for alias, expression in self.outputs
        )
        return f"Project({rendered})"
