"""The PatchSelect operator — heart of the PatchedScan (paper §VI-A).

PatchSelect sits *directly* on top of a table scan and splits its
dataflow by patch membership:

- mode ``EXCLUDE_PATCHES`` passes only tuples **not** in ``P_c``
  (the constraint-satisfying majority), and
- mode ``USE_PATCHES`` passes only tuples **in** ``P_c``.

Placement directly above the scan guarantees that incoming batch rowids
equal tuple identifiers (no intermediate operator has filtered rows), so
the operator never needs to scan a tuple-identifier column.  The
constructor enforces this placement.

Two strategies realize the selection, mirroring the paper exactly:

- the **merge strategy** for the identifier-based design: the sorted
  patch array is merged against the (sorted, contiguous) batch rowids.
  :func:`exclude_patches_scalar` is a literal, tuple-at-a-time
  transcription of the paper's Algorithm 1, kept as the reference the
  test suite cross-checks against; the operator itself uses the batched
  equivalent (two binary searches per batch — the patch pointer jumps
  instead of stepping).
- the **bitmap lookup** for the bitmap-based design: slice the bitmap at
  the batch's rowid offset.

Both go through :meth:`PatchIndex.mask_for_range`, which dispatches to
the physical design's implementation.

Scan ranges compose for free: when the scan below was restricted to
ranges, the batches simply cover fewer rowid intervals, and the
membership mask is computed from absolute rowids — the batched analogue
of "adjusting the patch pointer to skip patches outside the ranges /
computing an offset within the bitmap" (§VI-A3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, TYPE_CHECKING

import numpy as np

from repro.errors import ExecutionError, PlanError
from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.exec.operators.scan import TableScan
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.patch_index import PatchIndex


class PatchSelectMode(enum.Enum):
    """Selection modes of the PatchSelect operator (paper §VI-A1)."""

    USE_PATCHES = "use_patches"
    EXCLUDE_PATCHES = "exclude_patches"


@dataclass
class PatchSelectStats:
    """Opt-in execution counters for one PatchSelect instance.

    ``patch_hits`` counts tuples that *are* patches regardless of mode —
    in ``USE_PATCHES`` mode those are the rows passed through, in
    ``EXCLUDE_PATCHES`` mode the rows filtered out.
    """

    rows_in: int = 0
    patch_hits: int = 0


class PatchSelect(Operator):
    """Filter a scan's dataflow by patch membership."""

    def __init__(
        self,
        child: Operator,
        index: "PatchIndex",
        mode: PatchSelectMode,
        enforce_scan_child: bool = True,
    ):
        if enforce_scan_child and not isinstance(child, TableScan):
            raise PlanError(
                "PatchSelect must be placed directly on a TableScan so that "
                "batch rowids equal tuple identifiers"
            )
        if isinstance(child, TableScan) and child.table is not index.table:
            raise PlanError(
                f"PatchSelect index {index.name!r} is defined on table "
                f"{index.table_name!r}, scan reads {child.table.name!r}"
            )
        self.child = child
        self.index = index
        self.mode = mode
        #: Execution counters; ``None`` (the default) skips all
        #: bookkeeping so unprofiled queries pay a single identity check
        #: per batch.  Enabled by the profiler via :meth:`enable_stats`.
        self.stats: PatchSelectStats | None = None
        # Query-build phase: fetch a handle on the patch information once
        # (the paper stores the array/bitmap pointer in operator state).
        self._mask_source = index.mask_for_range

    def enable_stats(self) -> PatchSelectStats:
        """Turn on per-batch counters (used by EXPLAIN ANALYZE)."""
        if self.stats is None:
            self.stats = PatchSelectStats()
        return self.stats

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[Operator]:
        return [self.child]

    def next_batch(self) -> RecordBatch | None:
        while True:
            batch = self.child.next_batch()
            if batch is None:
                return None
            if len(batch) == 0:
                continue
            window = batch.contiguous_range
            if window is None:
                raise ExecutionError(
                    "PatchSelect received a non-contiguous batch; it must "
                    "be placed directly on a scan"
                )
            start, stop = window
            is_patch = self._mask_source(start, stop)
            if self.stats is not None:
                self.stats.rows_in += len(batch)
                self.stats.patch_hits += int(np.count_nonzero(is_patch))
            if self.mode == PatchSelectMode.USE_PATCHES:
                keep = is_patch
            else:
                keep = ~is_patch
            if not keep.any():
                continue
            if keep.all():
                return batch
            return batch.filter(keep)

    def label(self) -> str:
        return (
            f"PatchSelect(mode={self.mode.value}, index={self.index.name}, "
            f"design={self.index.design})"
        )


# -- reference implementation of the paper's Algorithm 1 ------------------------


def exclude_patches_scalar(
    tuples: Iterable[tuple[int, object]],
    patch_rowids: np.ndarray,
) -> Iterator[tuple[int, object]]:
    """Tuple-at-a-time ``ExcludePatches.Next`` (paper Algorithm 1).

    *tuples* is an iterator of ``(rowid, value)`` pairs in rowid order;
    *patch_rowids* is the sorted identifier array of the patch set.
    Yields the tuples whose rowid is not a patch.  This is the literal
    merge strategy with a patch pointer; the test suite uses it as the
    oracle for the vectorized operator.
    """
    stream = iter(tuples)
    patch_pointer = 0
    num_patches = len(patch_rowids)
    processed_tuples = 0
    while True:
        try:
            item = next(stream)
        except StopIteration:
            return
        if patch_pointer >= num_patches:
            yield item
            continue
        next_patch_id = int(patch_rowids[patch_pointer])
        processed_tuples += 1
        if processed_tuples - 1 < next_patch_id:
            yield item
        else:
            # processed_tuples - 1 == next_patch_id
            patch_pointer += 1


def use_patches_scalar(
    tuples: Iterable[tuple[int, object]],
    patch_rowids: np.ndarray,
) -> Iterator[tuple[int, object]]:
    """Tuple-at-a-time ``UsePatches.Next`` — Algorithm 1 with the
    conditions exchanged (paper §VI-A1)."""
    stream = iter(tuples)
    patch_pointer = 0
    num_patches = len(patch_rowids)
    processed_tuples = 0
    while True:
        try:
            item = next(stream)
        except StopIteration:
            return
        if patch_pointer >= num_patches:
            # All patches processed: nothing further qualifies.
            return
        next_patch_id = int(patch_rowids[patch_pointer])
        processed_tuples += 1
        if processed_tuples - 1 == next_patch_id:
            patch_pointer += 1
            yield item
