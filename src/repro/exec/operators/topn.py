"""Top-N operator: fused ORDER BY ... LIMIT.

A full sort materializes and orders every row only to discard all but
``limit + offset`` of them.  The fusion selects the top slice with a
partial partition (``np.argpartition``, O(n)) and sorts only that
slice — the standard analytic-engine optimization, applied by the
physical planner whenever a Limit sits directly on a Sort.

Single-key numeric/date sorts take the partition fast path; multi-key
and string sorts fall back to a full sort followed by a slice (still
one operator, no semantic difference).  Ties are broken arbitrarily on
the fast path (SQL leaves ORDER BY ties unordered); NULL ordering
matches the Sort operator (NULLS LAST ascending, NULLS FIRST
descending).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError
from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.exec.operators.sort import SortKey, sort_order
from repro.storage.schema import Schema


class TopN(Operator):
    """Emit the first *limit* rows (after *offset*) of the sorted input."""

    def __init__(
        self,
        child: Operator,
        keys: list[SortKey],
        limit: int,
        offset: int = 0,
    ):
        if limit < 0 or offset < 0:
            raise PlanError("limit/offset must be non-negative")
        if not keys:
            raise PlanError("TopN requires at least one sort key")
        self.child = child
        self.keys = list(keys)
        self.limit = limit
        self.offset = offset
        self._done = False

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[Operator]:
        return [self.child]

    def open(self) -> None:
        super().open()
        self._done = False

    def next_batch(self) -> RecordBatch | None:
        if self._done:
            return None
        self._done = True
        batches: list[RecordBatch] = []
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            if len(batch):
                batches.append(batch)
        if not batches or self.limit == 0:
            return None
        data = RecordBatch.concat(batches)
        wanted = self.limit + self.offset
        order = self._top_order(data, wanted)
        selected = order[self.offset : wanted]
        if len(selected) == 0:
            return None
        return data.take(selected).drop_rowids()

    def _top_order(self, data: RecordBatch, wanted: int) -> np.ndarray:
        n = len(data)
        key = self.keys[0]
        column = data.column(key.column)
        partitionable = (
            len(self.keys) == 1
            and column.values.dtype != np.dtype(object)
            and wanted < n
        )
        if not partitionable:
            full = sort_order(
                [data.column(k.column) for k in self.keys],
                [k.ascending for k in self.keys],
            )
            return full[: min(wanted, n)]
        # Null-aware ascending-comparable keys, as in the Sort operator.
        keys = column.values.astype(np.float64, copy=True)
        if column.validity is not None:
            keys[~column.validity] = np.inf
        if not key.ascending:
            keys = -keys
        top = np.argpartition(keys, wanted)[:wanted]
        return top[np.argsort(keys[top], kind="stable")]

    def label(self) -> str:
        rendered = ", ".join(str(key) for key in self.keys)
        suffix = f" OFFSET {self.offset}" if self.offset else ""
        return f"TopN({rendered} LIMIT {self.limit}{suffix})"
