"""Merge join (inner equi-join of two sorted inputs).

Exploits that both inputs are sorted on the join key: the right side is
materialized once, and each left batch locates its match ranges with
two binary searches (``searchsorted``), then expands them — the
vectorized equivalent of advancing two merge cursors.  Per probed row
the cost is ``O(log |right|)`` with no hash table to build, which is
why the paper's join rewrite (§VI-B3) prefers it over HashJoin for the
sorted subsequence of an NSC.

Duplicates are allowed on both sides (full cross product per equal-key
group); NULL keys never match.  Output order follows the left input, so
the join preserves the left side's sortedness — a property the rewrite
relies on when further operators expect sorted data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.exec.operators.hash_join import _joined_schema
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema


class MergeJoin(Operator):
    """Inner equi-join of two key-sorted inputs; left side streams."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
        check_sorted: bool = False,
    ):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.check_sorted = check_sorted
        left.schema.field(left_key)
        right.schema.field(right_key)
        self._schema = _joined_schema(left.schema, right.schema)
        self._right_data: RecordBatch | None = None
        self._right_keys: np.ndarray | None = None

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def open(self) -> None:
        super().open()
        self._right_data = None
        self._right_keys = None

    def _ensure_right(self) -> None:
        if self._right_data is not None:
            return
        batches: list[RecordBatch] = []
        while True:
            batch = self.right.next_batch()
            if batch is None:
                break
            if len(batch):
                batches.append(batch)
        if batches:
            data = RecordBatch.concat(batches)
        else:
            data = RecordBatch(
                self.right.schema,
                {
                    field.name: ColumnVector.empty(field.dtype)
                    for field in self.right.schema
                },
            )
        key_column = data.column(self.right_key)
        if key_column.has_nulls:
            # NULL keys never join; drop them once up front.
            data = data.filter(key_column.validity_or_all_true())
            key_column = data.column(self.right_key)
        keys = key_column.values
        if self.check_sorted and len(keys) > 1:
            if keys.dtype == np.dtype(object):
                sorted_ok = all(a <= b for a, b in zip(keys[:-1], keys[1:]))
            else:
                sorted_ok = bool((keys[:-1] <= keys[1:]).all())
            if not sorted_ok:
                raise ExecutionError("merge-join right input is not sorted")
        self._right_data = data
        self._right_keys = keys
        # Dimension tables join on their (sorted, unique) primary key;
        # detecting uniqueness enables a cheaper probe without the
        # duplicate-expansion machinery.
        if len(keys) > 1 and keys.dtype != np.dtype(object):
            self._right_unique = bool((keys[1:] > keys[:-1]).all())
        else:
            self._right_unique = len(keys) <= 1

    def next_batch(self) -> RecordBatch | None:
        self._ensure_right()
        if self._right_keys is None:
            raise ExecutionError(
                "MergeJoin right side unavailable; next_batch() before open()?"
            )
        while True:
            batch = self.left.next_batch()
            if batch is None:
                return None
            if len(batch) == 0:
                continue
            key_column = batch.column(self.left_key)
            validity = key_column.validity_or_all_true()
            keys = key_column.values
            if self.check_sorted:
                # NULL keys never join, so only the valid keys must be
                # in order.
                valid_keys = keys[validity]
                if len(valid_keys) > 1 and keys.dtype != np.dtype(object):
                    if not bool((valid_keys[:-1] <= valid_keys[1:]).all()):
                        raise ExecutionError(
                            "merge-join left input is not sorted"
                        )
            lo = np.searchsorted(self._right_keys, keys, side="left")
            if self._right_unique:
                # Unique right keys: at most one match per probe row.
                slots = np.minimum(lo, max(len(self._right_keys) - 1, 0))
                if len(self._right_keys) == 0:
                    continue
                matched = (
                    (lo < len(self._right_keys))
                    & (self._right_keys[slots] == keys)
                    & validity
                )
                if not matched.any():
                    continue
                if matched.all():
                    # Every probe row matched once, in order: no gather
                    # needed on the left side (the common PK/FK case).
                    return self._emit(batch, None, lo, passthrough=True)
                left_idx = np.flatnonzero(matched).astype(np.int64)
                right_idx = lo[matched]
                return self._emit(batch, left_idx, right_idx)
            hi = np.searchsorted(self._right_keys, keys, side="right")
            counts = (hi - lo) * validity
            total = int(counts.sum())
            if total == 0:
                continue
            left_idx = np.repeat(
                np.arange(len(batch), dtype=np.int64), counts
            )
            starts = np.repeat(lo, counts)
            group_offsets = np.repeat(
                np.cumsum(counts) - counts, counts
            )
            right_idx = starts + (np.arange(total, dtype=np.int64) - group_offsets)
            return self._emit(batch, left_idx, right_idx)

    def _emit(
        self,
        batch: RecordBatch,
        left_idx: np.ndarray | None,
        right_idx: np.ndarray,
        passthrough: bool = False,
    ) -> RecordBatch:
        if self._right_data is None:
            raise ExecutionError(
                "MergeJoin right side unavailable; next_batch() before open()?"
            )
        columns: dict[str, ColumnVector] = {}
        for field in self.left.schema:
            vector = batch.column(field.name)
            columns[field.name] = vector if passthrough else vector.take(left_idx)
        for field in self.right.schema:
            columns[field.name] = self._right_data.column(field.name).take(
                right_idx
            )
        return RecordBatch(self._schema, columns)

    def label(self) -> str:
        return f"MergeJoin({self.left_key} = {self.right_key})"
