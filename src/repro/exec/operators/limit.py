"""Limit/offset operator."""

from __future__ import annotations

from repro.errors import PlanError
from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.storage.schema import Schema


class Limit(Operator):
    """Pass through at most *limit* rows, skipping the first *offset*."""

    def __init__(self, child: Operator, limit: int, offset: int = 0):
        if limit < 0 or offset < 0:
            raise PlanError("limit/offset must be non-negative")
        self.child = child
        self.limit = limit
        self.offset = offset
        self._to_skip = 0
        self._remaining = 0

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[Operator]:
        return [self.child]

    def open(self) -> None:
        super().open()
        self._to_skip = self.offset
        self._remaining = self.limit

    def next_batch(self) -> RecordBatch | None:
        while self._remaining > 0:
            batch = self.child.next_batch()
            if batch is None:
                return None
            size = len(batch)
            if size == 0:
                continue
            if self._to_skip >= size:
                self._to_skip -= size
                continue
            start = self._to_skip
            self._to_skip = 0
            stop = min(size, start + self._remaining)
            self._remaining -= stop - start
            if start == 0 and stop == size:
                return batch
            import numpy as np

            return batch.take(np.arange(start, stop, dtype=np.int64))
        return None

    def label(self) -> str:
        if self.offset:
            return f"Limit({self.limit} OFFSET {self.offset})"
        return f"Limit({self.limit})"
