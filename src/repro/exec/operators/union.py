"""UnionAll operator: concatenate child dataflows (bag semantics).

This is the operator recombining the ``exclude_patches`` and
``use_patches`` branches of the distinct rewrite (paper §VI-B1, Fig. 3).
Children are drained in order; schemas must match by type (names may
differ — the first child's names win).
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.storage.schema import Schema


class UnionAll(Operator):
    """Sequential concatenation of several inputs."""

    def __init__(self, inputs: list[Operator]):
        if not inputs:
            raise PlanError("union requires at least one input")
        first = inputs[0].schema
        for other in inputs[1:]:
            if tuple(field.dtype for field in other.schema) != tuple(
                field.dtype for field in first
            ):
                raise PlanError("union inputs have mismatched column types")
        self.inputs = list(inputs)
        self._schema = first
        self._current = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return list(self.inputs)

    def open(self) -> None:
        super().open()
        self._current = 0

    def next_batch(self) -> RecordBatch | None:
        while self._current < len(self.inputs):
            batch = self.inputs[self._current].next_batch()
            if batch is None:
                self._current += 1
                continue
            if len(batch) == 0:
                continue
            return self._rename(batch)

    def _rename(self, batch: RecordBatch) -> RecordBatch:
        """Re-key a later child's batch to the union's column names."""
        if batch.schema == self._schema:
            return batch
        columns = {
            field.name: batch.column(original.name)
            for field, original in zip(self._schema, batch.schema)
        }
        return RecordBatch(self._schema, columns)

    def label(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"
