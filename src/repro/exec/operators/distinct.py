"""Distinct operator: duplicate elimination over all input columns.

This is the operator the paper's distinct rewrite avoids running over
the constraint-satisfying majority (§VI-B1): the rewritten plan applies
it only to the ``use_patches`` branch.  Implemented as hash aggregation
with all columns as group keys and no aggregate functions — output
arrives in key order, first occurrence representative per group.
"""

from __future__ import annotations

import numpy as np

from repro.exec.batch import RecordBatch
from repro.exec.operators.aggregate import _factorize_keys
from repro.exec.operators.base import Operator
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema


class Distinct(Operator):
    """Blocking duplicate elimination (SELECT DISTINCT semantics)."""

    def __init__(self, child: Operator, columns: list[str] | None = None):
        self.child = child
        self.column_names = (
            list(columns) if columns is not None else list(child.schema.names)
        )
        self._schema = child.schema.select(self.column_names)
        self._done = False

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return [self.child]

    def open(self) -> None:
        super().open()
        self._done = False

    def next_batch(self) -> RecordBatch | None:
        if self._done:
            return None
        self._done = True
        batches: list[RecordBatch] = []
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            if len(batch):
                batches.append(batch)
        if not batches:
            return RecordBatch(
                self._schema,
                {
                    field.name: ColumnVector.empty(field.dtype)
                    for field in self._schema
                },
            )
        data = RecordBatch.concat(batches)
        if len(self.column_names) == 1:
            return self._distinct_single(data)
        keys = [data.column(name) for name in self.column_names]
        __, __, first_positions = _factorize_keys(keys)
        first_positions = np.sort(first_positions)  # preserve input order
        columns = {
            name: data.column(name).take(first_positions)
            for name in self.column_names
        }
        return RecordBatch(self._schema, columns)

    def _distinct_single(self, data: RecordBatch) -> RecordBatch:
        """Single-column fast path: plain ``np.unique`` (hash-based for
        integers in recent NumPy), output in value order, NULL last.

        SQL leaves DISTINCT output order unspecified; value order keeps
        the kernel a single pass with no inverse/index reconstruction —
        exactly the cheap duplicate elimination the distinct rewrite
        applies to the patches branch.
        """
        name = self.column_names[0]
        column = data.column(name)
        validity = column.validity_or_all_true()
        values = np.unique(column.values[validity])
        has_null = len(data) and not validity.all()
        if not has_null:
            return RecordBatch(
                self._schema, {name: ColumnVector(column.dtype, values)}
            )
        padded = np.concatenate(
            [values, np.zeros(1, dtype=values.dtype)]
            if values.dtype != np.dtype(object)
            else [values, np.array([""], dtype=object)]
        )
        out_validity = np.ones(len(padded), dtype=np.bool_)
        out_validity[-1] = False
        return RecordBatch(
            self._schema,
            {name: ColumnVector(column.dtype, padded, out_validity)},
        )

    def label(self) -> str:
        return f"Distinct({', '.join(self.column_names)})"
