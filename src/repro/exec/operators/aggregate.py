"""Hash aggregation: GROUP BY with COUNT / SUM / MIN / MAX / AVG /
COUNT(DISTINCT).

This operator is the "very expensive hash-based aggregation" the
distinct use case of the paper avoids for the constraint-satisfying
majority of tuples (§VI-B1).  The implementation is fully vectorized:
group keys are factorized to dense group ids, and every aggregate
function reduces with NumPy scatter kernels — so its cost scales with
input size *and* the number of groups, matching the cost behaviour the
paper's evaluation discusses (more duplicates → fewer groups → faster
aggregation).

SQL semantics implemented:

- GROUP BY treats all NULL keys as one group;
- COUNT(col) / COUNT(DISTINCT col) ignore NULLs, COUNT(*) does not;
- SUM/MIN/MAX/AVG over an empty (all-NULL) group yield NULL;
- aggregation without GROUP BY emits exactly one row even on empty
  input (COUNT = 0, others NULL).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlanError, TypeMismatchError
from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.types import DataType, is_numeric

_AGG_FUNCS = frozenset(
    {"count", "count_star", "count_distinct", "sum", "min", "max", "avg"}
)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: function, input column (None for COUNT(*)), alias."""

    func: str
    column: str | None
    alias: str

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise PlanError(f"unknown aggregate function {self.func!r}")
        if self.func == "count_star" and self.column is not None:
            raise PlanError("count_star takes no column")
        if self.func != "count_star" and self.column is None:
            raise PlanError(f"{self.func} requires a column")

    def output_field(self, input_schema: Schema) -> Field:
        if self.func in ("count", "count_star", "count_distinct"):
            return Field(self.alias, DataType.INT64, nullable=False)
        dtype = input_schema.field(self.column).dtype
        if self.func == "avg":
            if not is_numeric(dtype):
                raise TypeMismatchError("avg requires a numeric column")
            return Field(self.alias, DataType.FLOAT64)
        if self.func == "sum":
            if not is_numeric(dtype):
                raise TypeMismatchError("sum requires a numeric column")
            return Field(self.alias, dtype)
        return Field(self.alias, dtype)  # min / max


class HashAggregate(Operator):
    """Blocking aggregation operator."""

    def __init__(
        self,
        child: Operator,
        group_by: list[str],
        aggregates: list[AggregateSpec],
    ):
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        fields = [child.schema.field(name) for name in self.group_by]
        fields.extend(spec.output_field(child.schema) for spec in self.aggregates)
        if not fields:
            raise PlanError("aggregation produces no columns")
        self._schema = Schema(fields)
        self._result: RecordBatch | None = None
        self._done = False

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return [self.child]

    def open(self) -> None:
        super().open()
        self._result = None
        self._done = False

    def next_batch(self) -> RecordBatch | None:
        if self._done:
            return None
        self._done = True
        batches: list[RecordBatch] = []
        while True:
            batch = self.child.next_batch()
            if batch is None:
                break
            if len(batch):
                batches.append(batch)
        if batches:
            data = RecordBatch.concat(batches)
        else:
            data = RecordBatch(
                self.child.schema,
                {
                    field.name: ColumnVector.empty(field.dtype)
                    for field in self.child.schema
                },
            )
        if self.group_by:
            return self._grouped(data)
        return self._scalar(data)

    # -- grouping ---------------------------------------------------------

    def _grouped(self, data: RecordBatch) -> RecordBatch:
        group_ids, group_count, first_positions = _factorize_keys(
            [data.column(name) for name in self.group_by]
        )
        columns: dict[str, ColumnVector] = {}
        for name in self.group_by:
            columns[name] = data.column(name).take(first_positions)
        for spec in self.aggregates:
            columns[spec.alias] = _compute_grouped(
                spec, data, group_ids, group_count, self._schema
            )
        return RecordBatch(self._schema, columns)

    def _scalar(self, data: RecordBatch) -> RecordBatch:
        n = len(data)
        group_ids = np.zeros(n, dtype=np.int64)
        columns: dict[str, ColumnVector] = {}
        for spec in self.aggregates:
            columns[spec.alias] = _compute_grouped(
                spec, data, group_ids, 1, self._schema
            )
        return RecordBatch(self._schema, columns)

    def label(self) -> str:
        keys = ", ".join(self.group_by) if self.group_by else "<global>"
        aggs = ", ".join(
            f"{spec.func}({spec.column or '*'}) AS {spec.alias}"
            for spec in self.aggregates
        )
        return f"HashAggregate(by=[{keys}], aggs=[{aggs}])"


# -- vectorized kernels ---------------------------------------------------------


def _factorize_one(column: ColumnVector) -> tuple[np.ndarray, int]:
    """Map one column to dense codes; NULLs get their own (last) code."""
    n = len(column)
    validity = column.validity_or_all_true()
    codes = np.empty(n, dtype=np.int64)
    valid_positions = np.flatnonzero(validity)
    if len(valid_positions):
        __, inverse = np.unique(
            column.values[valid_positions], return_inverse=True
        )
        codes[valid_positions] = inverse
        distinct = int(inverse.max()) + 1
    else:
        distinct = 0
    has_nulls = len(valid_positions) != n
    if has_nulls:
        codes[~validity] = distinct
        distinct += 1
    return codes, distinct


def _factorize_keys(
    key_columns: list[ColumnVector],
) -> tuple[np.ndarray, int, np.ndarray]:
    """Dense group ids for (possibly composite) keys.

    Returns ``(group_ids, group_count, first_positions)`` where
    ``first_positions[g]`` is the position of the first row of group
    ``g`` (used to materialize representative key values).  Group ids
    are ordered by key value (np.unique order), giving deterministic
    output order.
    """
    codes, cardinality = _factorize_one(key_columns[0])
    for column in key_columns[1:]:
        more_codes, more_cardinality = _factorize_one(column)
        combined = codes * more_cardinality + more_codes
        unique, codes = np.unique(combined, return_inverse=True)
        cardinality = len(unique)
    unique, first_positions, group_ids = np.unique(
        codes, return_index=True, return_inverse=True
    )
    return group_ids.astype(np.int64), len(unique), first_positions


def _compute_grouped(
    spec: AggregateSpec,
    data: RecordBatch,
    group_ids: np.ndarray,
    group_count: int,
    output_schema: Schema,
) -> ColumnVector:
    out_field = output_schema.field(spec.alias)
    if spec.func == "count_star":
        counts = np.bincount(group_ids, minlength=group_count)
        return ColumnVector(DataType.INT64, counts.astype(np.int64))

    column = data.column(spec.column)
    validity = column.validity_or_all_true()

    if spec.func == "count":
        counts = np.bincount(
            group_ids, weights=validity.astype(np.float64), minlength=group_count
        )
        return ColumnVector(DataType.INT64, counts.astype(np.int64))

    if spec.func == "count_distinct":
        valid_positions = np.flatnonzero(validity)
        if len(valid_positions) == 0:
            return ColumnVector(
                DataType.INT64, np.zeros(group_count, dtype=np.int64)
            )
        if group_count == 1:
            # Global COUNT(DISTINCT): no inverse needed, plain unique.
            distinct = len(np.unique(column.values[valid_positions]))
            return ColumnVector(
                DataType.INT64, np.asarray([distinct], dtype=np.int64)
            )
        value_codes, value_cardinality = _factorize_one(
            column.take(valid_positions)
        )
        pairs = group_ids[valid_positions] * value_cardinality + value_codes
        unique_pairs = np.unique(pairs)
        owning_groups = unique_pairs // value_cardinality
        counts = np.bincount(owning_groups, minlength=group_count)
        return ColumnVector(DataType.INT64, counts.astype(np.int64))

    # SUM / MIN / MAX / AVG below need the valid rows only.
    valid_positions = np.flatnonzero(validity)
    group_of_valid = group_ids[valid_positions]
    counts = np.bincount(group_of_valid, minlength=group_count)
    empty = counts == 0
    out_validity = None if not empty.any() else ~empty

    if spec.func in ("sum", "avg"):
        values = column.values[valid_positions].astype(np.float64)
        sums = np.bincount(group_of_valid, weights=values, minlength=group_count)
        if spec.func == "avg":
            with np.errstate(invalid="ignore", divide="ignore"):
                means = np.where(empty, 0.0, sums / np.maximum(counts, 1))
            return ColumnVector(DataType.FLOAT64, means, out_validity)
        if out_field.dtype == DataType.INT64:
            return ColumnVector(
                DataType.INT64, sums.astype(np.int64), out_validity
            )
        return ColumnVector(DataType.FLOAT64, sums, out_validity)

    # MIN / MAX
    values = column.values[valid_positions]
    if values.dtype == np.dtype(object):
        out = np.empty(group_count, dtype=object)
        out[:] = ""
        seen = np.zeros(group_count, dtype=np.bool_)
        better = (lambda a, b: a < b) if spec.func == "min" else (lambda a, b: a > b)
        for group, value in zip(group_of_valid.tolist(), values.tolist()):
            if not seen[group] or better(value, out[group]):
                out[group] = value
                seen[group] = True
        return ColumnVector(out_field.dtype, out, out_validity)
    if spec.func == "min":
        out = np.full(
            group_count, _extreme(values.dtype, maximum=True), dtype=values.dtype
        )
        np.minimum.at(out, group_of_valid, values)
        out[empty] = _fill(values.dtype)
    else:
        out = np.full(
            group_count, _extreme(values.dtype, maximum=False), dtype=values.dtype
        )
        np.maximum.at(out, group_of_valid, values)
        out[empty] = _fill(values.dtype)
    return ColumnVector(out_field.dtype, out.astype(values.dtype), out_validity)


def _extreme(dtype: np.dtype, maximum: bool) -> object:
    if np.issubdtype(dtype, np.floating):
        return np.inf if maximum else -np.inf
    if np.issubdtype(dtype, np.bool_):
        return True if maximum else False
    info = np.iinfo(dtype)
    return info.max if maximum else info.min


def _fill(dtype: np.dtype) -> object:
    if np.issubdtype(dtype, np.floating):
        return 0.0
    if np.issubdtype(dtype, np.bool_):
        return False
    return 0
