"""Operator protocol shared by all physical operators.

Operators follow the classic open / next / close contract, batched:
:meth:`next_batch` returns a :class:`~repro.exec.batch.RecordBatch` or
``None`` at end of stream.  An operator may be re-executed by calling
:meth:`open` again after :meth:`close`.
"""

from __future__ import annotations

import abc

from repro.exec.batch import RecordBatch
from repro.storage.schema import Schema


class Operator(abc.ABC):
    """A physical dataflow operator."""

    #: Optimizer cardinality estimate, stamped by the physical planner
    #: on plan roots per logical node.  ``None`` when no estimate exists
    #: (e.g. operators built directly, or worker-side fragments).
    estimated_rows: int | None = None

    @property
    @abc.abstractmethod
    def schema(self) -> Schema:
        """Output schema of the operator."""

    @abc.abstractmethod
    def children(self) -> list["Operator"]:
        """Input operators (empty for leaves)."""

    def open(self) -> None:
        """Prepare for execution; default opens all children."""
        for child in self.children():
            child.open()

    @abc.abstractmethod
    def next_batch(self) -> RecordBatch | None:
        """Produce the next output batch, or ``None`` when exhausted."""

    def close(self) -> None:
        """Release resources; default closes all children."""
        for child in self.children():
            child.close()

    # -- plan introspection (EXPLAIN) ----------------------------------

    def label(self) -> str:
        """One-line description used by the plan pretty-printer."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Indented textual rendering of the operator subtree."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)
