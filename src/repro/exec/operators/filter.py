"""Filter operator: keep rows satisfying a predicate expression."""

from __future__ import annotations

from repro.exec.batch import RecordBatch
from repro.exec.expressions import Expression, predicate_mask
from repro.exec.operators.base import Operator
from repro.storage.schema import Schema


class Filter(Operator):
    """Row filter with SQL WHERE semantics (NULL predicate → dropped)."""

    def __init__(self, child: Operator, predicate: Expression):
        self.child = child
        self.predicate = predicate

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[Operator]:
        return [self.child]

    def next_batch(self) -> RecordBatch | None:
        while True:
            batch = self.child.next_batch()
            if batch is None:
                return None
            if len(batch) == 0:
                continue
            mask = predicate_mask(self.predicate, batch)
            if not mask.any():
                continue
            if mask.all():
                return batch
            return batch.filter(mask)

    def label(self) -> str:
        return f"Filter({self.predicate})"
