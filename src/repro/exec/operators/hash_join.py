"""Hash join (inner equi-join).

The build side is fully drained into a hash table, then probe batches
stream through.  Integer-like keys (INT64 / DATE / BOOL) use the
vectorized :class:`~repro.exec.hashtable.Int64HashTable`; string keys
and duplicate-key build sides fall back to a dict-of-positions table.
NULL keys never match (SQL equi-join semantics).

The paper's join rewrite (§VI-B3) replaces this operator with a
MergeJoin for the sorted subsequence and keeps a HashJoin only for the
patches; its further improvement — building on the smaller input — is
available through :func:`choose_build_side`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError, PlanError
from repro.exec.batch import RecordBatch
from repro.exec.hashtable import Int64HashTable
from repro.exec.operators.base import Operator
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema


def _joined_schema(probe: Schema, build: Schema) -> Schema:
    names = set(probe.names)
    for field in build:
        if field.name in names:
            raise PlanError(
                f"join output column collision: {field.name!r} "
                f"(qualify or alias the columns first)"
            )
    return Schema(list(probe.fields) + list(build.fields))


class HashJoin(Operator):
    """Equi-join; output = probe columns followed by build columns.

    ``join_type`` is ``"inner"`` or ``"left_outer"`` — the latter keeps
    unmatched *probe* rows, padding the build columns with NULL (the
    shape the paper's NUC discovery query uses).
    """

    def __init__(
        self,
        probe: Operator,
        build: Operator,
        probe_key: str,
        build_key: str,
        join_type: str = "inner",
    ):
        if join_type not in ("inner", "left_outer"):
            raise PlanError(f"unsupported join type {join_type!r}")
        self.probe = probe
        self.build = build
        self.probe_key = probe_key
        self.build_key = build_key
        self.join_type = join_type
        probe.schema.field(probe_key)
        build.schema.field(build_key)
        probe_schema = probe.schema
        build_schema = build.schema
        if join_type == "left_outer":
            # Build columns become nullable in the output.
            from repro.storage.schema import Field

            build_schema = Schema(
                Field(field.name, field.dtype, True) for field in build_schema
            )
        self._schema = _joined_schema(probe_schema, build_schema)
        self._build_schema = build_schema
        self._build_data: RecordBatch | None = None
        self._int_table: Int64HashTable | None = None
        self._dict_table: dict | None = None

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return [self.probe, self.build]

    def open(self) -> None:
        super().open()
        self._build_data = None
        self._int_table = None
        self._dict_table = None

    # -- build phase --------------------------------------------------------

    def _ensure_built(self) -> None:
        if self._build_data is not None:
            return
        batches: list[RecordBatch] = []
        while True:
            batch = self.build.next_batch()
            if batch is None:
                break
            if len(batch):
                batches.append(batch)
        if batches:
            self._build_data = RecordBatch.concat(batches)
        else:
            self._build_data = RecordBatch(
                self.build.schema,
                {
                    field.name: ColumnVector.empty(field.dtype)
                    for field in self.build.schema
                },
            )
        key_column = self._build_data.column(self.build_key)
        validity = key_column.validity_or_all_true()
        positions = np.flatnonzero(validity).astype(np.int64)
        values = key_column.values[positions]
        if values.dtype != np.dtype(object):
            keys = values.astype(np.int64)
            if len(np.unique(keys)) == len(keys):
                self._int_table = Int64HashTable(len(keys))
                self._int_table.insert_unique(keys, positions)
                return
        # Fallback: duplicates or object keys.
        table: dict[object, list[int]] = {}
        for position, value in zip(positions.tolist(), values.tolist()):
            table.setdefault(value, []).append(position)
        self._dict_table = table

    # -- probe phase ----------------------------------------------------------

    def next_batch(self) -> RecordBatch | None:
        self._ensure_built()
        while True:
            batch = self.probe.next_batch()
            if batch is None:
                return None
            if len(batch) == 0:
                continue
            probe_idx, build_idx, passthrough = self._match(batch)
            if self.join_type == "left_outer":
                probe_idx, build_idx = _pad_unmatched(
                    len(batch), probe_idx, build_idx
                )
                passthrough = len(probe_idx) == len(batch) and passthrough
            if len(build_idx) == 0:
                continue
            return self._emit(batch, probe_idx, build_idx, passthrough)

    def _match(
        self, batch: RecordBatch
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Match one probe batch; the third element flags the
        every-row-matched-once case where probe columns can pass through
        without a gather."""
        key_column = batch.column(self.probe_key)
        validity = key_column.validity_or_all_true()
        if self._int_table is not None:
            keys = np.where(validity, key_column.values, 0).astype(np.int64)
            found = self._int_table.lookup(keys)
            hit = (found != -1) & validity
            if hit.all():
                return (
                    np.arange(len(batch), dtype=np.int64),
                    found,
                    True,
                )
            return (
                np.flatnonzero(hit).astype(np.int64),
                found[hit],
                False,
            )
        if self._dict_table is None:
            raise ExecutionError(
                "HashJoin hash table unavailable; next_batch() before open()?"
            )
        probe_idx: list[int] = []
        build_idx: list[int] = []
        values = key_column.values
        for position in np.flatnonzero(validity).tolist():
            matches = self._dict_table.get(values[position])
            if matches:
                probe_idx.extend([position] * len(matches))
                build_idx.extend(matches)
        return (
            np.asarray(probe_idx, dtype=np.int64),
            np.asarray(build_idx, dtype=np.int64),
            False,
        )

    def _emit(
        self,
        batch: RecordBatch,
        probe_idx: np.ndarray,
        build_idx: np.ndarray,
        passthrough: bool = False,
    ) -> RecordBatch:
        if self._build_data is None:
            raise ExecutionError(
                "HashJoin build side unavailable; next_batch() before open()?"
            )
        columns: dict[str, ColumnVector] = {}
        for field in self.probe.schema:
            vector = batch.column(field.name)
            columns[field.name] = (
                vector if passthrough else vector.take(probe_idx)
            )
        unmatched = build_idx < 0
        gather = np.where(unmatched, 0, build_idx)
        for field in self._build_schema:
            vector = self._build_data.column(field.name)
            if len(vector) == 0:
                # Left-outer against an empty build side: all NULL.
                taken = ColumnVector(
                    field.dtype,
                    np.zeros(
                        len(build_idx), dtype=vector.values.dtype
                    )
                    if vector.values.dtype != np.dtype(object)
                    else np.full(len(build_idx), "", dtype=object),
                    np.zeros(len(build_idx), dtype=np.bool_),
                )
            else:
                taken = vector.take(gather)
                if unmatched.any():
                    validity = taken.validity_or_all_true().copy()
                    validity[unmatched] = False
                    taken = ColumnVector(field.dtype, taken.values, validity)
            columns[field.name] = taken
        return RecordBatch(self._schema, columns)

    def label(self) -> str:
        return f"HashJoin({self.probe_key} = {self.build_key}, {self.join_type})"


def _pad_unmatched(
    batch_size: int, probe_idx: np.ndarray, build_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Add (probe row, -1) pairs for probe rows without any match."""
    matched = np.zeros(batch_size, dtype=np.bool_)
    matched[probe_idx] = True
    missing = np.flatnonzero(~matched).astype(np.int64)
    if len(missing) == 0:
        return probe_idx, build_idx
    probe_all = np.concatenate([probe_idx, missing])
    build_all = np.concatenate(
        [build_idx, np.full(len(missing), -1, dtype=np.int64)]
    )
    order = np.argsort(probe_all, kind="stable")
    return probe_all[order], build_all[order]


def choose_build_side(
    left_rows: int, right_rows: int
) -> tuple[str, str]:
    """Pick the smaller input as the hash-table build side (paper §VI-B3).

    Returns ``("left"|"right", reason)`` — the planner uses this when
    estimated cardinalities are available (e.g. ``|P_c|`` from the
    PatchIndex for the patches branch).
    """
    if left_rows <= right_rows:
        return "left", f"left={left_rows} <= right={right_rows}"
    return "right", f"right={right_rows} < left={left_rows}"
