"""MergeUnion: combine two *sorted* dataflows into one sorted dataflow.

The sort rewrite (paper §VI-B2) replaces the plain union with a
MergeUnion: the ``exclude_patches`` branch is already sorted by the NSC
definition, and only the small ``use_patches`` branch was explicitly
sorted — merging the two keeps the output sorted without re-sorting the
majority.

The merge itself is vectorized: one ``searchsorted`` of the smaller
side's keys into the larger side's keys produces the interleaving
permutation in ``O(m log n + n)``, which preserves the asymptotic
advantage over re-sorting (``O(n log n)``).

On equal keys the *left* input's rows are emitted first (``side="right"``
in the search), making the merge deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError
from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.exec.operators.sort import SortKey
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema


class MergeUnion(Operator):
    """Order-preserving union of two sorted inputs."""

    def __init__(self, left: Operator, right: Operator, keys: list[SortKey]):
        if tuple(field.dtype for field in left.schema) != tuple(
            field.dtype for field in right.schema
        ):
            raise PlanError("merge-union inputs have mismatched column types")
        if not keys:
            raise PlanError("merge-union requires at least one sort key")
        self.left = left
        self.right = right
        self.keys = list(keys)
        self._schema = left.schema
        self._done = False

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    def open(self) -> None:
        super().open()
        self._done = False

    def next_batch(self) -> RecordBatch | None:
        if self._done:
            return None
        self._done = True
        left = _drain(self.left)
        right = _drain(self.right, rename_to=self._schema)
        if left is None and right is None:
            return None
        if left is None:
            return right
        if right is None:
            return left
        # Keys must share a dtype across the two sides; only promote to
        # float64 (for the NULL sentinel) when either side has NULLs.
        promote = any(
            batch.column(key.column).has_nulls
            for batch in (left, right)
            for key in self.keys
        )
        left_keys = merge_keys(left, self.keys, promote)
        right_keys = merge_keys(right, self.keys, promote)
        take_left, take_right = merge_permutation(left_keys, right_keys)
        columns = {
            field.name: _interleave(
                left.column(field.name),
                right.column(field.name),
                take_left,
                take_right,
            )
            for field in self._schema
        }
        return RecordBatch(self._schema, columns)

    def label(self) -> str:
        return f"MergeUnion({', '.join(str(key) for key in self.keys)})"


def _drain(operator: Operator, rename_to: Schema | None = None) -> RecordBatch | None:
    batches: list[RecordBatch] = []
    while True:
        batch = operator.next_batch()
        if batch is None:
            break
        if len(batch):
            batches.append(batch)
    if not batches:
        return None
    merged = RecordBatch.concat(batches)
    if rename_to is not None and merged.schema != rename_to:
        columns = {
            field.name: merged.column(original.name)
            for field, original in zip(rename_to, merged.schema)
        }
        merged = RecordBatch(rename_to, columns)
    return merged


class _ReverseKey:
    """Comparison-inverting wrapper for descending object keys."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.value < self.value

    def __le__(self, other: "_ReverseKey") -> bool:
        return other.value <= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseKey) and other.value == self.value


def merge_keys(
    batch: RecordBatch, keys: list[SortKey], promote: bool = True
) -> np.ndarray:
    """Produce an ascending-comparable key array for a sorted batch.

    Single numeric keys stay NumPy-native (fast path); everything else
    falls back to an object array of comparable per-row keys.  NULLs
    compare greater than all values (NULLS LAST under ascending), the
    same convention as the Sort operator.

    *promote* forces float64 keys; the caller sets it when *either*
    merge side carries NULLs so the two key arrays keep one dtype.
    (Integers beyond 2**53 would lose precision under promotion; the
    engine's key domains are far below that.)
    """
    if len(keys) == 1:
        column = batch.column(keys[0].column)
        if column.values.dtype != np.dtype(object):
            if not promote and column.validity is None:
                if keys[0].ascending:
                    return column.values
                return -column.values.astype(np.float64)
            out = column.values.astype(np.float64, copy=True)
            if column.validity is not None:
                out[~column.validity] = np.inf
            return out if keys[0].ascending else -out
    parts: list[list[object]] = []
    for key in keys:
        column = batch.column(key.column)
        validity = column.validity_or_all_true()
        values = column.values
        part: list[object] = []
        for position in range(len(column)):
            is_null = not validity[position]
            raw = None if is_null else values[position]
            if key.ascending:
                # NULLS LAST: (True, _) sorts after every (False, value).
                part.append((is_null, raw) if not is_null else (True, 0))
            else:
                # NULL compares greater than every value, so under a
                # descending key it comes FIRST — same convention as
                # the Sort operator and the numeric fast path above.
                part.append(
                    (True, _ReverseKey(raw)) if not is_null else (False, 0)
                )
        parts.append(part)
    out = np.empty(len(parts[0]), dtype=object)
    for position in range(len(parts[0])):
        out[position] = tuple(part[position] for part in parts)
    return out


def merge_permutation(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Output positions for each side's rows in the merged order.

    One binary-search pass of the *smaller* side into the larger keeps
    the cost at ``O(min(n,m) log max(n,m) + n + m)`` regardless of which
    side dominates; ties always emit the left input's rows first.
    """
    total = len(left_keys) + len(right_keys)
    if len(right_keys) <= len(left_keys):
        right_positions = (
            np.searchsorted(left_keys, right_keys, side="right")
            + np.arange(len(right_keys), dtype=np.int64)
        )
        from_right = np.zeros(total, dtype=np.bool_)
        from_right[right_positions] = True
        left_positions = np.flatnonzero(~from_right)
        return left_positions, right_positions
    # side="left" keeps the tie order: equal left rows land before the
    # equal right rows they interleave with.
    left_positions = (
        np.searchsorted(right_keys, left_keys, side="left")
        + np.arange(len(left_keys), dtype=np.int64)
    )
    from_left = np.zeros(total, dtype=np.bool_)
    from_left[left_positions] = True
    right_positions = np.flatnonzero(~from_left)
    return left_positions, right_positions


def _interleave(
    left: ColumnVector,
    right: ColumnVector,
    left_positions: np.ndarray,
    right_positions: np.ndarray,
) -> ColumnVector:
    total = len(left) + len(right)
    values = np.empty(total, dtype=left.values.dtype)
    values[left_positions] = left.values
    values[right_positions] = right.values
    if left.validity is None and right.validity is None:
        return ColumnVector(left.dtype, values)
    validity = np.empty(total, dtype=np.bool_)
    validity[left_positions] = left.validity_or_all_true()
    validity[right_positions] = right.validity_or_all_true()
    return ColumnVector(left.dtype, values, validity)
