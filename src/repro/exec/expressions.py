"""Vectorized scalar expressions evaluated against record batches.

Expressions form a small tree (column references, literals, comparisons,
boolean connectives, arithmetic, IS [NOT] NULL) and evaluate to
:class:`~repro.storage.column.ColumnVector` over a batch.

NULL semantics: comparisons and arithmetic on NULL inputs yield NULL;
when a predicate's result is consumed by a filter, NULL counts as *not
satisfied* — the standard SQL WHERE behaviour.  AND/OR use Kleene logic
restricted to the cases expressible with a value array + validity mask.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError, TypeMismatchError
from repro.exec.batch import RecordBatch
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema
from repro.types import DataType, common_type, infer_datatype, is_numeric
from repro.types.datatypes import coerce_scalar, numpy_dtype


class Expression(abc.ABC):
    """Base class of the expression tree."""

    @abc.abstractmethod
    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        """Evaluate over a batch, returning one vector of results."""

    @abc.abstractmethod
    def output_type(self, schema: Schema) -> DataType:
        """Static result type against an input schema."""

    @abc.abstractmethod
    def referenced_columns(self) -> set[str]:
        """Names of all columns the expression reads."""

    def __str__(self) -> str:  # pragma: no cover - overridden where useful
        return repr(self)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to an input column by name."""

    name: str

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        return batch.column(self.name)

    def output_type(self, schema: Schema) -> DataType:
        return schema.field(self.name).dtype

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant; ``value is None`` denotes NULL (dtype required then)."""

    value: object
    dtype: DataType | None = None

    def _resolved_type(self) -> DataType:
        if self.dtype is not None:
            return self.dtype
        if self.value is None:
            raise TypeMismatchError("NULL literal requires an explicit dtype")
        return infer_datatype(self.value)

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        dtype = self._resolved_type()
        n = len(batch)
        np_dtype = numpy_dtype(dtype)
        if self.value is None:
            values = (
                np.full(n, "", dtype=object)
                if np_dtype == np.dtype(object)
                else np.zeros(n, dtype=np_dtype)
            )
            return ColumnVector(dtype, values, np.zeros(n, dtype=np.bool_))
        coerced = coerce_scalar(self.value, dtype)
        if np_dtype == np.dtype(object):
            values = np.full(n, coerced, dtype=object)
        else:
            values = np.full(n, coerced, dtype=np_dtype)
        return ColumnVector(dtype, values)

    def output_type(self, schema: Schema) -> DataType:
        return self._resolved_type()

    def referenced_columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return "NULL" if self.value is None else str(self.value)


_COMPARE_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison producing BOOL (NULL when either side is NULL)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARE_OPS:
            raise ExecutionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        left_values, right_values = _align_for_compare(left, right)
        op = self.op
        if op == "=":
            out = left_values == right_values
        elif op in ("!=", "<>"):
            out = left_values != right_values
        elif op == "<":
            out = left_values < right_values
        elif op == "<=":
            out = left_values <= right_values
        elif op == ">":
            out = left_values > right_values
        else:
            out = left_values >= right_values
        out = np.asarray(out, dtype=np.bool_)
        validity = _combine_validity(left, right)
        return ColumnVector(DataType.BOOL, out, validity)

    def output_type(self, schema: Schema) -> DataType:
        common_type(self.left.output_type(schema), self.right.output_type(schema))
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic on numeric inputs (+, -, *, /)."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        if not (is_numeric(left.dtype) and is_numeric(right.dtype)):
            raise TypeMismatchError(
                f"arithmetic requires numeric inputs, got "
                f"{left.dtype.name}/{right.dtype.name}"
            )
        out_type = (
            DataType.FLOAT64
            if self.op == "/" or DataType.FLOAT64 in (left.dtype, right.dtype)
            else DataType.INT64
        )
        left_values = left.values.astype(numpy_dtype(out_type), copy=False)
        right_values = right.values.astype(numpy_dtype(out_type), copy=False)
        if self.op == "+":
            out = left_values + right_values
        elif self.op == "-":
            out = left_values - right_values
        elif self.op == "*":
            out = left_values * right_values
        elif self.op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                out = left_values / right_values
        else:
            raise ExecutionError(f"unknown arithmetic operator {self.op!r}")
        validity = _combine_validity(left, right)
        if self.op == "/":
            zero = right_values == 0
            if zero.any():
                validity = (
                    np.ones(len(left), dtype=np.bool_)
                    if validity is None
                    else validity.copy()
                )
                validity[zero] = False
                out = np.where(zero, 0.0, out)
        return ColumnVector(out_type, np.asarray(out), validity)

    def output_type(self, schema: Schema) -> DataType:
        left = self.left.output_type(schema)
        right = self.right.output_type(schema)
        if not (is_numeric(left) and is_numeric(right)):
            raise TypeMismatchError("arithmetic requires numeric inputs")
        if self.op == "/" or DataType.FLOAT64 in (left, right):
            return DataType.FLOAT64
        return DataType.INT64

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class And(Expression):
    left: Expression
    right: Expression

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        out = left.values & right.values
        # Kleene AND: NULL unless one side is a definite False.
        validity = _combine_validity(left, right)
        if validity is not None:
            definite_false = (
                (left.validity_or_all_true() & ~left.values.astype(np.bool_))
                | (right.validity_or_all_true() & ~right.values.astype(np.bool_))
            )
            validity = validity | definite_false
            out = np.where(validity, out, False)
        return ColumnVector(DataType.BOOL, np.asarray(out, dtype=np.bool_), validity)

    def output_type(self, schema: Schema) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Expression):
    left: Expression
    right: Expression

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        out = left.values | right.values
        # Kleene OR: NULL unless one side is a definite True.
        validity = _combine_validity(left, right)
        if validity is not None:
            definite_true = (
                (left.validity_or_all_true() & left.values.astype(np.bool_))
                | (right.validity_or_all_true() & right.values.astype(np.bool_))
            )
            validity = validity | definite_true
            out = np.where(validity, out, False)
        return ColumnVector(DataType.BOOL, np.asarray(out, dtype=np.bool_), validity)

    def output_type(self, schema: Schema) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        operand = self.operand.evaluate(batch)
        out = ~operand.values.astype(np.bool_)
        return ColumnVector(DataType.BOOL, out, operand.validity)

    def output_type(self, schema: Schema) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (literal, ...)`` — vectorized membership test.

    NULL operands yield NULL (SQL semantics for a non-empty list
    without NULLs, the only list shape the parser produces).
    """

    operand: Expression
    values: tuple[object, ...]
    negated: bool = False

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        operand = self.operand.evaluate(batch)
        needles = np.array(
            [coerce_scalar(value, operand.dtype) for value in self.values],
            dtype=operand.values.dtype,
        )
        mask = np.isin(operand.values, needles)
        if self.negated:
            mask = ~mask
        return ColumnVector(DataType.BOOL, mask, operand.validity)

    def output_type(self, schema: Schema) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        rendered = ", ".join(
            f"'{value}'" if isinstance(value, str) else str(value)
            for value in self.values
        )
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {keyword} ({rendered}))"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL`` (never returns NULL itself)."""

    operand: Expression
    negated: bool = False

    def evaluate(self, batch: RecordBatch) -> ColumnVector:
        operand = self.operand.evaluate(batch)
        nulls = (
            np.zeros(len(operand), dtype=np.bool_)
            if operand.validity is None
            else ~operand.validity
        )
        out = ~nulls if self.negated else nulls
        return ColumnVector(DataType.BOOL, out)

    def output_type(self, schema: Schema) -> DataType:
        return DataType.BOOL

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {suffix})"


# -- helpers -------------------------------------------------------------


def _align_for_compare(
    left: ColumnVector, right: ColumnVector
) -> tuple[np.ndarray, np.ndarray]:
    """Return comparable value arrays, widening numerics when mixed."""
    if left.dtype == right.dtype:
        return left.values, right.values
    if is_numeric(left.dtype) and is_numeric(right.dtype):
        return (
            left.values.astype(np.float64, copy=False),
            right.values.astype(np.float64, copy=False),
        )
    raise TypeMismatchError(
        f"cannot compare {left.dtype.name} with {right.dtype.name}"
    )


def _combine_validity(
    left: ColumnVector, right: ColumnVector
) -> np.ndarray | None:
    if left.validity is None and right.validity is None:
        return None
    return left.validity_or_all_true() & right.validity_or_all_true()


def predicate_mask(expression: Expression, batch: RecordBatch) -> np.ndarray:
    """Evaluate a predicate as a WHERE filter mask: NULL → False."""
    result = expression.evaluate(batch)
    if result.dtype != DataType.BOOL:
        raise TypeMismatchError("filter predicate must be BOOL")
    mask = result.values.astype(np.bool_, copy=False)
    if result.validity is not None:
        mask = mask & result.validity
    return mask


def literal(value: object, dtype: DataType | None = None) -> Literal:
    """Convenience constructor coercing Python scalars (dates → days)."""
    if value is None:
        return Literal(None, dtype)
    resolved = dtype if dtype is not None else infer_datatype(value)
    return Literal(coerce_scalar(value, resolved) if resolved == DataType.DATE else value, resolved)
