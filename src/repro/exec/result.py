"""Materialized query results.

:func:`collect` drains a physical operator tree into a
:class:`QueryResult` — the object returned by
:meth:`repro.storage.database.Database.sql`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.batch import RecordBatch
from repro.storage.column import ColumnVector
from repro.storage.schema import Field as SchemaField, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.operators.base import Operator


class QueryResult:
    """A fully materialized result set with named, typed columns.

    This is the stable result surface for *both* local and remote
    callers: :meth:`repro.storage.database.Database.sql`,
    :meth:`repro.sql.session.Session.sql` and the network clients in
    :mod:`repro.serve` all return it.  Besides the columnar accessors
    (:meth:`column`, :meth:`to_pydict`) it carries a DB-API-flavoured
    cursor surface — iteration yields row tuples, :meth:`fetchone` /
    :meth:`fetchmany` / :meth:`fetchall` consume them incrementally,
    :attr:`rowcount` mirrors the DB-API attribute, and ``result[name]``
    gives column access by name.
    """

    #: The :class:`~repro.obs.profile.QueryProfile` of the execution when
    #: the statement ran with ``profile=True`` (EXPLAIN ANALYZE or
    #: ``Database.sql(..., profile=True)``); ``None`` otherwise.  Remote
    #: results carry a render-only stand-in with the same ``to_text()``.
    profile = None

    def __init__(self, schema: Schema, columns: dict[str, ColumnVector]):
        self.schema = schema
        self.columns = columns
        #: Cursor position for fetchone()/fetchmany() (DB-API surface).
        self._cursor = 0
        self._rows: list[tuple[object, ...]] | None = None

    @classmethod
    def empty(cls, schema: Schema | None = None) -> "QueryResult":
        schema = schema if schema is not None else Schema([])
        return cls(
            schema,
            {field.name: ColumnVector.empty(field.dtype) for field in schema},
        )

    @classmethod
    def message(cls, text: str, column: str = "status") -> "QueryResult":
        """A 1×1 STRING result (DDL/DML acknowledgements)."""
        return cls.from_lines(column, [text])

    @classmethod
    def from_lines(cls, column: str, lines: list[str]) -> "QueryResult":
        """A single STRING column with one row per line (plan output)."""
        from repro.types import DataType

        vector = ColumnVector.from_pylist(DataType.STRING, list(lines))
        schema = Schema([SchemaField(column, DataType.STRING, nullable=False)])
        return cls(schema, {column: vector})

    @classmethod
    def from_batches(
        cls, schema: Schema, batches: list[RecordBatch]
    ) -> "QueryResult":
        if not batches:
            return cls.empty(schema)
        merged = RecordBatch.concat(batches)
        return cls(schema, merged.columns)

    @property
    def row_count(self) -> int:
        for vector in self.columns.values():
            return len(vector)
        return 0

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.names

    def column(self, name: str) -> ColumnVector:
        return self.columns[name]

    def __getitem__(self, name: str) -> ColumnVector:
        """Column access by name: ``result["total"]``."""
        if not isinstance(name, str):
            raise TypeError(
                f"QueryResult columns are addressed by name, got "
                f"{type(name).__name__}"
            )
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; columns are {list(self.column_names)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self.columns

    def to_pydict(self) -> dict[str, list[object]]:
        return {
            field.name: self.columns[field.name].to_pylist()
            for field in self.schema
        }

    def to_pylist(self) -> list[tuple[object, ...]]:
        """Rows as tuples, in result order."""
        materialized = [
            self.columns[field.name].to_pylist() for field in self.schema
        ]
        return list(zip(*materialized)) if materialized else []

    # -- DB-API-flavoured cursor surface -----------------------------------

    @property
    def rowcount(self) -> int:
        """Number of rows in the result (DB-API spelling)."""
        return self.row_count

    def _materialized_rows(self) -> list[tuple[object, ...]]:
        if self._rows is None:
            self._rows = self.to_pylist()
        return self._rows

    def fetchone(self) -> tuple[object, ...] | None:
        """The next row tuple, or ``None`` when the cursor is exhausted."""
        rows = self._materialized_rows()
        if self._cursor >= len(rows):
            return None
        row = rows[self._cursor]
        self._cursor += 1
        return row

    def fetchmany(self, size: int = 1) -> list[tuple[object, ...]]:
        """Up to *size* next row tuples (empty list when exhausted)."""
        if size < 0:
            raise ValueError(f"fetchmany size must be >= 0, got {size}")
        rows = self._materialized_rows()
        chunk = rows[self._cursor : self._cursor + size]
        self._cursor += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple[object, ...]]:
        """All remaining row tuples from the cursor position on."""
        rows = self._materialized_rows()
        chunk = rows[self._cursor :]
        self._cursor = len(rows)
        return chunk

    def rows(self) -> list[tuple[object, ...]]:
        """Alias of :meth:`to_pylist`: rows as tuples, in result order."""
        return self.to_pylist()

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as ``{column: value}`` dicts, in result order."""
        names = self.column_names
        return [dict(zip(names, row)) for row in self.to_pylist()]

    def text(self) -> str:
        """A single-STRING-column result joined into one string.

        This is how EXPLAIN / EXPLAIN ANALYZE plans and status messages
        are read back out of their uniform QueryResult carrier.
        """
        if len(self.schema) != 1:
            raise ValueError(
                f"text() requires a single-column result, got "
                f"{len(self.schema)} columns"
            )
        name = self.schema.names[0]
        return "\n".join(str(value) for value in self.columns[name].to_pylist())

    def scalar(self) -> object:
        """The single value of a 1×1 result (e.g. a COUNT query)."""
        if self.row_count != 1 or len(self.schema) != 1:
            raise ValueError(
                f"scalar() requires a 1x1 result, got "
                f"{self.row_count}x{len(self.schema)}"
            )
        return self.columns[self.schema.names[0]][0]

    def __iter__(self) -> Iterator[tuple[object, ...]]:
        return iter(self.to_pylist())

    def __len__(self) -> int:
        return self.row_count

    def pretty(self, limit: int = 20) -> str:
        """Fixed-width textual rendering (for examples and debugging)."""
        names = list(self.column_names)
        rows = self.to_pylist()[:limit]
        cells = [[_fmt(value) for value in row] for row in rows]
        widths = [
            max(len(name), *(len(row[i]) for row in cells)) if cells else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(width) for name, width in zip(names, widths))
        rule = "-+-".join("-" * width for width in widths)
        body = [
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in cells
        ]
        lines = [header, rule, *body]
        if self.row_count > limit:
            lines.append(f"... ({self.row_count} rows total)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryResult(rows={self.row_count}, cols={list(self.column_names)})"


def _fmt(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def collect(operator: "Operator") -> QueryResult:
    """Open, drain and close an operator tree into a QueryResult."""
    operator.open()
    try:
        batches: list[RecordBatch] = []
        while True:
            batch = operator.next_batch()
            if batch is None:
                break
            if len(batch):
                batches.append(batch)
        return QueryResult.from_batches(operator.schema, batches)
    finally:
        operator.close()
