"""Record batches: the unit of dataflow between physical operators.

A batch is a set of equal-length column vectors plus (optionally) the
global rowids of its rows.  Rowids flow out of scans and through
rowid-preserving operators (PatchSelect, Filter); operators that create
new rows (joins, aggregates, sorts across batches) drop them.

The PatchSelect operator relies on scan batches being *contiguous* in
rowid space — the paper's assumption that "rowIDs of incoming tuples are
equal to tuple identifiers" when the operator sits directly on a scan
(§VI-A1).  :attr:`RecordBatch.contiguous_range` exposes exactly that.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ExecutionError, SchemaError
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema

# Vectorized engines typically use ~1K-row vectors to stay cache
# resident; NumPy kernels amortize their per-call overhead better with
# larger batches, so 16K keeps the *relative* operator costs realistic.
DEFAULT_BATCH_SIZE = 16384


class RecordBatch:
    """Equal-length named column vectors, optionally carrying rowids."""

    __slots__ = ("schema", "columns", "rowids")

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, ColumnVector],
        rowids: np.ndarray | None = None,
    ):
        self.schema = schema
        self.columns: dict[str, ColumnVector] = dict(columns)
        length: int | None = None
        for field in schema:
            if field.name not in self.columns:
                raise SchemaError(f"batch missing column {field.name!r}")
            vector = self.columns[field.name]
            if length is None:
                length = len(vector)
            elif len(vector) != length:
                raise ExecutionError("batch columns have differing lengths")
        if length is None:
            length = 0 if rowids is None else len(rowids)
        if rowids is not None and len(rowids) != length:
            raise ExecutionError("batch rowids length mismatch")
        self.rowids = rowids

    def __len__(self) -> int:
        for vector in self.columns.values():
            return len(vector)
        return 0 if self.rowids is None else len(self.rowids)

    def column(self, name: str) -> ColumnVector:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(f"unknown column in batch: {name!r}") from None

    @property
    def contiguous_range(self) -> tuple[int, int] | None:
        """``(start, stop)`` when rowids are a dense ascending run, else None."""
        if self.rowids is None or len(self.rowids) == 0:
            return None
        start = int(self.rowids[0])
        stop = int(self.rowids[-1]) + 1
        if stop - start == len(self.rowids):
            return (start, stop)
        return None

    # -- transforms ------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        """Row-filter every column (and the rowids) by a boolean mask."""
        columns = {
            name: vector.filter(mask) for name, vector in self.columns.items()
        }
        rowids = None if self.rowids is None else self.rowids[mask]
        return RecordBatch(self.schema, columns, rowids)

    def take(self, indices: np.ndarray) -> "RecordBatch":
        """Gather rows by integer position."""
        columns = {
            name: vector.take(indices) for name, vector in self.columns.items()
        }
        rowids = None if self.rowids is None else self.rowids[indices]
        return RecordBatch(self.schema, columns, rowids)

    def project(self, names: list[str]) -> "RecordBatch":
        """Keep only the named columns (rowids preserved)."""
        schema = self.schema.select(names)
        return RecordBatch(
            schema, {name: self.column(name) for name in names}, self.rowids
        )

    def drop_rowids(self) -> "RecordBatch":
        if self.rowids is None:
            return self
        return RecordBatch(self.schema, self.columns, None)

    @classmethod
    def concat(cls, batches: list["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches of identical schema."""
        if not batches:
            raise ExecutionError("cannot concat zero batches")
        schema = batches[0].schema
        columns = {
            field.name: ColumnVector.concat(
                [batch.column(field.name) for batch in batches]
            )
            for field in schema
        }
        if all(batch.rowids is not None for batch in batches):
            rowids = np.concatenate([batch.rowids for batch in batches])
        else:
            rowids = None
        return cls(schema, columns, rowids)

    def to_pydict(self) -> dict[str, list[object]]:
        """Materialize as Python lists keyed by column name."""
        return {
            field.name: self.column(field.name).to_pylist()
            for field in self.schema
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordBatch(rows={len(self)}, cols={list(self.columns)})"
