"""Vectorized open-addressing hash table for int64 keys.

Hash joins and hash aggregation need key → payload lookup over large
arrays.  A per-row Python dict would dominate runtime and distort the
operator cost ratios the paper's evaluation depends on; this table keeps
both build and probe fully vectorized: batched scatter with collision
detection, then iterative re-probing of only the unresolved lanes
(linear probing).  The expected number of probe rounds is O(1) at the
fixed load factor.

Keys are int64; callers with other key types map them to int64 first
(dates are already stored as day numbers; strings go through the
dictionary-encoding fallback in the join/aggregate operators).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError

_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)  # golden-ratio multiplier


def _next_power_of_two(value: int) -> int:
    result = 1
    while result < value:
        result <<= 1
    return result


class Int64HashTable:
    """Open-addressing (linear probing) map from int64 keys to int64 values.

    Duplicate keys are rejected at insert: the engine's hash joins build
    on the unique side (dimension keys), and the aggregate path inserts
    pre-deduplicated group keys.  Use :meth:`insert_first_wins` when a
    first-occurrence policy is wanted instead.
    """

    def __init__(self, expected: int, load_factor: float = 0.5):
        if expected < 0:
            raise ExecutionError("expected size must be non-negative")
        capacity = _next_power_of_two(max(8, int(expected / load_factor) + 1))
        self._mask = np.uint64(capacity - 1)
        self._keys = np.zeros(capacity, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._used = np.zeros(capacity, dtype=np.bool_)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return len(self._keys)

    def _slots(self, keys: np.ndarray) -> np.ndarray:
        hashed = keys.astype(np.uint64) * _MULTIPLIER
        hashed ^= hashed >> np.uint64(32)
        return hashed & self._mask

    # -- build ----------------------------------------------------------

    def insert_unique(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert key→value pairs; raises on any duplicate key."""
        duplicates = self._insert(keys, values, first_wins=False)
        if duplicates.any():
            raise ExecutionError(
                f"duplicate keys in hash table build "
                f"({int(duplicates.sum())} collisions)"
            )

    def insert_first_wins(self, keys: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Insert pairs, keeping the first value per key.

        Returns a boolean array marking which input lanes were dropped
        as duplicates (of an earlier lane or an existing entry).
        """
        return self._insert(keys, values, first_wins=True)

    def _insert(
        self, keys: np.ndarray, values: np.ndarray, first_wins: bool
    ) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if len(keys) != len(values):
            raise ExecutionError("keys/values length mismatch")
        if self._count + len(keys) > self.capacity // 2:
            self._grow(self._count + len(keys))
        duplicates = np.zeros(len(keys), dtype=np.bool_)
        pending = np.arange(len(keys))
        slots = self._slots(keys)
        while len(pending):
            lanes_slots = slots[pending]
            occupied = self._used[lanes_slots]
            same_key = occupied & (self._keys[lanes_slots] == keys[pending])
            if same_key.any():
                # Key already present in the table: duplicate lane.
                duplicates[pending[same_key]] = True
                active = ~same_key
                pending = pending[active]
                lanes_slots = lanes_slots[active]
                occupied = occupied[active]
            free = ~occupied
            writers = pending[free]
            write_slots = lanes_slots[free]
            if len(writers):
                # Several lanes may target the same free slot; elect the
                # first lane per slot (stable order) and write only those
                # — no scatter races to untangle.
                order = np.argsort(write_slots, kind="stable")
                ordered_slots = write_slots[order]
                ordered_writers = writers[order]
                is_first = np.ones(len(order), dtype=np.bool_)
                is_first[1:] = ordered_slots[1:] != ordered_slots[:-1]
                chosen = ordered_writers[is_first]
                chosen_slots = ordered_slots[is_first]
                self._keys[chosen_slots] = keys[chosen]
                self._values[chosen_slots] = values[chosen]
                self._used[chosen_slots] = True
                self._count += len(chosen)
                losers = ordered_writers[~is_first]
                loser_slots = ordered_slots[~is_first]
                # A loser whose key just landed in its slot is a duplicate;
                # the rest keep probing.
                now_equal = self._keys[loser_slots] == keys[losers]
                duplicates[losers[now_equal]] = True
                retry = losers[~now_equal]
            else:
                retry = writers
            blocked = pending[~free]
            pending = np.concatenate([retry, blocked])
            slots[pending] = (slots[pending] + np.uint64(1)) & self._mask
        return duplicates

    def _grow(self, needed: int) -> None:
        old_keys = self._keys[self._used]
        old_values = self._values[self._used]
        capacity = _next_power_of_two(max(8, needed * 4))
        self._mask = np.uint64(capacity - 1)
        self._keys = np.zeros(capacity, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.int64)
        self._used = np.zeros(capacity, dtype=np.bool_)
        self._count = 0
        if len(old_keys):
            self.insert_unique(old_keys, old_values)

    # -- probe -----------------------------------------------------------

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized probe; returns values, with -1 for missing keys."""
        keys = np.asarray(keys, dtype=np.int64)
        out = np.full(len(keys), -1, dtype=np.int64)
        pending = np.arange(len(keys))
        slots = self._slots(keys)
        while len(pending):
            lanes_slots = slots[pending]
            occupied = self._used[lanes_slots]
            match = occupied & (self._keys[lanes_slots] == keys[pending])
            out[pending[match]] = self._values[lanes_slots[match]]
            # Missing: hit an empty slot → key not in table.
            keep_probing = occupied & ~match
            pending = pending[keep_probing]
            slots[pending] = (slots[pending] + np.uint64(1)) & self._mask
        return out

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized membership test."""
        return self.lookup(keys) != -1
