"""Parallel-aware terminal operators: distinct, aggregation, sort.

Each operator here pushes a *partial* of its work into the morsel
workers and finishes with a cheap merge at the gather point:

- :class:`ParallelDistinct` — per-worker duplicate elimination (hash
  sets built per morsel), unioned and deduplicated once at the gather;
- :class:`ParallelAggregate` — classic two-phase aggregation: partial
  hash aggregation per morsel, merged by a final aggregation over the
  partials (COUNT→sum, SUM→sum, MIN/MAX→min/max, AVG→sum+count pairs,
  COUNT(DISTINCT) via per-morsel distinct partials);
- :class:`ParallelSort` — per-morsel sort producing sorted runs,
  combined by a balanced k-way merge built from the MergeUnion kernels.
  This composes with the NSC sort rewrite: the exclude-patches branch's
  morsels are already sorted, so its per-morsel "sort" is a no-op pass
  of the run-adaptive kernel and the k-way merge does the real work.

All three gather partials in morsel (= rowid) order and use
order-insensitive or stable merges, so their output is byte-identical
to the corresponding serial operator's.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

import numpy as np

from repro.errors import PlanError
from repro.exec.batch import RecordBatch
from repro.exec.operators.aggregate import AggregateSpec, HashAggregate
from repro.exec.operators.base import Operator
from repro.exec.operators.distinct import Distinct
from repro.exec.operators.merge_union import (
    _interleave,
    merge_keys,
    merge_permutation,
)
from repro.exec.operators.sort import Sort, SortKey
from repro.exec.parallel.exchange import BatchSource, FragmentFactory, run_fragment
from repro.exec.parallel.morsels import Morsel
from repro.exec.parallel.pool import get_pool
from repro.exec.parallel.worker import PartialSpec
from repro.storage.column import ColumnVector
from repro.storage.schema import Schema
from repro.types import DataType


class _ParallelBlocking(Operator):
    """Scaffolding shared by the blocking parallel terminals.

    Subclasses provide :meth:`_wrap` (the per-morsel partial operator
    placed on top of a fragment) and :meth:`_combine` (the final merge
    over the gathered partial batches, in morsel order).
    """

    def __init__(
        self,
        fragment_factory: FragmentFactory,
        template: Operator,
        morsels: Sequence[Morsel],
        parallelism: int,
    ):
        if parallelism < 1:
            raise PlanError("parallel operator needs parallelism >= 1")
        self.fragment_factory = fragment_factory
        self.template = template
        self.morsels = list(morsels)
        self.parallelism = parallelism
        #: Pool observation hook (duck-typed, see ``Exchange.obs``).
        self.obs = None
        #: Execution backend (see ``Exchange.backend``): ``None`` for
        #: the thread pool, a ``ProcessTransport`` for processes.  The
        #: transport carries this operator's :meth:`partial_spec`, so
        #: workers apply the same per-morsel partial as ``_wrap``.
        self.backend: Any = None
        self._futures: deque[Any] | None = None
        self._done = False

    def children(self) -> list[Operator]:
        return [self.template]

    def open(self) -> None:
        if self.backend is not None:
            # The worker applies this operator's partial wrap from the
            # transport's PartialSpec; the wrapped local factory is
            # passed along for the serial-retry fallback only.
            self._futures = deque(
                self.backend.submit_all(
                    self.morsels, self._wrapped_factory, self.obs
                )
            )
            self._done = False
            return
        pool = get_pool(self.parallelism)
        factory = self._wrapped_factory
        if self.obs is None:
            self._futures = deque(
                pool.submit(run_fragment, factory, morsel)
                for morsel in self.morsels
            )
        else:
            self._futures = deque(
                self.obs.submit(pool, factory, morsel)
                for morsel in self.morsels
            )
        self._done = False

    def _wrapped_factory(self, ranges: list[tuple[int, int]]) -> Operator:
        return self._wrap(self.fragment_factory(ranges))

    def next_batch(self) -> RecordBatch | None:
        if self._futures is None:
            raise PlanError("parallel operator used before open()")
        if self._done:
            return None
        self._done = True
        partials: list[RecordBatch] = []
        while self._futures:
            partials.extend(self._futures.popleft().result())
        return self._combine(partials)

    def close(self) -> None:
        if self._futures is not None:
            for future in self._futures:
                future.cancel()
            self._futures = None

    def _detail(self) -> str:
        suffix = ", backend=process" if self.backend is not None else ""
        return f"dop={self.parallelism}, morsels={len(self.morsels)}{suffix}"

    # -- subclass hooks ------------------------------------------------

    def _wrap(self, fragment: Operator) -> Operator:
        raise NotImplementedError

    def _combine(self, partials: list[RecordBatch]) -> RecordBatch | None:
        raise NotImplementedError

    def partial_spec(self) -> PartialSpec:
        """Picklable description of :meth:`_wrap` for worker processes."""
        raise NotImplementedError


class ParallelDistinct(_ParallelBlocking):
    """Duplicate elimination with per-worker partials.

    Workers deduplicate their morsels locally (each morsel's hash set is
    built independently); the gather unions the partial results and runs
    one final deduplication over the — much smaller — union.
    """

    def __init__(
        self,
        fragment_factory: FragmentFactory,
        template: Operator,
        morsels: Sequence[Morsel],
        parallelism: int,
    ):
        super().__init__(fragment_factory, template, morsels, parallelism)
        self._schema = template.schema

    @property
    def schema(self) -> Schema:
        return self._schema

    def _wrap(self, fragment: Operator) -> Operator:
        return Distinct(fragment)

    def _combine(self, partials: list[RecordBatch]) -> RecordBatch | None:
        final = Distinct(BatchSource(self._schema, partials))
        final.open()
        try:
            return final.next_batch()
        finally:
            final.close()

    def partial_spec(self) -> PartialSpec:
        return PartialSpec(kind="distinct")

    def label(self) -> str:
        return f"ParallelDistinct({self._detail()})"


class ParallelSort(_ParallelBlocking):
    """Per-morsel sort plus a balanced k-way merge of the sorted runs."""

    def __init__(
        self,
        fragment_factory: FragmentFactory,
        template: Operator,
        morsels: Sequence[Morsel],
        parallelism: int,
        keys: list[SortKey],
    ):
        super().__init__(fragment_factory, template, morsels, parallelism)
        self.keys = list(keys)
        self._schema = template.schema

    @property
    def schema(self) -> Schema:
        return self._schema

    def _wrap(self, fragment: Operator) -> Operator:
        return Sort(fragment, self.keys)

    def _combine(self, partials: list[RecordBatch]) -> RecordBatch | None:
        if not partials:
            return None
        return merge_sorted_runs(partials, self.keys, self._schema)

    def partial_spec(self) -> PartialSpec:
        return PartialSpec(kind="sort", sort_keys=tuple(self.keys))

    def label(self) -> str:
        keys = ", ".join(str(key) for key in self.keys)
        return f"ParallelSort({keys}; {self._detail()})"


def merge_sorted_runs(
    runs: list[RecordBatch], keys: list[SortKey], schema: Schema
) -> RecordBatch:
    """K-way merge of sorted runs via a balanced tree of 2-way merges.

    Adjacent runs merge pairwise (ties taking the left / earlier run
    first), so the result is exactly what one stable sort of the
    concatenated input would produce — runs must be given in input
    order for that equivalence.
    """
    while len(runs) > 1:
        merged: list[RecordBatch] = []
        for position in range(0, len(runs) - 1, 2):
            merged.append(
                _merge_pair(runs[position], runs[position + 1], keys, schema)
            )
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0]


def _merge_pair(
    left: RecordBatch, right: RecordBatch, keys: list[SortKey], schema: Schema
) -> RecordBatch:
    promote = any(
        batch.column(key.column).has_nulls
        for batch in (left, right)
        for key in keys
    )
    left_keys = merge_keys(left, keys, promote)
    right_keys = merge_keys(right, keys, promote)
    left_positions, right_positions = merge_permutation(left_keys, right_keys)
    columns = {
        field.name: _interleave(
            left.column(field.name),
            right.column(field.name),
            left_positions,
            right_positions,
        )
        for field in schema
    }
    return RecordBatch(schema, columns)


class ParallelAggregate(_ParallelBlocking):
    """Two-phase aggregation: morsel-local partials, one final merge.

    Every worker aggregates its morsels into per-group partial states;
    the gather merges the partials with a second aggregation (COUNT and
    SUM partials merge by summing, MIN/MAX by min/max, AVG carries a
    sum+count pair).  A single COUNT(DISTINCT c) aggregate instead uses
    per-morsel *distinct* partials — the per-worker hash sets are
    unioned at the gather and counted once.
    """

    def __init__(
        self,
        fragment_factory: FragmentFactory,
        template: Operator,
        morsels: Sequence[Morsel],
        parallelism: int,
        group_by: list[str],
        aggregates: list[AggregateSpec],
    ):
        super().__init__(fragment_factory, template, morsels, parallelism)
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        # Validates specs and pins the output schema (same as serial).
        self._schema = HashAggregate(template, group_by, aggregates).schema
        self._distinct_mode = (
            len(self.aggregates) == 1
            and self.aggregates[0].func == "count_distinct"
        )
        if not self._distinct_mode and any(
            spec.func == "count_distinct" for spec in self.aggregates
        ):
            raise PlanError(
                "ParallelAggregate supports count_distinct only as the "
                "sole aggregate; plan a serial aggregate over an Exchange"
            )
        if not self._distinct_mode:
            self._partial_specs, self._final_specs = _two_phase_specs(
                self.aggregates
            )

    @property
    def schema(self) -> Schema:
        return self._schema

    def _wrap(self, fragment: Operator) -> Operator:
        if self._distinct_mode:
            spec = self.aggregates[0]
            columns = list(self.group_by)
            if spec.column not in columns:
                columns.append(spec.column)
            return Distinct(fragment, columns)
        return HashAggregate(fragment, self.group_by, self._partial_specs)

    def _combine(self, partials: list[RecordBatch]) -> RecordBatch | None:
        if not partials:
            # Canonical empty-input result (one row for scalar
            # aggregation, zero rows with GROUP BY) via the serial path.
            final = HashAggregate(
                BatchSource(self.template.schema, []),
                self.group_by,
                self.aggregates,
            )
            return _drain_one(final)
        partial_schema = partials[0].schema
        source = BatchSource(partial_schema, partials)
        if self._distinct_mode:
            merged = _drain_one(
                HashAggregate(source, self.group_by, self.aggregates)
            )
            return RecordBatch(self._schema, merged.columns)
        merged = _drain_one(
            HashAggregate(source, self.group_by, self._final_specs)
        )
        columns: dict[str, ColumnVector] = {
            name: merged.column(name) for name in self.group_by
        }
        for spec in self.aggregates:
            if spec.func == "avg":
                columns[spec.alias] = _finish_avg(
                    merged.column(_sum_alias(spec)),
                    merged.column(_count_alias(spec)),
                )
            else:
                columns[spec.alias] = merged.column(spec.alias)
        return RecordBatch(self._schema, columns)

    def partial_spec(self) -> PartialSpec:
        if self._distinct_mode:
            spec = self.aggregates[0]
            columns = list(self.group_by)
            if spec.column not in columns:
                columns.append(spec.column)
            return PartialSpec(kind="distinct", columns=tuple(columns))
        return PartialSpec(
            kind="agg",
            group_by=tuple(self.group_by),
            aggregates=tuple(self._partial_specs),
        )

    def label(self) -> str:
        keys = ", ".join(self.group_by) if self.group_by else "<global>"
        aggs = ", ".join(
            f"{spec.func}({spec.column or '*'}) AS {spec.alias}"
            for spec in self.aggregates
        )
        strategy = "distinct-partials" if self._distinct_mode else "two-phase"
        return (
            f"ParallelAggregate(by=[{keys}], aggs=[{aggs}], "
            f"{strategy}; {self._detail()})"
        )


def _sum_alias(spec: AggregateSpec) -> str:
    return f"__partial_sum__{spec.alias}"


def _count_alias(spec: AggregateSpec) -> str:
    return f"__partial_count__{spec.alias}"


def _two_phase_specs(
    aggregates: list[AggregateSpec],
) -> tuple[list[AggregateSpec], list[AggregateSpec]]:
    """Partial (worker) and final (merge) specs for two-phase aggregation."""
    partial: list[AggregateSpec] = []
    final: list[AggregateSpec] = []
    for spec in aggregates:
        if spec.func in ("count", "count_star"):
            partial.append(AggregateSpec(spec.func, spec.column, spec.alias))
            final.append(AggregateSpec("sum", spec.alias, spec.alias))
        elif spec.func in ("sum", "min", "max"):
            partial.append(AggregateSpec(spec.func, spec.column, spec.alias))
            final.append(AggregateSpec(spec.func, spec.alias, spec.alias))
        elif spec.func == "avg":
            partial.append(AggregateSpec("sum", spec.column, _sum_alias(spec)))
            partial.append(
                AggregateSpec("count", spec.column, _count_alias(spec))
            )
            final.append(AggregateSpec("sum", _sum_alias(spec), _sum_alias(spec)))
            final.append(
                AggregateSpec("sum", _count_alias(spec), _count_alias(spec))
            )
        else:  # pragma: no cover - guarded in the constructor
            raise PlanError(f"cannot parallelize aggregate {spec.func!r}")
    return partial, final


def _finish_avg(sums: ColumnVector, counts: ColumnVector) -> ColumnVector:
    """AVG from merged sum/count partials (NULL where no valid input)."""
    count_values = counts.values.astype(np.int64)
    empty = count_values == 0
    sum_values = sums.values.astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(empty, 0.0, sum_values / np.maximum(count_values, 1))
    validity = None if not empty.any() else ~empty
    return ColumnVector(DataType.FLOAT64, means, validity)


def _drain_one(operator: Operator) -> RecordBatch:
    """Open a blocking operator, take its single batch, close it."""
    operator.open()
    try:
        batch = operator.next_batch()
    finally:
        operator.close()
    if batch is None:  # pragma: no cover - blocking aggregates always emit
        raise PlanError("blocking operator produced no batch")
    return batch
