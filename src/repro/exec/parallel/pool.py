"""Shared morsel worker pool.

One process-wide :class:`~concurrent.futures.ThreadPoolExecutor` serves
every parallel query, mirroring the single worker pool of morsel-driven
engines (one thread per core, queries share the pool rather than each
spawning threads).  Threads suffice here because the scan/select/filter
kernels are NumPy calls that release the GIL.

The degree of parallelism is resolved once per planner from
``REPRO_THREADS`` (explicit override) or :func:`os.cpu_count`.

The process backend (:mod:`repro.exec.parallel.procpool`) keeps a
sibling worker-*process* pool with the same lazy-grow lifecycle for
fragments routed around the GIL entirely.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

from repro.check.sanitize import make_lock
from repro.errors import PlanError


def default_parallelism() -> int:
    """Worker count from ``REPRO_THREADS``, else the machine's cores."""
    env = os.environ.get("REPRO_THREADS")
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            raise PlanError(f"REPRO_THREADS must be an integer, got {env!r}")
        return max(1, value)
    return os.cpu_count() or 1


_lock = make_lock("exec.parallel.pool")
_pool: ThreadPoolExecutor | None = None
_pool_size = 0


def get_pool(workers: int | None = None) -> ThreadPoolExecutor:
    """The shared worker pool, grown to at least *workers* threads."""
    wanted = workers if workers is not None else default_parallelism()
    wanted = max(1, wanted)
    global _pool, _pool_size
    with _lock:
        if _pool is None or _pool_size < wanted:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=wanted, thread_name_prefix="repro-morsel"
            )
            _pool_size = wanted
        return _pool


def shutdown_pool() -> None:
    """Tear down the shared pool (tests / interpreter shutdown)."""
    global _pool, _pool_size
    with _lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = None
        _pool_size = 0
