"""Worker-process side of the process execution backend.

The coordinator cannot ship live operators across a process boundary —
operators close over :class:`~repro.storage.table.Table` objects whose
columns may be memory-mapped segment files.  Instead the planner
describes a morsel's work as plain picklable *specs*:

- :class:`EngineSnapshot` — which durable data directory to attach and
  the WAL LSN the coordinator planned against (staleness guard);
- :class:`FragmentSpec` — the scan pipeline: table, projected columns,
  optional :class:`PatchSpec` (the PatchIndex rebuilt worker-side from
  shipped per-partition patch rowids — never re-discovered, so
  maintenance drift is preserved exactly), and the Filter/Project chain
  as expression objects (frozen dataclasses, picklable);
- :class:`PartialSpec` — the per-morsel partial operator the parallel
  terminal would have wrapped the fragment with on the thread path
  (distinct set, sorted run, two-phase aggregate partial, or nothing);
- :class:`MorselTask` — one unit of work: the above plus the morsel's
  global rowid ranges and the shm block name to ship results under.

:func:`run_morsel_task` is the pool entrypoint (module-level, so it is
importable under the ``spawn`` start method).  Each worker process
attaches the engine once per snapshot and caches the resulting tables:
the attach memory-maps checkpointed segment columns zero-copy
(``mmap=True`` engines) and deterministically replays the WAL data tail,
so worker tables are byte-identical to the coordinator's.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.constraints import ConstraintKind
from repro.core.patch_index import PatchIndex
from repro.core.patches import PatchSet
from repro.exec.operators.aggregate import AggregateSpec, HashAggregate
from repro.exec.operators.base import Operator
from repro.exec.operators.distinct import Distinct
from repro.exec.operators.filter import Filter
from repro.exec.operators.patch_select import PatchSelect, PatchSelectMode
from repro.exec.operators.project import Project
from repro.exec.operators.scan import TableScan
from repro.exec.operators.sort import Sort, SortKey
from repro.exec.parallel.shm import encode
from repro.storage.table import Table


@dataclass(frozen=True)
class EngineSnapshot:
    """Identity of the durable state one parallel query plans against."""

    root: str
    mmap: bool
    #: The coordinator WAL's last LSN at planning time.  A worker whose
    #: attach sees a different tail refuses (the coordinator falls back
    #: to serial execution) rather than compute on divergent data.
    wal_lsn: int


@dataclass(frozen=True)
class PatchSpec:
    """A PatchIndex shipped by value: per-partition patch rowids.

    The rowids come from the coordinator's *live* index (including
    maintenance drift), serialized as raw little-endian int64 bytes per
    partition — the worker rebuilds the patch sets directly instead of
    re-running discovery.
    """

    name: str
    kind: str
    column: str
    design: str
    threshold: float
    ascending: bool
    strict: bool
    scope: str
    use_patches: bool
    #: One ``int64.tobytes()`` blob of partition-local rowids per
    #: partition, in partition order.
    partition_rowids: tuple[bytes, ...]


@dataclass(frozen=True)
class OpSpec:
    """One Filter or Project level of the fragment, innermost first."""

    kind: str  # "filter" | "project"
    predicate: Any = None
    outputs: tuple[tuple[str, Any], ...] | None = None


@dataclass(frozen=True)
class FragmentSpec:
    """The scan pipeline a fragment factory would build, as data."""

    table: str
    columns: tuple[str, ...] | None
    with_tid: bool
    batch_size: int
    patch: PatchSpec | None
    ops: tuple[OpSpec, ...]


@dataclass(frozen=True)
class PartialSpec:
    """The per-morsel partial wrap of a parallel terminal, as data.

    Mirrors the ``_wrap`` hooks of the thread-path terminals: the worker
    applies the same partial operator the coordinator's gather expects
    to combine (``none`` for a plain Exchange).
    """

    kind: str = "none"  # "none" | "distinct" | "sort" | "agg"
    #: Distinct key columns; ``None`` deduplicates full rows.
    columns: tuple[str, ...] | None = None
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    sort_keys: tuple[SortKey, ...] = ()


@dataclass(frozen=True)
class MorselTask:
    """One worker task: a fragment restricted to one morsel's ranges."""

    snapshot: EngineSnapshot
    fragment: FragmentSpec
    partial: PartialSpec
    ranges: tuple[tuple[int, int], ...]
    shm_name: str
    #: Test-only failure injection ("exit" | "unpicklable-error").
    fault: str | None = None


# One attached table set per engine snapshot, reused across the queries
# this worker process serves.  Workers are single-threaded, so plain
# dict access is safe; the small cap bounds mmap handles when tests
# churn through many temporary databases.
_TABLE_CACHE: dict[EngineSnapshot, dict[str, Table]] = {}
_TABLE_CACHE_LIMIT = 4


def _tables_for(snapshot: EngineSnapshot) -> dict[str, Table]:
    tables = _TABLE_CACHE.get(snapshot)
    if tables is None:
        from repro.storage.cache import process_cache
        from repro.storage.engine import DurableEngine

        # All snapshots share one per-process block cache: generation
        # keys keep entries from different checkpoints apart, and the
        # tail replay materializes mutated partitions, so a stale block
        # can never be served (decode happens worker-side, off the
        # memory-mapped encoded payload).
        engine = DurableEngine(
            snapshot.root,
            mmap=snapshot.mmap,
            sync=False,
            cache=process_cache(),
        )
        tables = engine.attach_tables(expected_lsn=snapshot.wal_lsn)
        while len(_TABLE_CACHE) >= _TABLE_CACHE_LIMIT:
            _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
        _TABLE_CACHE[snapshot] = tables
    return tables


def _build_index(spec: PatchSpec, table: Table) -> PatchIndex:
    patch_sets = [
        PatchSet.build(
            np.frombuffer(raw, dtype=np.int64), partition.row_count, spec.design
        )
        for raw, partition in zip(spec.partition_rowids, table.partitions)
    ]
    return PatchIndex(
        spec.name,
        table,
        spec.column,
        ConstraintKind.from_name(spec.kind),
        patch_sets,
        threshold=spec.threshold,
        ascending=spec.ascending,
        strict=spec.strict,
        scope=spec.scope,
        provenance="worker",
    )


def build_fragment(
    fragment: FragmentSpec,
    partial: PartialSpec,
    table: Table,
    ranges: list[tuple[int, int]],
) -> tuple[Operator, PatchIndex | None]:
    """Reconstruct one morsel's operator tree from its specs.

    Returns the tree plus the rebuilt PatchIndex (if any) so the caller
    can detach its table listener afterwards — worker tables are cached
    across tasks and must not accumulate listeners.
    """
    operator: Operator = TableScan(
        table,
        list(fragment.columns) if fragment.columns is not None else None,
        scan_ranges=ranges,
        with_tid=fragment.with_tid,
        batch_size=fragment.batch_size,
    )
    index: PatchIndex | None = None
    if fragment.patch is not None:
        index = _build_index(fragment.patch, table)
        mode = (
            PatchSelectMode.USE_PATCHES
            if fragment.patch.use_patches
            else PatchSelectMode.EXCLUDE_PATCHES
        )
        operator = PatchSelect(operator, index, mode)
    for op in fragment.ops:
        if op.kind == "filter":
            operator = Filter(operator, op.predicate)
        else:
            operator = Project(operator, list(op.outputs or ()))
    if partial.kind == "distinct":
        operator = Distinct(
            operator,
            list(partial.columns) if partial.columns is not None else None,
        )
    elif partial.kind == "sort":
        operator = Sort(operator, list(partial.sort_keys))
    elif partial.kind == "agg":
        operator = HashAggregate(
            operator, list(partial.group_by), list(partial.aggregates)
        )
    return operator, index


def run_morsel_task(task: MorselTask) -> dict[str, Any]:
    """Pool entrypoint: attach, execute one morsel, ship the partials."""
    if task.fault == "exit":
        os._exit(17)
    started = time.perf_counter()
    tables = _tables_for(task.snapshot)
    operator, index = build_fragment(
        task.fragment, task.partial, tables[task.fragment.table], list(task.ranges)
    )
    try:
        operator.open()
        try:
            batches = []
            while True:
                batch = operator.next_batch()
                if batch is None:
                    break
                if len(batch):
                    batches.append(batch)
        finally:
            operator.close()
    finally:
        if index is not None:
            index.detach()
    if task.fault == "unpicklable-error":
        # A dynamically created exception class cannot be pickled back
        # through the pool's result queue (OOM/corruption stand-in).
        raise type("UnpicklableWorkerError", (RuntimeError,), {})("injected")
    payload = encode(batches, task.shm_name)
    payload["pid"] = os.getpid()
    payload["started_s"] = started
    payload["busy_s"] = time.perf_counter() - started
    return payload


__all__ = [
    "EngineSnapshot",
    "FragmentSpec",
    "MorselTask",
    "OpSpec",
    "PartialSpec",
    "PatchSpec",
    "build_fragment",
    "run_morsel_task",
]
