"""Morsel dispatch: split a table scan into parallel work units.

A *morsel* is a small set of contiguous global rowid ranges that one
worker processes as a unit.  Morsels obey the invariants the
PatchSelect operator depends on:

- a morsel never crosses a partition boundary, so batch rowids stay
  contiguous tuple identifiers within each fragment (paper §VI-A1);
- morsel boundaries fall between rowids, never inside one — every
  rowid of the covered ranges lands in exactly one morsel;
- range boundaries align to the block grid where possible
  (:meth:`repro.storage.partition.Partition.morsel_ranges`), keeping
  the per-block min/max sketches usable inside fragments.

When scan-range pruning already restricted the scan, morsels are carved
from the *surviving* ranges only; several small pruned ranges within a
partition coalesce into one morsel so dispatch overhead tracks real row
counts, not range counts.

Morsels are backend-neutral: the same ranges drive thread-pool fragments
and process-backend :class:`~repro.exec.parallel.worker.MorselTask`
specs, so thread and process plans cover identical row sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.operators.scan import normalize_ranges
from repro.storage.table import Table

#: Target rows per morsel.  Large enough that the per-morsel dispatch
#: cost (one pool task, one operator-tree instantiation) is amortized
#: over many 16K-row batches, small enough that a handful of workers
#: load-balance a multi-million-row scan.
DEFAULT_MORSEL_SIZE = 1 << 18


@dataclass(frozen=True)
class Morsel:
    """One parallel work unit: ordered disjoint global rowid ranges."""

    ranges: tuple[tuple[int, int], ...]

    @property
    def rows(self) -> int:
        return sum(stop - start for start, stop in self.ranges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Morsel(ranges={len(self.ranges)}, rows={self.rows})"


def morsels_for_table(
    table: Table,
    scan_ranges: list[tuple[int, int]] | None = None,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
) -> list[Morsel]:
    """Split a table's (possibly range-restricted) scan into morsels.

    The returned morsels cover exactly the rowids of *scan_ranges*
    (the whole table when ``None``), in ascending rowid order, with
    every covered rowid in exactly one morsel.
    """
    requested = normalize_ranges(
        list(scan_ranges) if scan_ranges is not None else None,
        table.row_count,
    )
    if requested is None:
        requested = [(0, table.row_count)]
    morsels: list[Morsel] = []
    for partition in table.partitions:
        p_start, __ = partition.rowid_range
        pending: list[tuple[int, int]] = []
        pending_rows = 0
        for local_lo, local_hi in partition.morsel_ranges(morsel_size):
            chunk_lo = p_start + local_lo
            chunk_hi = p_start + local_hi
            for r_lo, r_hi in requested:
                lo = max(chunk_lo, r_lo)
                hi = min(chunk_hi, r_hi)
                if lo >= hi:
                    continue
                if pending and pending[-1][1] == lo:
                    pending[-1] = (pending[-1][0], hi)
                else:
                    pending.append((lo, hi))
                pending_rows += hi - lo
                if pending_rows >= morsel_size:
                    morsels.append(Morsel(tuple(pending)))
                    pending = []
                    pending_rows = 0
        # Flush the partition's remainder: morsels never span partitions.
        if pending:
            morsels.append(Morsel(tuple(pending)))
    return morsels


def validate_morsels(morsels: list[Morsel], table: Table | None = None) -> None:
    """Check the morsel invariants this module promises.

    The plan verifier calls this on every Exchange / parallel-terminal
    boundary: morsel ranges must be ascending and disjoint, consecutive
    morsels must stay in ascending rowid order (the ordered gather in
    :class:`~repro.exec.parallel.exchange.Exchange` equates submission
    order with rowid order), and — when *table* is known — no morsel may
    cross a partition boundary, which is what keeps batch rowids usable
    as tuple identifiers inside a fragment's PatchSelect.

    Raises :class:`~repro.errors.PlanInvariantError` (rule
    ``exchange-ordering``) on the first violation.
    """
    from repro.errors import PlanInvariantError

    previous_stop = None
    for number, morsel in enumerate(morsels):
        if not morsel.ranges:
            raise PlanInvariantError(
                "exchange-ordering", f"morsel {number} has no ranges"
            )
        for start, stop in morsel.ranges:
            if start >= stop:
                raise PlanInvariantError(
                    "exchange-ordering",
                    f"morsel {number} has empty/inverted range "
                    f"[{start}, {stop})",
                )
            if previous_stop is not None and start < previous_stop:
                raise PlanInvariantError(
                    "exchange-ordering",
                    f"morsel {number} range [{start}, {stop}) overlaps or "
                    f"precedes rowid {previous_stop}; morsels must be "
                    "disjoint and ascending for the ordered gather",
                )
            previous_stop = stop
        if table is not None:
            lo = morsel.ranges[0][0]
            hi = morsel.ranges[-1][1]
            if hi > table.row_count:
                raise PlanInvariantError(
                    "exchange-ordering",
                    f"morsel {number} exceeds table "
                    f"{table.name!r} ({hi} > {table.row_count} rows)",
                )
            partition = table.partition_of_rowid(lo)
            p_start, p_stop = partition.rowid_range
            if hi > p_stop:
                raise PlanInvariantError(
                    "exchange-ordering",
                    f"morsel {number} spans partition boundary at rowid "
                    f"{p_stop} of table {table.name!r}; batch rowids would "
                    "stop being contiguous tuple identifiers",
                )
