"""Process-backed morsel execution: shared pool, transport, recovery.

The process backend sidesteps the GIL for the fragment work the thread
pool cannot scale (hashing, per-row Python dispatch): a persistent
:class:`~concurrent.futures.ProcessPoolExecutor` — lazily created,
reused across queries, grown on demand like the thread pool in
:mod:`repro.exec.parallel.pool` — runs
:func:`~repro.exec.parallel.worker.run_morsel_task` per morsel, and the
results come back through shared memory (:mod:`repro.exec.parallel.shm`)
with a pickle fallback for small or ragged payloads.

Two environment knobs:

- ``REPRO_PARALLEL_BACKEND`` — ``thread`` | ``process`` | ``auto``
  (default ``auto``): the planner's default backend choice.
- ``REPRO_PARALLEL_START_METHOD`` — ``fork`` | ``spawn`` (default:
  ``fork`` where available): how worker processes are started.  The
  worker entrypoint and every task spec are importable/picklable, so
  both methods behave identically; ``spawn`` is slower to warm up but
  immune to fork-unsafe parent state.

Failure containment: a worker dying mid-query (killed, OOM) breaks the
whole executor — every pending future raises ``BrokenProcessPool``
rather than hanging.  Each task handle then unlinks the task's shm block
by its deterministic name, retries the morsel *serially* on the
coordinator thread with the operator's local fragment factory, bumps the
``parallel.worker_failures`` / ``parallel.serial_retries`` counters, and
the broken pool is replaced so the next query starts clean.  Genuine
query errors (bad expressions) reproduce in the serial retry and
propagate normally.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Sequence

from repro.check.sanitize import make_lock
from repro.errors import PlanError
from repro.exec.batch import RecordBatch
from repro.exec.parallel.exchange import FragmentFactory, run_fragment
from repro.exec.parallel.pool import default_parallelism
from repro.exec.parallel.shm import decode, unlink_block
from repro.exec.parallel.worker import (
    EngineSnapshot,
    FragmentSpec,
    MorselTask,
    PartialSpec,
    run_morsel_task,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.parallel.morsels import Morsel
    from repro.obs.metrics import MetricsRegistry

BACKENDS = ("thread", "process", "auto")

#: Test hook: when set ("exit" | "unpicklable-error"), every submitted
#: task carries the fault and the worker fails accordingly.
FAULT_INJECTION: str | None = None


def default_backend() -> str:
    """Backend from ``REPRO_PARALLEL_BACKEND``, default ``auto``."""
    env = os.environ.get("REPRO_PARALLEL_BACKEND")
    if env is None:
        return "auto"
    value = env.strip().lower()
    if value not in BACKENDS:
        raise PlanError(
            "REPRO_PARALLEL_BACKEND must be thread, process or auto, "
            f"got {env!r}"
        )
    return value


def start_method() -> str:
    """Start method from ``REPRO_PARALLEL_START_METHOD`` (default fork)."""
    available = multiprocessing.get_all_start_methods()
    env = os.environ.get("REPRO_PARALLEL_START_METHOD")
    if env is not None:
        value = env.strip().lower()
        if value not in available:
            raise PlanError(
                f"REPRO_PARALLEL_START_METHOD {env!r} is not available "
                f"on this platform (choose from {', '.join(available)})"
            )
        return value
    return "fork" if "fork" in available else "spawn"


_lock = make_lock("exec.parallel.procpool")
_pool: ProcessPoolExecutor | None = None
_pool_size = 0
_pool_method: str | None = None
_task_seq = 0


def get_process_pool(workers: int | None = None) -> ProcessPoolExecutor:
    """The shared worker-process pool, grown to at least *workers*."""
    wanted = workers if workers is not None else default_parallelism()
    wanted = max(1, wanted)
    method = start_method()
    global _pool, _pool_size, _pool_method
    with _lock:
        if _pool is None or _pool_size < wanted or _pool_method != method:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ProcessPoolExecutor(
                max_workers=wanted,
                mp_context=multiprocessing.get_context(method),
            )
            _pool_size = wanted
            _pool_method = method
        return _pool


def reset_process_pool() -> None:
    """Discard the pool (broken-pool recovery); rebuilt lazily."""
    global _pool, _pool_size, _pool_method
    with _lock:
        if _pool is not None:
            _pool.shutdown(wait=False)
        _pool = None
        _pool_size = 0
        _pool_method = None


def shutdown_process_pool() -> None:
    """Tear down the shared pool (tests / interpreter shutdown)."""
    global _pool, _pool_size, _pool_method
    with _lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = None
        _pool_size = 0
        _pool_method = None


def _next_shm_name() -> str:
    """Deterministic per-task shm name the coordinator can clean up."""
    global _task_seq
    with _lock:
        _task_seq += 1
        seq = _task_seq
    return f"repro_{os.getpid()}_{seq}"


class ProcessTransport:
    """Per-operator bridge between an Exchange/terminal and the pool.

    The planner attaches one instance (carrying the engine snapshot and
    the fragment/partial specs) to each parallel operator it routes to
    the process backend; the operator's ``open`` then calls
    :meth:`submit_all` instead of submitting thread tasks.
    """

    def __init__(
        self,
        snapshot: EngineSnapshot,
        fragment: FragmentSpec,
        parallelism: int,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.snapshot = snapshot
        self.fragment = fragment
        #: Set by the planner from the operator's ``partial_spec()``.
        self.partial = PartialSpec()
        self.parallelism = parallelism
        self.metrics = metrics

    def submit_all(
        self,
        morsels: Sequence["Morsel"],
        local_factory: FragmentFactory,
        obs: Any,
    ) -> list["_TaskHandle"]:
        """Submit every morsel; returns gather handles in morsel order.

        *local_factory* is the operator's thread-path fragment factory
        (with the partial wrap applied for terminals) — used only for
        the serial retry after a worker failure, so failures keep the
        exact thread-path semantics.
        """
        pool = get_process_pool(self.parallelism)
        handles: list[_TaskHandle] = []
        for morsel in morsels:
            shm_name = _next_shm_name()
            task = MorselTask(
                self.snapshot,
                self.fragment,
                self.partial,
                tuple(morsel.ranges),
                shm_name,
                FAULT_INJECTION,
            )
            try:
                future: Future = pool.submit(run_morsel_task, task)
            except RuntimeError:
                # The shared pool broke under an earlier query and was
                # not replaced yet; rebuild once and resubmit.
                reset_process_pool()
                pool = get_process_pool(self.parallelism)
                future = pool.submit(run_morsel_task, task)
            handles.append(
                _TaskHandle(
                    self, morsel, local_factory, future, shm_name, obs
                )
            )
        return handles

    def _note_failure(self, broken: bool) -> None:
        if self.metrics is not None:
            self.metrics.counter("parallel.worker_failures").inc()
            self.metrics.counter("parallel.serial_retries").inc()
        if broken:
            reset_process_pool()


class _TaskHandle:
    """Future-like gather handle: decode on success, retry on failure."""

    def __init__(
        self,
        transport: ProcessTransport,
        morsel: "Morsel",
        local_factory: FragmentFactory,
        future: Future,
        shm_name: str,
        obs: Any,
    ):
        self._transport = transport
        self._morsel = morsel
        self._local_factory = local_factory
        self._future = future
        self._shm_name = shm_name
        self._obs = obs
        self._submitted = time.perf_counter()

    def result(self) -> list[RecordBatch]:
        try:
            payload = self._future.result()
            batches = decode(payload)
        except Exception as exc:
            # Worker death (BrokenProcessPool), an unpicklable worker
            # error, or a genuine query error: clean up the task's shm
            # block and rerun the morsel serially.  Real query errors
            # reproduce here and propagate with their true type.
            unlink_block(self._shm_name)
            self._transport._note_failure(isinstance(exc, BrokenExecutor))
            return run_fragment(self._local_factory, self._morsel)
        if self._obs is not None:
            wait = max(
                0.0, float(payload["started_s"]) - self._submitted
            )
            self._obs.record_remote(
                int(payload["pid"]),
                float(payload["busy_s"]),
                wait,
                int(payload.get("shm_bytes", 0)),
            )
        return batches

    def cancel(self) -> bool:
        if self._future.cancel():
            return True
        # Already running or finished: reap the shm block whenever the
        # task completes so an early plan close cannot leak it.
        self._future.add_done_callback(self._reap)
        return False

    def _reap(self, future: Future) -> None:
        try:
            future.result()
        except Exception:
            pass
        unlink_block(self._shm_name)
