"""Shared-memory morsel transport for the process execution backend.

A worker process ships its partial results (selected batches, distinct
sets, aggregate partials, sorted runs) back to the coordinator through
one :class:`multiprocessing.shared_memory.SharedMemory` block per morsel
task, laid out as a compact header-free concatenation of the batches'
NumPy buffers:

- every fixed-width array (column values, validity masks, rowids) is
  written contiguously at a 64-byte aligned offset, in a deterministic
  walk order (per batch: columns in schema order, each followed by its
  validity mask if present, then the batch's rowids if present);
- the *description* of that layout — the schema object plus per-batch
  dtype strings and element counts — travels in the small pickled result
  dict the pool returns anyway, so the block itself needs no header.

Pickle remains the fallback for payloads shared memory cannot carry or
is not worth setting up for: any object-dtype (string) column, empty
results, and payloads under :data:`SHM_MIN_BYTES` (a block costs two
syscalls plus an mmap on each side — for a few KB of aggregate partials
plain pickling through the result queue is cheaper).

Blocks are created by the *worker* under a deterministic name chosen by
the coordinator (``repro_<coordinator pid>_<task seq>``), so the
coordinator can always clean up — including after a worker died mid-task
— without any side channel.  The creating worker detaches the block from
Python's ``resource_tracker`` right away (3.11 has no ``track=False``
yet): the tracker would otherwise unlink blocks when the *worker* exits,
while ownership here lives with the coordinator, which unlinks after
decoding.  Attaching never registers, so the coordinator side has
nothing to detach.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.check.sanitize import release_resource, track_resource
from repro.exec.batch import RecordBatch
from repro.storage.column import ColumnVector

#: Payloads below this many buffer bytes travel pickled instead.
SHM_MIN_BYTES = 32 * 1024

#: Offset alignment for every array written into a block.
ALIGNMENT = 64


def _untrack(block: shared_memory.SharedMemory) -> None:
    """Detach *block* from the resource tracker (see module docstring)."""
    try:
        resource_tracker.unregister(block._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def create_block(name: str, size: int) -> shared_memory.SharedMemory:
    """Create (worker side) the block *name*, replacing a stale one."""
    try:
        block = shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        # A crashed earlier run left a block under this name behind.
        unlink_block(name)
        block = shared_memory.SharedMemory(name=name, create=True, size=size)
    _untrack(block)
    # The sanitizer's per-process ledger: workers see their creates,
    # the coordinator its unlinks; cross-process balance is proven by
    # the /dev/shm scan in repro.check.sanitize.leaked_shm_segments.
    track_resource("shm_segment", name)
    return block


def attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach (coordinator side) to the block a worker created.

    Attaching never registers with the resource tracker (only
    ``create=True`` does), and the worker already unregistered its
    creation — so no ``_untrack`` here: unregistering a name the
    tracker does not hold makes the tracker process print a KeyError
    traceback.
    """
    return shared_memory.SharedMemory(name=name)


def unlink_block(name: str) -> bool:
    """Best-effort removal of a block by name; True when it existed."""
    try:
        block = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        block.close()
        block.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a race
        return False
    release_resource("shm_segment", name)
    return True


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


def _plan(batches: list[RecordBatch]) -> tuple[dict, list[np.ndarray], int] | None:
    """Layout plan for *batches*, or None when shm cannot carry them."""
    if not batches:
        return None
    schema = batches[0].schema
    arrays: list[np.ndarray] = []
    described: list[dict] = []
    total = 0

    def push(array: np.ndarray) -> None:
        nonlocal total
        arrays.append(array)
        total = _aligned(total) + array.nbytes

    for batch in batches:
        columns: list[dict] = []
        for field in schema:
            vector = batch.column(field.name)
            if vector.values.dtype == np.dtype(object):
                return None  # ragged (string) payloads travel pickled
            push(np.ascontiguousarray(vector.values))
            columns.append(
                {
                    "dtype": vector.values.dtype.str,
                    "count": len(vector.values),
                    "validity": vector.validity is not None,
                }
            )
            if vector.validity is not None:
                push(np.ascontiguousarray(vector.validity))
        rowids = None
        if batch.rowids is not None:
            push(np.ascontiguousarray(batch.rowids))
            rowids = {"dtype": batch.rowids.dtype.str, "count": len(batch.rowids)}
        described.append({"columns": columns, "rowids": rowids})
    return {"schema": schema, "batches": described}, arrays, total


def encode(batches: list[RecordBatch], shm_name: str) -> dict[str, Any]:
    """Worker side: ship *batches* via shm, or pickled when cheaper.

    Returns the (picklable) payload dict the coordinator's
    :func:`decode` understands.  On the shm path the block named
    *shm_name* is created, filled, and left for the coordinator to
    unlink.
    """
    plan = _plan(batches)
    if plan is None or plan[2] < SHM_MIN_BYTES:
        return {"transport": "pickle", "data": batches, "shm_bytes": 0}
    meta, arrays, total = plan
    block = create_block(shm_name, total)
    try:
        offset = 0
        for array in arrays:
            offset = _aligned(offset)
            destination = np.frombuffer(
                block.buf, dtype=array.dtype, count=array.size, offset=offset
            )
            destination[:] = array
            offset += array.nbytes
        del destination  # release the buffer view before close()
    finally:
        block.close()
    return {
        "transport": "shm",
        "shm": shm_name,
        "meta": meta,
        "shm_bytes": total,
    }


def decode(payload: dict[str, Any]) -> list[RecordBatch]:
    """Coordinator side: rebuild the batches and unlink the shm block."""
    if payload["transport"] == "pickle":
        return list(payload["data"])
    block = attach_block(payload["shm"])
    try:
        return _read_batches(payload["meta"], block.buf)
    finally:
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - already collected
            pass
        else:
            release_resource("shm_segment", payload["shm"])


def _read_batches(meta: dict[str, Any], buf: memoryview) -> list[RecordBatch]:
    schema = meta["schema"]
    offset = 0
    batches: list[RecordBatch] = []

    def read(dtype: str, count: int) -> tuple[np.ndarray, int]:
        nonlocal offset
        offset = _aligned(offset)
        # Copy out: the block is unlinked as soon as decoding finishes.
        array = np.frombuffer(
            buf, dtype=np.dtype(dtype), count=count, offset=offset
        ).copy()
        offset += array.nbytes
        return array, offset

    for entry in meta["batches"]:
        columns: dict[str, ColumnVector] = {}
        for described, field in zip(entry["columns"], schema):
            values, offset = read(described["dtype"], described["count"])
            validity = None
            if described["validity"]:
                validity, offset = read("|b1", described["count"])
            columns[field.name] = ColumnVector(field.dtype, values, validity)
        rowids = None
        if entry["rowids"] is not None:
            rowids, offset = read(
                entry["rowids"]["dtype"], entry["rowids"]["count"]
            )
        batches.append(RecordBatch(schema, columns, rowids=rowids))
    return batches
