"""Morsel-driven parallel execution (paper §VI context: Actian Vector's
parallel scan infrastructure, realized here as worker pools over
contiguous rowid morsels).

Components:

- :mod:`~repro.exec.parallel.pool` — the shared thread pool and the
  ``REPRO_THREADS`` / CPU-count parallelism default;
- :mod:`~repro.exec.parallel.morsels` — the morsel dispatcher splitting
  (range-restricted) scans into partition/block-aligned work units;
- :mod:`~repro.exec.parallel.exchange` — the Exchange scatter/gather
  operator running a pipeline fragment per morsel;
- :mod:`~repro.exec.parallel.terminals` — parallel-aware blocking
  operators (distinct, two-phase aggregation, sort + k-way merge);
- :mod:`~repro.exec.parallel.procpool` — the process execution backend
  (``REPRO_PARALLEL_BACKEND``): a persistent worker-process pool plus
  the per-operator transport with serial-retry failure recovery;
- :mod:`~repro.exec.parallel.worker` — the picklable fragment/partial
  specs and the worker-process entrypoint attaching mmap'd segments;
- :mod:`~repro.exec.parallel.shm` — the shared-memory result transport
  with its pickle fallback for small or ragged payloads.
"""

from repro.exec.parallel.exchange import BatchSource, Exchange
from repro.exec.parallel.morsels import (
    DEFAULT_MORSEL_SIZE,
    Morsel,
    morsels_for_table,
    validate_morsels,
)
from repro.exec.parallel.pool import (
    default_parallelism,
    get_pool,
    shutdown_pool,
)
from repro.exec.parallel.procpool import (
    ProcessTransport,
    default_backend,
    get_process_pool,
    reset_process_pool,
    shutdown_process_pool,
    start_method,
)
from repro.exec.parallel.terminals import (
    ParallelAggregate,
    ParallelDistinct,
    ParallelSort,
    merge_sorted_runs,
)
from repro.exec.parallel.worker import (
    EngineSnapshot,
    FragmentSpec,
    MorselTask,
    OpSpec,
    PartialSpec,
    PatchSpec,
    run_morsel_task,
)

__all__ = [
    "BatchSource",
    "Exchange",
    "DEFAULT_MORSEL_SIZE",
    "Morsel",
    "morsels_for_table",
    "validate_morsels",
    "default_parallelism",
    "get_pool",
    "shutdown_pool",
    "ProcessTransport",
    "default_backend",
    "get_process_pool",
    "reset_process_pool",
    "shutdown_process_pool",
    "start_method",
    "ParallelAggregate",
    "ParallelDistinct",
    "ParallelSort",
    "merge_sorted_runs",
    "EngineSnapshot",
    "FragmentSpec",
    "MorselTask",
    "OpSpec",
    "PartialSpec",
    "PatchSpec",
    "run_morsel_task",
]
