"""Morsel-driven parallel execution (paper §VI context: Actian Vector's
parallel scan infrastructure, realized here as a thread pool over
contiguous rowid morsels).

Components:

- :mod:`~repro.exec.parallel.pool` — the shared worker pool and the
  ``REPRO_THREADS`` / CPU-count parallelism default;
- :mod:`~repro.exec.parallel.morsels` — the morsel dispatcher splitting
  (range-restricted) scans into partition/block-aligned work units;
- :mod:`~repro.exec.parallel.exchange` — the Exchange scatter/gather
  operator running a pipeline fragment per morsel;
- :mod:`~repro.exec.parallel.terminals` — parallel-aware blocking
  operators (distinct, two-phase aggregation, sort + k-way merge).
"""

from repro.exec.parallel.exchange import BatchSource, Exchange
from repro.exec.parallel.morsels import (
    DEFAULT_MORSEL_SIZE,
    Morsel,
    morsels_for_table,
    validate_morsels,
)
from repro.exec.parallel.pool import (
    default_parallelism,
    get_pool,
    shutdown_pool,
)
from repro.exec.parallel.terminals import (
    ParallelAggregate,
    ParallelDistinct,
    ParallelSort,
    merge_sorted_runs,
)

__all__ = [
    "BatchSource",
    "Exchange",
    "DEFAULT_MORSEL_SIZE",
    "Morsel",
    "morsels_for_table",
    "validate_morsels",
    "default_parallelism",
    "get_pool",
    "shutdown_pool",
    "ParallelAggregate",
    "ParallelDistinct",
    "ParallelSort",
    "merge_sorted_runs",
]
