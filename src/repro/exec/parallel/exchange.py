"""Exchange: morsel-driven scatter/gather over a pipeline fragment.

The Exchange operator is the parallel engine's only source of
concurrency: it instantiates the scan→PatchSelect→filter/project
fragment once per morsel, runs the fragments on the shared worker pool,
and re-emits their batches downstream on the caller's thread.

Gather order is *morsel submission order* — morsels are created in
ascending rowid order, so the Exchange's output batch stream is exactly
the serial scan's stream.  Parallel plans therefore return byte-identical
results to serial plans wherever the serial plan's order was
deterministic, and downstream operators (MergeJoin's streaming side, the
NSC MergeUnion's presorted exclude branch) keep their order assumptions
for free.

Fragments hold no shared mutable state: each morsel gets its own
operator instances, and the storage they read (column vectors, patch
sets) is immutable during query execution.  The fragment kernels are
NumPy calls that release the GIL, which is what makes thread-based
morsel parallelism yield real wall-clock speedups.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Sequence

from repro.errors import PlanError
from repro.exec.batch import RecordBatch
from repro.exec.operators.base import Operator
from repro.exec.parallel.morsels import Morsel
from repro.exec.parallel.pool import get_pool
from repro.exec.parallel.worker import PartialSpec
from repro.storage.schema import Schema

#: Builds one pipeline-fragment operator restricted to the given
#: global rowid ranges (one morsel's worth of the scan).
FragmentFactory = Callable[[list[tuple[int, int]]], Operator]


class BatchSource(Operator):
    """Leaf operator replaying a fixed list of materialized batches."""

    def __init__(self, schema: Schema, batches: Sequence[RecordBatch]):
        self._schema = schema
        self.batches = list(batches)
        self._position = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> list[Operator]:
        return []

    def open(self) -> None:
        self._position = 0

    def next_batch(self) -> RecordBatch | None:
        if self._position >= len(self.batches):
            return None
        batch = self.batches[self._position]
        self._position += 1
        return batch

    def label(self) -> str:
        return f"BatchSource({len(self.batches)} batches)"


def run_fragment(factory: FragmentFactory, morsel: Morsel) -> list[RecordBatch]:
    """Worker task: build, drain and close one morsel's fragment."""
    fragment = factory(list(morsel.ranges))
    fragment.open()
    try:
        batches: list[RecordBatch] = []
        while True:
            batch = fragment.next_batch()
            if batch is None:
                return batches
            if len(batch):
                batches.append(batch)
    finally:
        fragment.close()


class Exchange(Operator):
    """Run a pipeline fragment per morsel on the pool; gather in order."""

    def __init__(
        self,
        fragment_factory: FragmentFactory,
        template: Operator,
        morsels: Sequence[Morsel],
        parallelism: int,
    ):
        if parallelism < 1:
            raise PlanError("Exchange parallelism must be >= 1")
        self.fragment_factory = fragment_factory
        #: Unopened fragment instance used for schema and EXPLAIN only.
        self.template = template
        self.morsels = list(morsels)
        self.parallelism = parallelism
        #: Pool observation hook (duck-typed — the profiler installs a
        #: ``repro.obs.profile.ParallelObs``).  ``None`` means submit
        #: directly with zero accounting.
        self.obs = None
        #: Execution backend: ``None`` runs morsels on the shared thread
        #: pool; the planner attaches a
        #: :class:`~repro.exec.parallel.procpool.ProcessTransport` to
        #: route them to worker processes instead.
        self.backend: Any = None
        self._futures: deque[Any] | None = None
        self._pending: deque[RecordBatch] = deque()

    @property
    def schema(self) -> Schema:
        return self.template.schema

    def children(self) -> list[Operator]:
        return [self.template]

    def open(self) -> None:
        # Note: the template stays closed — workers build their own
        # fragments.  All morsels are submitted up front; the pool's
        # worker count bounds actual concurrency.
        if self.backend is not None:
            self._futures = deque(
                self.backend.submit_all(
                    self.morsels, self.fragment_factory, self.obs
                )
            )
            self._pending = deque()
            return
        pool = get_pool(self.parallelism)
        if self.obs is None:
            self._futures = deque(
                pool.submit(run_fragment, self.fragment_factory, morsel)
                for morsel in self.morsels
            )
        else:
            self._futures = deque(
                self.obs.submit(pool, self.fragment_factory, morsel)
                for morsel in self.morsels
            )
        self._pending = deque()

    def next_batch(self) -> RecordBatch | None:
        if self._futures is None:
            raise PlanError("exchange used before open()")
        while not self._pending:
            if not self._futures:
                return None
            self._pending.extend(self._futures.popleft().result())
        return self._pending.popleft()

    def close(self) -> None:
        if self._futures is not None:
            for future in self._futures:
                future.cancel()
            self._futures = None
        self._pending = deque()

    def partial_spec(self) -> PartialSpec:
        """Worker-side partial wrap for the process backend (none)."""
        return PartialSpec()

    def label(self) -> str:
        suffix = ", backend=process" if self.backend is not None else ""
        return (
            f"Exchange(dop={self.parallelism}, "
            f"morsels={len(self.morsels)}{suffix})"
        )
