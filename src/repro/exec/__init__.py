"""Vectorized query execution: batches, expressions, physical operators.

The executor is volcano-style over *record batches* rather than tuples:
each operator's :meth:`next_batch` returns a
:class:`~repro.exec.batch.RecordBatch` of up to a few thousand rows,
processed with NumPy kernels.  This mirrors the vectorized execution
model of the engine the paper integrated with (Actian Vector) closely
enough that the relative operator costs the paper exploits — hash
aggregation, sorting, hash vs merge join — behave comparably.
"""

from repro.exec.batch import RecordBatch, DEFAULT_BATCH_SIZE
from repro.exec.result import QueryResult, collect

__all__ = ["RecordBatch", "DEFAULT_BATCH_SIZE", "QueryResult", "collect"]
