"""Clients for the repro wire protocol.

Two flavours over the same frames:

- :class:`ServerClient` — synchronous, built on a plain socket.  This
  is what ``repro.connect("repro://host:port")`` returns; it mirrors
  the :class:`~repro.storage.database.Database` surface the REPL and
  examples use (``sql`` / ``explain`` / ``describe`` / ``metrics`` /
  ``cache_stats`` / ``checkpoint`` / ``parallelism``), so remote and
  local handles are interchangeable for read/write workloads.
- :class:`AsyncReproClient` — the asyncio twin for callers already
  inside an event loop (the benchmark's concurrent clients).

Both return full :class:`~repro.exec.result.QueryResult` objects
rebuilt from the wire (same physical scalars, DB-API cursor surface
included) and re-raise server errors as their original
:mod:`repro.errors` types.
"""

from __future__ import annotations

import socket
import struct

from repro.check.sanitize import make_lock
from repro.errors import ConnectionClosedError, ProtocolError
from repro.exec.result import QueryResult
from repro.serve.protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    check_response,
    decode_body,
    encode_frame,
    read_frame,
    result_from_wire,
)

_LENGTH = struct.Struct(">I")


def parse_uri(uri: str) -> tuple[str, int]:
    """Split ``repro://host[:port]`` into (host, port)."""
    prefix = "repro://"
    if not uri.startswith(prefix):
        raise ProtocolError(f"not a repro:// URI: {uri!r}")
    authority = uri[len(prefix):].rstrip("/")
    if not authority:
        raise ProtocolError(f"URI {uri!r} is missing a host")
    host, _, port_text = authority.rpartition(":")
    if not host:
        return authority, DEFAULT_PORT
    try:
        return host, int(port_text)
    except ValueError as exc:
        raise ProtocolError(
            f"invalid port {port_text!r} in URI {uri!r}"
        ) from exc


class RemoteMetrics:
    """Rendered metrics of a remote database (text + JSON forms)."""

    def __init__(self, text: str, json_text: str):
        self._text = text
        self._json = json_text

    def to_text(self) -> str:
        return self._text

    def to_json(self, indent: int | None = 2) -> str:
        del indent  # rendered server-side
        return self._json

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteMetrics({len(self._text)} chars)"


class ServerClient:
    """A synchronous connection to a :class:`~repro.serve.ReproServer`.

    One request/response in flight at a time (a lock serializes
    callers); the server interleaves *across* connections, not within
    one.  Use one client per thread for concurrency.
    """

    def __init__(self, host: str, port: int = DEFAULT_PORT, *, timeout: float | None = None):
        self.host = host
        self.port = port
        self._lock = make_lock("serve.client.request")
        self._closed = False
        self._parallelism: int | None = None
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self.server_info = check_response(self._request({"op": "hello"}))

    @classmethod
    def from_uri(cls, uri: str, *, timeout: float | None = None) -> "ServerClient":
        host, port = parse_uri(uri)
        return cls(host, port, timeout=timeout)

    # -- framing ------------------------------------------------------------

    def _request(self, payload: dict) -> dict | None:
        with self._lock:  # lock-ok: the lock serializes one request/response conversation on the socket; blocking inside it is the design
            if self._closed:
                raise ConnectionClosedError("client is closed")
            try:
                self._socket.sendall(encode_frame(payload))
                return self._read_frame()
            except (OSError, ConnectionClosedError):
                self._teardown_locked()
                raise ConnectionClosedError(
                    f"connection to {self.host}:{self.port} lost"
                ) from None

    def _read_frame(self) -> dict | None:
        prefix = self._read_exactly(_LENGTH.size)
        if prefix is None:
            return None
        (length,) = _LENGTH.unpack(prefix)
        if length == 0 or length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame length {length} outside (0, {MAX_FRAME_BYTES}]"
            )
        body = self._read_exactly(length)
        if body is None:
            raise ConnectionClosedError(
                "server closed the connection inside a frame"
            )
        return decode_body(body)

    def _read_exactly(self, count: int) -> bytes | None:
        chunks: list[bytes] = []
        remaining = count
        while remaining > 0:
            chunk = self._socket.recv(remaining)
            if not chunk:
                if chunks:
                    raise ConnectionClosedError(
                        "server closed the connection inside a frame"
                    )
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _call(self, payload: dict) -> dict:
        return check_response(self._request(payload))

    # -- the Database-shaped surface ----------------------------------------

    def sql(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        profile: bool = False,
        optimizer_options=None,
    ) -> QueryResult:
        """Execute one statement on the server; returns a QueryResult."""
        if optimizer_options is not None:
            raise ProtocolError(
                "optimizer_options do not travel over the wire; set "
                "planner behaviour server-side"
            )
        del backend  # backend is a server-side session knob; see set()
        response = self._call(
            {
                "op": "sql",
                "text": text,
                "parallelism": parallelism,
                "profile": profile,
            }
        )
        return result_from_wire(response["result"])

    def explain(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        backend: str | None = None,
        analyze: bool = False,
        optimizer_options=None,
    ) -> str:
        if optimizer_options is not None:
            raise ProtocolError(
                "optimizer_options do not travel over the wire; set "
                "planner behaviour server-side"
            )
        del backend
        response = self._call(
            {
                "op": "explain",
                "text": text,
                "parallelism": parallelism,
                "analyze": analyze,
            }
        )
        return response["text"]

    def set(self, knob: str, value) -> object:
        """Set a server-side session knob; returns the applied value."""
        response = self._call({"op": "set", "knob": knob, "value": value})
        return response["value"]

    @property
    def parallelism(self) -> int | None:
        """Per-session degree of parallelism (mirrors Database.parallelism)."""
        with self._lock:
            return self._parallelism

    @parallelism.setter
    def parallelism(self, value: int | None) -> None:
        applied = self.set("parallelism", value)
        with self._lock:
            self._parallelism = applied

    def describe(self) -> str:
        return self._call({"op": "describe"})["text"]

    def metrics(self, *, refresh: bool = True) -> RemoteMetrics:
        del refresh  # the server always refreshes before rendering
        response = self._call({"op": "metrics"})
        return RemoteMetrics(response["text"], response["json"])

    def cache_stats(self) -> dict | None:
        return self._call({"op": "cache_stats"})["stats"]

    def drift_report(self) -> list[dict]:
        """Per-index drift summary, derived from the server's metrics.

        Mirrors :meth:`~repro.storage.database.Database.drift_report`
        without a dedicated wire op: the server-rendered metrics JSON
        already carries the ``patchindex.<name>.*`` gauges and the
        ``maintenance.rebuild_threshold`` knob.
        """
        import json

        rendered = json.loads(self.metrics().to_json())
        gauges = rendered.get("gauges", {})
        threshold = gauges.get("maintenance.rebuild_threshold", 0.02)
        report: list[dict] = []
        for name, value in sorted(gauges.items()):
            if not name.startswith("patchindex.") or not name.endswith(
                ".drift_rate"
            ):
                continue
            index = name[len("patchindex."):-len(".drift_rate")]
            prefix = f"patchindex.{index}"
            report.append(
                {
                    "index": index,
                    "patch_count": int(gauges.get(f"{prefix}.patch_count", 0)),
                    "drift_rate": float(value),
                    "rebuild_threshold": float(threshold),
                    "rebuild_pending": bool(
                        gauges.get(f"{prefix}.rebuild_pending", 0)
                    ),
                    "rebuilds": int(gauges.get(f"{prefix}.rebuilds", 0)),
                }
            )
        return report

    def checkpoint(self) -> dict:
        return self._call({"op": "checkpoint"})["result"]

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("ok"))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Say goodbye and close the socket (idempotent)."""
        with self._lock:  # lock-ok: goodbye shares the request lock's socket-serialization design
            if self._closed:
                return
            try:
                self._socket.sendall(encode_frame({"op": "close"}))
                self._read_frame()
            except OSError:
                pass
            self._teardown_locked()

    def _teardown_locked(self) -> None:
        self._closed = True
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            state = "closed" if self._closed else "open"
        return f"ServerClient({self.host}:{self.port}, {state})"


class AsyncReproClient:
    """The asyncio twin of :class:`ServerClient`.

    Create with :meth:`connect`; one request/response in flight per
    client (an asyncio lock serializes), so concurrency means many
    clients — exactly how the server bench drives load.
    """

    def __init__(self, reader, writer):
        import asyncio

        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._closed = False
        self.server_info: dict | None = None

    @classmethod
    async def connect(
        cls, host: str, port: int = DEFAULT_PORT
    ) -> "AsyncReproClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        client.server_info = await client._call({"op": "hello"})
        return client

    async def _call(self, payload: dict) -> dict:
        async with self._lock:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            self._writer.write(encode_frame(payload))
            await self._writer.drain()
            return check_response(await read_frame(self._reader))

    async def sql(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        profile: bool = False,
    ) -> QueryResult:
        response = await self._call(
            {
                "op": "sql",
                "text": text,
                "parallelism": parallelism,
                "profile": profile,
            }
        )
        return result_from_wire(response["result"])

    async def explain(
        self,
        text: str,
        *,
        parallelism: int | None = None,
        analyze: bool = False,
    ) -> str:
        response = await self._call(
            {
                "op": "explain",
                "text": text,
                "parallelism": parallelism,
                "analyze": analyze,
            }
        )
        return response["text"]

    async def set(self, knob: str, value) -> object:
        response = await self._call(
            {"op": "set", "knob": knob, "value": value}
        )
        return response["value"]

    async def ping(self) -> bool:
        return bool((await self._call({"op": "ping"})).get("ok"))

    async def checkpoint(self) -> dict:
        return (await self._call({"op": "checkpoint"}))["result"]

    async def close(self) -> None:
        async with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._writer.write(encode_frame({"op": "close"}))
                await self._writer.drain()
                await read_frame(self._reader)
            except (ConnectionClosedError, OSError):
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "AsyncReproClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
