"""Client/server layer: serve one Database to many network sessions.

- :mod:`repro.serve.protocol` — the length-prefixed JSON wire format.
- :mod:`repro.serve.server` — :class:`ReproServer` (asyncio, snapshot
  reads + group-commit writes) and :class:`ServerThread`.
- :mod:`repro.serve.client` — :class:`ServerClient` (sync; what
  ``repro.connect("repro://...")`` returns) and
  :class:`AsyncReproClient`.
"""

from repro.serve.client import AsyncReproClient, RemoteMetrics, ServerClient
from repro.serve.protocol import DEFAULT_PORT, MAX_FRAME_BYTES, RemoteProfile
from repro.serve.server import ReproServer, ServerThread

__all__ = [
    "AsyncReproClient",
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "RemoteMetrics",
    "RemoteProfile",
    "ReproServer",
    "ServerClient",
    "ServerThread",
]
