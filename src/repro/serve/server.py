"""The repro network server: many sessions, one Database.

:class:`ReproServer` is an asyncio socket server multiplexing client
connections onto one :class:`~repro.storage.database.Database`.  Each
connection gets its own :class:`~repro.sql.session.Session` (opened
with ``snapshot_reads=True``), and statements are routed by
:func:`~repro.sql.session.statement_kind`:

- **reads** run concurrently on a thread pool, each against its own
  pinned MVCC snapshot — a read never waits for a writer and never
  observes a torn generation;
- **writes and checkpoints** are serialized through a single writer
  thread fed by a queue.  The writer drains the queue in batches and
  executes consecutive writes under one
  :meth:`~repro.storage.wal.WriteAheadLog.deferred_sync` scope — group
  commit: one fsync per batch instead of one per statement, which is
  where the throughput under concurrent write load comes from.

On a memory-engine database (no snapshots) reads are serialized
through the same writer queue, trading concurrency for correctness.

All blocking work happens on executor threads; coroutine bodies only
await.  Observability lands in the database's registry under the
``server.*`` namespace (connection counts, per-op request counters,
write-queue depth) next to the WAL's ``wal.group_commit.*`` batching
metrics.

:class:`ServerThread` runs the event loop on a background thread — the
shape tests, benchmarks and ``python -m repro serve`` share.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import TYPE_CHECKING

from repro.errors import ConnectionClosedError, ProtocolError, ReproError
from repro.serve.protocol import (
    DEFAULT_PORT,
    OPS,
    encode_frame,
    error_to_wire,
    read_frame,
    result_to_wire,
)
from repro.sql.session import Session, statement_kind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database

#: Most write statements one group-commit batch will absorb.
MAX_WRITE_BATCH = 64

#: Threads for concurrent snapshot reads.
DEFAULT_READ_THREADS = 8

_SESSION_KNOBS = ("parallelism", "backend", "profile", "snapshot_reads")


class _QueueItem:
    """One statement waiting for the writer thread."""

    __slots__ = ("kind", "run", "future")

    def __init__(self, kind: str, run, future: asyncio.Future):
        self.kind = kind
        self.run = run
        self.future = future


class ReproServer:
    """Asyncio socket server over one shared Database."""

    def __init__(
        self,
        database: "Database",
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        read_threads: int = DEFAULT_READ_THREADS,
    ):
        self.database = database
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._writer_task: asyncio.Task | None = None
        self._write_queue: asyncio.Queue[_QueueItem] = asyncio.Queue()
        #: One thread: the total order of writes is the queue order.
        self._write_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-writer"
        )
        self._read_executor = ThreadPoolExecutor(
            max_workers=max(1, read_threads),
            thread_name_prefix="repro-reader",
        )
        self._snapshot_reads = database.engine.supports_snapshots
        self._obs = database.obs
        self._sessions = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the writer loop."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._writer_task = asyncio.get_running_loop().create_task(
            self._writer_loop()
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        server = self._server
        if server is None:  # pragma: no cover - start() always binds
            raise ProtocolError("server failed to start")
        async with server:
            await server.serve_forever()

    async def stop(self) -> None:
        """Close the listener, stop the writer, fail queued statements."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        while not self._write_queue.empty():
            item = self._write_queue.get_nowait()
            if not item.future.done():
                item.future.set_exception(
                    ConnectionClosedError("server stopped")
                )
        self._write_executor.shutdown(wait=True)
        self._read_executor.shutdown(wait=True)

    # -- the writer loop ----------------------------------------------------

    async def _writer_loop(self) -> None:
        """Drain the write queue into group-commit batches, forever."""
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._write_queue.get()]
            while len(batch) < MAX_WRITE_BATCH:
                try:
                    batch.append(self._write_queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._obs.gauge("server.write_queue.depth").set(
                self._write_queue.qsize()
            )
            self._obs.counter("server.write_batches").inc()
            self._obs.histogram("server.write_batch.statements").observe(
                len(batch)
            )
            outcomes = await loop.run_in_executor(
                self._write_executor, self._run_batch, batch
            )
            for item, value, error in outcomes:
                if item.future.done():  # client vanished mid-statement
                    continue
                if error is not None:
                    item.future.set_exception(error)
                else:
                    item.future.set_result(value)

    def _run_batch(self, batch: list[_QueueItem]) -> list[tuple]:
        """Execute one queue batch on the writer thread, in order.

        Consecutive ``write`` statements share one ``deferred_sync``
        scope (group commit); checkpoints and serialized reads run
        alone so a checkpoint's own sync/compact never nests inside a
        deferred-sync batch.
        """
        outcomes: list[tuple] = []

        def run_one(item: _QueueItem) -> None:
            try:
                outcomes.append((item, item.run(), None))
            except Exception as error:  # noqa: BLE001 - shipped to client
                outcomes.append((item, None, error))

        position = 0
        while position < len(batch):
            if batch[position].kind == "write":
                with self.database.wal.deferred_sync():
                    while (
                        position < len(batch)
                        and batch[position].kind == "write"
                    ):
                        run_one(batch[position])
                        position += 1
                    # Drift-triggered background rebuilds run on the
                    # writer thread between client statements, inside
                    # the same group-commit scope so the rebuild's
                    # invalidate delta rides the batch fsync.
                    self.database.run_pending_rebuilds()
            else:
                run_one(batch[position])
                position += 1
        return outcomes

    async def _enqueue(self, kind: str, run) -> object:
        """Queue one statement for the writer thread and await it."""
        future = asyncio.get_running_loop().create_future()
        await self._write_queue.put(_QueueItem(kind, run, future))
        self._obs.gauge("server.write_queue.depth").set(
            self._write_queue.qsize()
        )
        return await future

    # -- per-connection handling --------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = self.database.session(
            snapshot_reads=self._snapshot_reads, label=None
        )
        self._sessions += 1
        self._obs.counter("server.connections.total").inc()
        self._obs.gauge("server.connections.active").set(self._sessions)
        try:
            await self._serve_connection(reader, writer, session)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished; nothing left to tell it
        finally:
            session.close()
            self._sessions -= 1
            self._obs.gauge("server.connections.active").set(self._sessions)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session: Session,
    ) -> None:
        while True:
            try:
                request = await read_frame(reader)
            except ProtocolError as error:
                # The stream cannot be resynchronized after a bad
                # frame: report once, then hang up.
                self._obs.counter("server.errors").inc()
                await self._send(writer, error_to_wire(error))
                return
            if request is None:
                return
            response, keep_open = await self._dispatch(request, session)
            await self._send(writer, response)
            if not keep_open:
                return

    async def _send(
        self, writer: asyncio.StreamWriter, payload: dict
    ) -> None:
        writer.write(encode_frame(payload))
        await writer.drain()

    # -- request dispatch ---------------------------------------------------

    async def _dispatch(
        self, request: dict, session: Session
    ) -> tuple[dict, bool]:
        """One request → (response payload, keep connection open)."""
        op = request.get("op")
        if op not in OPS:
            self._obs.counter("server.errors").inc()
            return (
                error_to_wire(
                    ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
                ),
                True,
            )
        self._obs.counter("server.requests").inc()
        self._obs.counter(f"server.requests.{op}").inc()
        try:
            if op == "close":
                return {"ok": True}, False
            return await self._run_op(op, request, session), True
        except ReproError as error:
            self._obs.counter("server.errors").inc()
            return error_to_wire(error), True
        except Exception as error:  # noqa: BLE001 - shipped to client
            self._obs.counter("server.errors").inc()
            return error_to_wire(error), True

    async def _run_op(
        self, op: str, request: dict, session: Session
    ) -> dict:
        database = self.database
        if op == "hello":
            import repro

            return {
                "server": "repro",
                "version": repro.__version__,
                "engine": database.engine.describe(),
                "snapshot_reads": self._snapshot_reads,
            }
        if op == "ping":
            return {"ok": True}
        if op == "sql":
            return await self._run_sql(request, session)
        if op == "explain":
            return await self._run_explain(request, session)
        if op == "set":
            return self._run_set(request, session)
        if op == "describe":
            return {"text": database.describe()}
        if op == "metrics":
            registry = database.metrics()
            return {"text": registry.to_text(), "json": registry.to_json()}
        if op == "cache_stats":
            return {"stats": database.cache_stats()}
        if op == "checkpoint":
            info = await self._enqueue("checkpoint", database.checkpoint)
            return {"result": info}
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    async def _run_sql(self, request: dict, session: Session) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("sql op requires a string 'text'")
        run = partial(
            session.sql,
            text,
            parallelism=_optional_int(request, "parallelism"),
            profile=_optional_bool(request, "profile"),
        )
        kind = statement_kind(text)
        if kind == "read" and session.snapshot_reads:
            result = await asyncio.get_running_loop().run_in_executor(
                self._read_executor, run
            )
        else:
            result = await self._enqueue(kind, run)
        return {"result": result_to_wire(result)}

    async def _run_explain(self, request: dict, session: Session) -> dict:
        text = request.get("text")
        if not isinstance(text, str):
            raise ProtocolError("explain op requires a string 'text'")
        run = partial(
            session.explain,
            text,
            parallelism=_optional_int(request, "parallelism"),
            analyze=bool(request.get("analyze", False)),
        )
        if session.snapshot_reads:
            rendered = await asyncio.get_running_loop().run_in_executor(
                self._read_executor, run
            )
        else:
            rendered = await self._enqueue("read", run)
        return {"text": rendered}

    def _run_set(self, request: dict, session: Session) -> dict:
        knob = request.get("knob")
        if knob not in _SESSION_KNOBS:
            raise ProtocolError(
                f"unknown session knob {knob!r}; expected one of "
                f"{_SESSION_KNOBS}"
            )
        value = request.get("value")
        if knob == "parallelism":
            value = None if value is None else max(1, int(value))
            session.parallelism = value
        elif knob == "backend":
            if value is not None and value not in ("thread", "process", "auto"):
                raise ProtocolError(f"invalid backend {value!r}")
            session.backend = value
        elif knob == "profile":
            session.profile = bool(value)
        elif knob == "snapshot_reads":
            # Re-gated by engine support, exactly like Session.__init__.
            session.snapshot_reads = (
                bool(value) and self.database.engine.supports_snapshots
            )
            value = session.snapshot_reads
        return {"ok": True, "knob": knob, "value": value}


def _optional_int(request: dict, key: str) -> int | None:
    value = request.get(key)
    return None if value is None else int(value)


def _optional_bool(request: dict, key: str) -> bool:
    return bool(request.get(key, False))


class ServerThread:
    """A ReproServer running its event loop on a background thread.

    The synchronous harness tests, benchmarks and the CLI share:
    ``start()`` returns once the socket is bound (the ephemeral
    ``port=0`` is resolved by then), ``stop()`` shuts the loop down and
    joins the thread.  Usable as a context manager.
    """

    def __init__(
        self,
        database: "Database",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        read_threads: int = DEFAULT_READ_THREADS,
    ):
        self.server = ReproServer(
            database, host=host, port=port, read_threads=read_threads
        )
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def uri(self) -> str:
        return f"repro://{self.server.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - defensive
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except OSError as error:
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._thread is None or self._loop is None:
            return
        loop, stop_event = self._loop, self._stop_event
        if stop_event is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stop_event.set)
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
