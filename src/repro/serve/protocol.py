"""Length-prefixed JSON wire protocol shared by server and clients.

A connection is a stream of *frames*.  Each frame is a 4-byte
big-endian unsigned length followed by exactly that many bytes of
UTF-8 JSON encoding one object::

    +--------------+----------------------------+
    | length (>I)  | {"op": "sql", "text": ...} |
    +--------------+----------------------------+

Requests carry an ``op`` (see :data:`OPS`); responses either carry the
op's payload (``{"result": ...}``, ``{"text": ...}``, …) or an
``{"error": {"type", "message"}}`` object, where ``type`` is the
:mod:`repro.errors` class name so clients re-raise the same typed
exception they would have seen locally.

Query results travel as their *physical* scalar representation — the
same ``column_to_jsonable`` / ``column_from_jsonable`` pair the WAL
uses for data records — so a remote
:class:`~repro.exec.result.QueryResult` round-trips bit-identically
through :func:`result_to_wire` / :func:`result_from_wire`.

Frames above :data:`MAX_FRAME_BYTES` are rejected with a
:class:`~repro.errors.ProtocolError` before any allocation: the limit
bounds a malicious or corrupt length prefix, not legitimate results.
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.errors import ConnectionClosedError, ProtocolError, ReproError

#: Default TCP port of ``python -m repro serve`` ("RP" on a phone pad).
DEFAULT_PORT = 7376

#: Upper bound on one frame's payload (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Request operations the server understands.
OPS = (
    "hello",
    "ping",
    "sql",
    "explain",
    "set",
    "describe",
    "metrics",
    "cache_stats",
    "checkpoint",
    "close",
)

_LENGTH = struct.Struct(">I")


def encode_frame(payload: dict) -> bytes:
    """One wire frame: length prefix + compact JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse one frame body; raises ProtocolError on garbage."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame (a truncated prefix or body) raises
    :class:`ProtocolError` — the peer died mid-send and the stream
    cannot be resynchronized.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed inside a frame length prefix "
            f"({len(exc.partial)}/{_LENGTH.size} bytes)"
        ) from exc
    (length,) = _LENGTH.unpack(prefix)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} outside (0, {MAX_FRAME_BYTES}]"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed inside a frame body "
            f"({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_body(body)


# -- error transport ----------------------------------------------------------


def error_to_wire(error: BaseException) -> dict:
    """Response payload carrying a typed error."""
    return {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        }
    }


def error_from_wire(payload: dict) -> ReproError:
    """Rebuild the typed exception of an ``{"error": ...}`` response.

    The class is looked up by name in :mod:`repro.errors`; unknown (or
    non-Repro) types degrade to the :class:`ReproError` base so clients
    always get the library's exception hierarchy.
    """
    from repro import errors as errors_module

    detail = payload.get("error")
    if not isinstance(detail, dict):
        raise ProtocolError(f"malformed error response: {payload!r}")
    message = str(detail.get("message", "unknown server error"))
    type_name = detail.get("type", "ReproError")
    cls = getattr(errors_module, str(type_name), None)
    if (
        isinstance(cls, type)
        and issubclass(cls, ReproError)
        and cls not in (errors_module.ThresholdExceededError,
                        errors_module.PlanInvariantError,
                        errors_module.SqlSyntaxError)
    ):
        return cls(message)
    # Errors with structured constructors (or unknown names) carry
    # their full story in the message already.
    return ReproError(f"{type_name}: {message}")


# -- result transport ---------------------------------------------------------


def result_to_wire(result) -> dict:
    """Serialize a QueryResult (physical scalars, schema, profile text)."""
    from repro.storage.database import schema_to_payload
    from repro.storage.engine import column_to_jsonable

    profile = getattr(result, "profile", None)
    return {
        "schema": schema_to_payload(result.schema),
        "columns": {
            name: column_to_jsonable(result.columns[name])
            for name in result.column_names
        },
        "row_count": result.row_count,
        "profile": profile.to_text() if profile is not None else None,
    }


def result_from_wire(payload: dict):
    """Rebuild a QueryResult from :func:`result_to_wire` output."""
    from repro.exec.result import QueryResult
    from repro.storage.database import payload_to_schema
    from repro.storage.engine import column_from_jsonable

    try:
        schema = payload_to_schema(payload["schema"])
        columns = {
            field.name: column_from_jsonable(
                field.dtype, payload["columns"][field.name]
            )
            for field in schema
        }
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed result payload: {exc}") from exc
    result = QueryResult(schema, columns)
    profile_text = payload.get("profile")
    if profile_text is not None:
        result.profile = RemoteProfile(profile_text)
    return result


class RemoteProfile:
    """Render-only stand-in for a QueryProfile on the client side.

    Profiles are aggregated server-side; what crosses the wire is the
    rendered text, which is all ``--profile`` consumers (the REPL, the
    examples) read back out.
    """

    def __init__(self, text: str):
        self._text = text

    def to_text(self) -> str:
        return self._text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteProfile({len(self._text)} chars)"


def check_response(payload: dict | None) -> dict:
    """Raise the typed error of an error response; pass others through."""
    if payload is None:
        raise ConnectionClosedError(
            "server closed the connection before replying"
        )
    if "error" in payload:
        raise error_from_wire(payload)
    return payload
