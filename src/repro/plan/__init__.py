"""Logical plans, PatchIndex-aware optimization, physical planning."""

from repro.plan.logical import (
    LogicalPlan,
    LogicalScan,
    LogicalFilter,
    LogicalProject,
    LogicalDistinct,
    LogicalAggregate,
    LogicalSort,
    LogicalLimit,
    LogicalJoin,
    LogicalUnionAll,
    LogicalPatchSelect,
    LogicalMergeUnion,
    LogicalMergeJoin,
)
from repro.plan.optimizer import Optimizer, OptimizerOptions
from repro.plan.physical import PhysicalPlanner
from repro.plan.cardinality import estimate_rows

__all__ = [
    "LogicalPlan",
    "LogicalScan",
    "LogicalFilter",
    "LogicalProject",
    "LogicalDistinct",
    "LogicalAggregate",
    "LogicalSort",
    "LogicalLimit",
    "LogicalJoin",
    "LogicalUnionAll",
    "LogicalPatchSelect",
    "LogicalMergeUnion",
    "LogicalMergeJoin",
    "Optimizer",
    "OptimizerOptions",
    "PhysicalPlanner",
    "estimate_rows",
]
