"""Cardinality estimation over logical plans.

Estimates feed two consumers: the cost model gating the PatchIndex
rewrites (is the patched plan worth its overhead?) and the build-side
choice for hash joins (paper §VI-B3: "we can choose the join side with
the lower cardinality as the side to build the hash table on" — the
PatchIndex contributes the exact ``|P_c|`` for its branches).

Selectivity defaults are the classic System-R style constants; they
only need to be in the right ballpark for the rewrite decisions.
"""

from __future__ import annotations

from repro.exec.expressions import And, Comparison, Expression, IsNull, Not, Or
from repro.plan import logical as lp

#: Default selectivity of an equality predicate.
EQUALITY_SELECTIVITY = 0.1
#: Default selectivity of a range predicate.
RANGE_SELECTIVITY = 0.3
#: Default selectivity when nothing is known.
UNKNOWN_SELECTIVITY = 0.5
#: Default distinct fraction for aggregates / distinct.
DISTINCT_FRACTION = 0.1


def predicate_selectivity(predicate: Expression) -> float:
    """Rough selectivity of a predicate expression."""
    if isinstance(predicate, Comparison):
        if predicate.op == "=":
            return EQUALITY_SELECTIVITY
        if predicate.op in ("!=", "<>"):
            return 1.0 - EQUALITY_SELECTIVITY
        return RANGE_SELECTIVITY
    if isinstance(predicate, And):
        return predicate_selectivity(predicate.left) * predicate_selectivity(
            predicate.right
        )
    if isinstance(predicate, Or):
        left = predicate_selectivity(predicate.left)
        right = predicate_selectivity(predicate.right)
        return min(1.0, left + right - left * right)
    if isinstance(predicate, Not):
        return 1.0 - predicate_selectivity(predicate.operand)
    if isinstance(predicate, IsNull):
        return 0.05 if not predicate.negated else 0.95
    return UNKNOWN_SELECTIVITY


def estimate_rows(plan: lp.LogicalPlan) -> int:
    """Estimated output cardinality of a logical plan node."""
    if isinstance(plan, lp.LogicalScan):
        return plan.table.row_count
    if isinstance(plan, lp.LogicalFilter):
        return max(
            1,
            int(estimate_rows(plan.child) * predicate_selectivity(plan.predicate)),
        )
    if isinstance(plan, (lp.LogicalProject,)):
        return estimate_rows(plan.child)
    if isinstance(plan, lp.LogicalDistinct):
        return max(1, int(estimate_rows(plan.child) * DISTINCT_FRACTION))
    if isinstance(plan, lp.LogicalAggregate):
        if not plan.group_by:
            return 1
        return max(1, int(estimate_rows(plan.child) * DISTINCT_FRACTION))
    if isinstance(plan, lp.LogicalSort):
        return estimate_rows(plan.child)
    if isinstance(plan, lp.LogicalLimit):
        return min(plan.limit, estimate_rows(plan.child))
    if isinstance(plan, (lp.LogicalJoin, lp.LogicalMergeJoin)):
        left = estimate_rows(plan.left)
        right = estimate_rows(plan.right)
        # PK/FK-style assumption: one match per probe row.
        return max(left, right)
    if isinstance(plan, lp.LogicalUnionAll):
        return sum(estimate_rows(child) for child in plan.inputs)
    if isinstance(plan, lp.LogicalMergeUnion):
        return estimate_rows(plan.left) + estimate_rows(plan.right)
    if isinstance(plan, lp.LogicalPatchSelect):
        # Exact: the PatchIndex knows |P_c|.
        patch_count = plan.index.patch_count
        total = plan.index.table.row_count
        return patch_count if plan.use_patches else total - patch_count
    return 1  # pragma: no cover - unknown node kinds
