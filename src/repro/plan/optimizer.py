"""PatchIndex-aware query optimization (paper §VI-B, Figure 3).

The optimizer walks the logical plan bottom-up and applies three rewrite
rules when a matching PatchIndex exists and the cost model predicts a
win:

**Distinct rewrite** (NUC, §VI-B1).  ``Distinct(X(Scan T))`` — with X a
pipeline of selections and non-arithmetic projections — becomes::

    UnionAll(
        X(PatchSelect[exclude](Scan T)),            # already unique
        Distinct(X(PatchSelect[use](Scan T))),      # only the patches
    )

A COUNT(DISTINCT c) aggregation over such a pipeline is rewritten the
same way, with the final aggregate turned into a plain COUNT(c) over
the union (the exclude branch contributes no NULLs, condition NUC2
guarantees no cross-branch duplicates).

**Sort rewrite** (NSC, §VI-B2).  ``Sort(X(Scan T))`` on the indexed
column becomes a merge of the already-sorted exclude branch with a sort
of only the patches.  Since NSC discovery is partition-local (§VI-A2),
the exclude branch of a multi-partition table is a set of sorted *runs*
— one per partition — merged by a balanced tree of MergeUnions.

**Join rewrite** (NSC, §VI-B3).  A join whose probe side is a pipeline
over the indexed table and whose other side is sorted on the join key
becomes::

    UnionAll(
        MergeJoin(Y(PatchSelect[exclude](Scan T)), X),   # sorted majority
        HashJoin(Y(PatchSelect[use](Scan T)), X),        # patches only
    )

MergeJoin tolerates partition-local sortedness on its streaming side
(the paper's "sorts and MergeJoins can also be evaluated locally"), so
no partition merge is needed here.

Every rewrite is gated by the :class:`~repro.core.cost_model.CostModel`
using the exact ``|P_c|`` from the index (``always_rewrite`` bypasses
the gate, used by benchmarks that sweep exception rates), and each
rule can be disabled individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING

from repro.core.constraints import values_are_sorted
from repro.core.cost_model import CostModel
from repro.errors import PlanInvariantError
from repro.exec.expressions import ColumnRef
from repro.exec.operators.aggregate import AggregateSpec
from repro.exec.operators.sort import SortKey
from repro.plan import logical as lp
from repro.plan.cardinality import estimate_rows
from repro.storage.catalog import Catalog
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.patch_index import PatchIndex


@dataclass
class OptimizerOptions:
    """Tuning knobs for the optimizer."""

    use_patch_indexes: bool = True
    rewrite_distinct: bool = True
    rewrite_sort: bool = True
    rewrite_join: bool = True
    always_rewrite: bool = False
    cost_model: CostModel = dataclass_field(default_factory=CostModel)


@dataclass(frozen=True)
class _Pipeline:
    """A chain of Filter / rename-only Project nodes over one scan.

    ``column_map`` maps the pipeline's *output* column names to base
    table column names (identity unless a projection renamed them).
    """

    scan: lp.LogicalScan
    nodes: tuple[lp.LogicalPlan, ...]  # top-down, excluding the scan
    column_map: dict[str, str]

    @property
    def table(self) -> Table:
        return self.scan.table

    def rebuild(self, new_leaf: lp.LogicalPlan) -> lp.LogicalPlan:
        """Re-root the pipeline on a replacement leaf."""
        plan = new_leaf
        for node in reversed(self.nodes):
            plan = node.with_children([plan])
        return plan


def match_scan_pipeline(plan: lp.LogicalPlan) -> _Pipeline | None:
    """Match the paper's subtree X: selections and non-arithmetic
    projections over a single table scan.  Returns None on any other
    shape (joins, aggregates, computed projections, ...)."""
    nodes: list[lp.LogicalPlan] = []
    current = plan
    while True:
        if isinstance(current, lp.LogicalScan):
            scan = current
            break
        if isinstance(current, lp.LogicalFilter):
            nodes.append(current)
            current = current.child
            continue
        if isinstance(current, lp.LogicalProject):
            if not all(
                isinstance(expression, ColumnRef)
                for __, expression in current.outputs
            ):
                return None
            nodes.append(current)
            current = current.child
            continue
        return None
    # Walk bottom-up to build the output-name → base-name mapping.
    column_map = {name: name for name in scan.schema.names}
    for node in reversed(nodes):
        if isinstance(node, lp.LogicalProject):
            column_map = {
                alias: column_map[expression.name]
                for alias, expression in node.outputs
                if expression.name in column_map
            }
    return _Pipeline(scan, tuple(nodes), column_map)


class Optimizer:
    """Rule-driven logical plan optimizer."""

    def __init__(self, catalog: Catalog, options: OptimizerOptions | None = None):
        self.catalog = catalog
        self.options = options or OptimizerOptions()
        self._sorted_column_cache: dict[tuple[str, str], bool] = {}

    # -- entry point ----------------------------------------------------

    def optimize(self, plan: lp.LogicalPlan) -> lp.LogicalPlan:
        children = [self.optimize(child) for child in plan.children()]
        plan = plan.with_children(children) if children else plan
        if not self.options.use_patch_indexes:
            return plan
        if self.options.rewrite_distinct:
            rewritten = self._try_distinct(plan)
            if rewritten is not None:
                return self._check_rewrite(plan, rewritten)
            rewritten = self._try_count_distinct(plan)
            if rewritten is not None:
                return self._check_rewrite(plan, rewritten)
        if self.options.rewrite_sort:
            rewritten = self._try_sort(plan)
            if rewritten is not None:
                return self._check_rewrite(plan, rewritten)
        if self.options.rewrite_join:
            rewritten = self._try_join(plan)
            if rewritten is not None:
                return self._check_rewrite(plan, rewritten)
        return plan

    def _check_rewrite(
        self, original: lp.LogicalPlan, rewritten: lp.LogicalPlan
    ) -> lp.LogicalPlan:
        """A rewrite must be schema-preserving: same columns, same
        types, same order.  Anything else means the rule replaced the
        query with a different one — fail fast at plan time instead of
        returning wrong rows (rule ``rewrite-schema``)."""
        before = [(f.name, f.dtype) for f in original.schema.fields]
        after = [(f.name, f.dtype) for f in rewritten.schema.fields]
        if before != after:
            raise PlanInvariantError(
                "rewrite-schema",
                f"rewrite of {original.label()} changed the output "
                f"schema from {before} to {after}",
            )
        return rewritten

    # -- shared helpers ---------------------------------------------------

    def _find_index(
        self, table: Table, column: str, kind: str
    ) -> "PatchIndex | None":
        return self.catalog.find_index(table.name, column, kind)

    def _accept(self, use_case: str, n: int, p: int, n_build: int | None = None) -> bool:
        if self.options.always_rewrite:
            return True
        return self.options.cost_model.should_rewrite(use_case, n, p, n_build)

    @staticmethod
    def _patched_leaf(
        pipeline: _Pipeline, index: "PatchIndex", use_patches: bool
    ) -> lp.LogicalPlan:
        return pipeline.rebuild(
            lp.LogicalPatchSelect(pipeline.scan, index, use_patches=use_patches)
        )

    # -- distinct rewrite (NUC) -----------------------------------------------

    def _try_distinct(self, plan: lp.LogicalPlan) -> lp.LogicalPlan | None:
        if not isinstance(plan, lp.LogicalDistinct):
            return None
        pipeline = match_scan_pipeline(plan.child)
        if pipeline is None:
            return None
        index = self._nuc_index_for_any(pipeline, plan.child.schema.names)
        if index is None:
            return None
        n = estimate_rows(plan.child)
        if not self._accept("distinct", n, index.patch_count):
            return None
        exclude = self._patched_leaf(pipeline, index, use_patches=False)
        use = lp.LogicalDistinct(
            self._patched_leaf(pipeline, index, use_patches=True)
        )
        return lp.LogicalUnionAll((exclude, use))

    def _try_count_distinct(self, plan: lp.LogicalPlan) -> lp.LogicalPlan | None:
        if not isinstance(plan, lp.LogicalAggregate):
            return None
        if plan.group_by or len(plan.aggregates) != 1:
            return None
        spec = plan.aggregates[0]
        if spec.func != "count_distinct":
            return None
        pipeline = match_scan_pipeline(plan.child)
        if pipeline is None:
            return None
        base_column = pipeline.column_map.get(spec.column)
        if base_column is None:
            return None
        index = self._find_index(pipeline.table, base_column, "unique")
        if index is None:
            return None
        n = estimate_rows(plan.child)
        if not self._accept("distinct", n, index.patch_count):
            return None
        project = ((spec.column, ColumnRef(spec.column)),)
        exclude = lp.LogicalProject(
            self._patched_leaf(pipeline, index, use_patches=False), project
        )
        use = lp.LogicalDistinct(
            lp.LogicalProject(
                self._patched_leaf(pipeline, index, use_patches=True), project
            )
        )
        union = lp.LogicalUnionAll((exclude, use))
        # COUNT(c) over the union: the exclude branch has no NULLs (NULLs
        # are always patches) and NUC2 rules out cross-branch duplicates.
        return lp.LogicalAggregate(
            union,
            (),
            (AggregateSpec("count", spec.column, spec.alias),),
        )

    def _nuc_index_for_any(
        self, pipeline: _Pipeline, output_names: tuple[str, ...]
    ) -> "PatchIndex | None":
        """A NUC index on any distinct-output column makes the whole
        row combination unique (a superset of a unique key is unique)."""
        for name in output_names:
            base = pipeline.column_map.get(name)
            if base is None:
                continue
            index = self._find_index(pipeline.table, base, "unique")
            if index is not None:
                return index
        return None

    # -- sort rewrite (NSC) -------------------------------------------------------

    def _try_sort(self, plan: lp.LogicalPlan) -> lp.LogicalPlan | None:
        if not isinstance(plan, lp.LogicalSort):
            return None
        if len(plan.keys) != 1:
            return None
        key = plan.keys[0]
        pipeline = match_scan_pipeline(plan.child)
        if pipeline is None:
            return None
        base_column = pipeline.column_map.get(key.column)
        if base_column is None:
            return None
        index = self._find_index(pipeline.table, base_column, "sorted")
        if index is None or index.ascending != key.ascending:
            return None
        n = estimate_rows(plan.child)
        if not self._accept("sort", n, index.patch_count):
            return None
        exclude = self._exclude_runs_merged(pipeline, index, (key,))
        use = lp.LogicalSort(
            self._patched_leaf(pipeline, index, use_patches=True), (key,)
        )
        return lp.LogicalMergeUnion(exclude, use, (key,))

    def _exclude_runs_merged(
        self,
        pipeline: _Pipeline,
        index: "PatchIndex",
        keys: tuple[SortKey, ...],
    ) -> lp.LogicalPlan:
        """The exclude branch as a globally sorted stream.

        NSC patch sets are partition-local (§VI-A2), so each partition's
        exclude stream is a sorted *run*; the runs must be merged into
        one sorted stream.  A single-partition table needs nothing (the
        shape of the paper's Figure 3).  For multi-partition tables the
        paper merges the parallel partition streams in its exchange
        operators; this serial engine realizes the K-way run merge with
        a Sort whose stable, run-detecting kernel (timsort) degenerates
        to exactly a K-way merge over K presorted runs.
        """
        exclude = self._patched_leaf(pipeline, index, use_patches=False)
        if index.scope == "global" or pipeline.table.partition_count == 1:
            return exclude
        return lp.LogicalSort(exclude, keys)

    # -- join rewrite (NSC) ------------------------------------------------------------

    def _try_join(self, plan: lp.LogicalPlan) -> lp.LogicalPlan | None:
        if not isinstance(plan, lp.LogicalJoin) or plan.join_type != "inner":
            return None
        # Try the PatchIndex on either input; the other side must be
        # sorted on its join key.
        attempt = self._join_with_index(
            plan, indexed=plan.left, other=plan.right,
            indexed_key=plan.left_key, other_key=plan.right_key,
        )
        if attempt is not None:
            return attempt
        return self._join_with_index(
            plan, indexed=plan.right, other=plan.left,
            indexed_key=plan.right_key, other_key=plan.left_key,
        )

    def _join_with_index(
        self,
        plan: lp.LogicalJoin,
        indexed: lp.LogicalPlan,
        other: lp.LogicalPlan,
        indexed_key: str,
        other_key: str,
    ) -> lp.LogicalPlan | None:
        pipeline = match_scan_pipeline(indexed)
        if pipeline is None:
            return None
        base_column = pipeline.column_map.get(indexed_key)
        if base_column is None:
            return None
        index = self._find_index(pipeline.table, base_column, "sorted")
        if index is None or not index.ascending:
            return None
        if not self._side_is_sorted(other, other_key):
            return None
        n_probe = estimate_rows(indexed)
        n_build = estimate_rows(other)
        if not self._accept("join", n_probe, index.patch_count, n_build):
            return None
        exclude = self._patched_leaf(pipeline, index, use_patches=False)
        use = self._patched_leaf(pipeline, index, use_patches=True)
        merge_branch: lp.LogicalPlan = lp.LogicalMergeJoin(
            exclude, other, indexed_key, other_key
        )
        hash_branch: lp.LogicalPlan = lp.LogicalJoin(
            use, other, indexed_key, other_key
        )
        # Restore the original output column order (left ++ right).
        target = plan.schema.names
        merge_branch = _reorder(merge_branch, target)
        hash_branch = _reorder(hash_branch, target)
        return lp.LogicalUnionAll((merge_branch, hash_branch))

    def _side_is_sorted(self, plan: lp.LogicalPlan, key: str) -> bool:
        """Is this join input sorted on *key*?

        True when it is a pipeline over a base table whose column is
        globally sorted — established either by an NSC PatchIndex with
        zero patches or by a (cached) direct check of the data, the
        engine-metadata analogue of "dimension tables are typically
        sorted on their primary key" (§VII-A1).
        """
        pipeline = match_scan_pipeline(plan)
        if pipeline is None:
            return False
        base_column = pipeline.column_map.get(key)
        if base_column is None:
            return False
        index = self._find_index(pipeline.table, base_column, "sorted")
        if index is not None and index.ascending and index.patch_count == 0:
            # Zero patches still only certifies partition-local order;
            # fall through to the global check for multi-partition tables.
            if pipeline.table.partition_count == 1:
                return True
        cache_key = (pipeline.table.name, base_column)
        if cache_key not in self._sorted_column_cache:
            column = pipeline.table.read_column(base_column)
            self._sorted_column_cache[cache_key] = (
                not column.has_nulls
                and values_are_sorted(column.values, ascending=True)
            )
        return self._sorted_column_cache[cache_key]


def _reorder(plan: lp.LogicalPlan, target_names: tuple[str, ...]) -> lp.LogicalPlan:
    """Project to a target column order; no-op when already in order."""
    if plan.schema.names == tuple(target_names):
        return plan
    return lp.LogicalProject(
        plan, tuple((name, ColumnRef(name)) for name in target_names)
    )
