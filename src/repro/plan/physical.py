"""Physical planning: logical plan → executable operator tree.

Mostly a 1:1 mapping, plus three physical decisions:

- **Scan-range derivation**: a filter directly above a scan with a
  ``column <op> literal`` conjunct is evaluated against the per-block
  min/max sketches, and the surviving rowid ranges are pushed into the
  scan (the filter itself is kept — block pruning is conservative).
  This is the paper's "small materialized aggregates" scan-range path
  that the PatchSelect then merges with (§VI-A3).
- **Hash-join build-side choice**: the smaller estimated input builds
  the hash table (§VI-B3); a projection restores the original column
  order when the sides were swapped.
- **Morsel-driven parallelism**: a scan pipeline (Scan, optionally
  PatchSelect, then Filter/Project chains) big enough for the cost
  model's :meth:`~repro.core.cost_model.CostModel.should_parallelize`
  becomes an Exchange over contiguous rowid morsels; a Distinct /
  Aggregate / Sort directly on top becomes its parallel-aware
  counterpart with per-worker partials.  The degree of parallelism
  comes from the ``parallelism`` knob (default: ``REPRO_THREADS`` or
  the CPU count), and EXPLAIN shows it on every parallel operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.check.plan_verifier import verify_plan
from repro.core.cost_model import CostModel
from repro.errors import PlanError
from repro.exec.batch import DEFAULT_BATCH_SIZE
from repro.exec.expressions import And, ColumnRef, Comparison, Expression, Literal
from repro.exec.operators import (
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    MergeJoin,
    MergeUnion,
    Operator,
    PatchSelect,
    PatchSelectMode,
    Project,
    Sort,
    TableScan,
    TopN,
    UnionAll,
)
from repro.exec.operators.scan import normalize_ranges
from repro.exec.parallel import (
    DEFAULT_MORSEL_SIZE,
    Exchange,
    Morsel,
    ParallelAggregate,
    ParallelDistinct,
    ParallelSort,
    default_parallelism,
    morsels_for_table,
)
from repro.exec.parallel.procpool import (
    BACKENDS,
    ProcessTransport,
    default_backend,
)
from repro.exec.parallel.worker import (
    EngineSnapshot,
    FragmentSpec,
    OpSpec,
    PatchSpec,
)
from repro.plan import logical as lp
from repro.plan.cardinality import estimate_rows
from repro.storage.engine import DurableEngine
from repro.types.datatypes import coerce_scalar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database
    from repro.storage.table import Table


@dataclass
class _Fragment:
    """A parallelizable scan pipeline matched in the logical plan.

    ``build`` reconstructs the physical fragment restricted to a set of
    global rowid ranges — the planner hands it to the Exchange, which
    calls it once per morsel (``None`` ranges = the unrestricted
    template used for schema/EXPLAIN).
    """

    build: Callable[[list[tuple[int, int]] | None], Operator]
    ranges: list[tuple[int, int]] | None
    covered_rows: int
    morsels: list[Morsel] = dataclass_field(default_factory=list)
    #: Process-backend transport when the fragment is routed to worker
    #: processes; ``None`` keeps the thread path.
    transport: ProcessTransport | None = None

    def template(self) -> Operator:
        return self.build(self.ranges)


class PhysicalPlanner:
    """Translate logical plans into operator trees."""

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        derive_scan_ranges: bool = True,
        choose_build_side: bool = True,
        parallelism: int | None = None,
        morsel_size: int = DEFAULT_MORSEL_SIZE,
        cost_model: CostModel | None = None,
        verify: bool = True,
        backend: str | None = None,
        database: "Database | None" = None,
    ):
        self.batch_size = batch_size
        self.derive_scan_ranges = derive_scan_ranges
        self.choose_build_side = choose_build_side
        self.parallelism = (
            default_parallelism() if parallelism is None else max(1, parallelism)
        )
        self.morsel_size = morsel_size
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.verify = verify
        resolved = default_backend() if backend is None else backend
        if resolved not in BACKENDS:
            raise PlanError(
                f"backend must be one of {', '.join(BACKENDS)}, got {backend!r}"
            )
        #: Requested execution backend ("thread" | "process" | "auto");
        #: resolved per fragment in :meth:`_resolve_backend`.
        self.backend = resolved
        #: The owning database — required for the process backend (the
        #: engine snapshot workers attach comes from it).  ``None``
        #: restricts planning to the thread path.
        self.database = database
        self._depth = 0

    def plan(self, logical: lp.LogicalPlan) -> Operator:
        self._depth += 1
        try:
            operator = self._plan_node(logical)
        finally:
            self._depth -= 1
        if operator.estimated_rows is None:
            # Stamp the optimizer's cardinality estimate so EXPLAIN
            # ANALYZE can report actual vs. estimated rows per operator.
            operator.estimated_rows = estimate_rows(logical)
        if self.verify and self._depth == 0:
            # Always-on invariant pass over the finished plan (the
            # depth guard skips the recursive calls for subtrees).
            verify_plan(operator)
        return operator

    def _plan_node(self, logical: lp.LogicalPlan) -> Operator:
        parallel = self._try_parallel(logical)
        if parallel is not None:
            return parallel
        if isinstance(logical, lp.LogicalScan):
            return self._plan_scan(logical)
        if isinstance(logical, lp.LogicalPatchSelect):
            scan = self._plan_scan(logical.child)
            scan.estimated_rows = estimate_rows(logical.child)
            mode = (
                PatchSelectMode.USE_PATCHES
                if logical.use_patches
                else PatchSelectMode.EXCLUDE_PATCHES
            )
            return PatchSelect(scan, logical.index, mode)
        if isinstance(logical, lp.LogicalFilter):
            return self._plan_filter(logical)
        if isinstance(logical, lp.LogicalProject):
            return Project(self.plan(logical.child), list(logical.outputs))
        if isinstance(logical, lp.LogicalDistinct):
            return Distinct(self.plan(logical.child))
        if isinstance(logical, lp.LogicalAggregate):
            return HashAggregate(
                self.plan(logical.child),
                list(logical.group_by),
                list(logical.aggregates),
            )
        if isinstance(logical, lp.LogicalSort):
            return Sort(self.plan(logical.child), list(logical.keys))
        if isinstance(logical, lp.LogicalLimit):
            if isinstance(logical.child, lp.LogicalSort):
                # Fuse ORDER BY + LIMIT into a partial-sort TopN.
                return TopN(
                    self.plan(logical.child.child),
                    list(logical.child.keys),
                    logical.limit,
                    logical.offset,
                )
            return Limit(self.plan(logical.child), logical.limit, logical.offset)
        if isinstance(logical, lp.LogicalJoin):
            return self._plan_join(logical)
        if isinstance(logical, lp.LogicalMergeJoin):
            # The optimizer proved the right side sorted from *data*
            # (a zero-patch NSC or a cached column check), which the
            # static verifier cannot re-derive — keep the cheap
            # vectorized runtime guard on as defense in depth.
            return MergeJoin(
                self.plan(logical.left),
                self.plan(logical.right),
                logical.left_key,
                logical.right_key,
                check_sorted=True,
            )
        if isinstance(logical, lp.LogicalUnionAll):
            return UnionAll([self.plan(child) for child in logical.inputs])
        if isinstance(logical, lp.LogicalMergeUnion):
            return MergeUnion(
                self.plan(logical.left),
                self.plan(logical.right),
                list(logical.keys),
            )
        raise PlanError(f"cannot plan logical node {type(logical).__name__}")

    # -- morsel-driven parallelism ------------------------------------------

    def _try_parallel(self, logical: lp.LogicalPlan) -> Operator | None:
        """Parallel plan for this node, or None to fall through to serial.

        Blocking terminals directly over a scan pipeline push partial
        work into the morsel workers; a bare pipeline becomes a plain
        ordered Exchange.  Any other node returns None — its children
        still get their own chance when the serial dispatch recurses.
        """
        if self.parallelism <= 1:
            return None
        if isinstance(logical, lp.LogicalDistinct):
            fragment = self._match_fragment(logical.child)
            if fragment is not None:
                return self._attach_backend(
                    ParallelDistinct(
                        fragment.build,
                        fragment.template(),
                        fragment.morsels,
                        self.parallelism,
                    ),
                    fragment,
                )
            return None
        if isinstance(logical, lp.LogicalSort):
            fragment = self._match_fragment(logical.child)
            if fragment is not None:
                return self._attach_backend(
                    ParallelSort(
                        fragment.build,
                        fragment.template(),
                        fragment.morsels,
                        self.parallelism,
                        list(logical.keys),
                    ),
                    fragment,
                )
            return None
        if isinstance(logical, lp.LogicalAggregate):
            fragment = self._match_fragment(logical.child)
            if fragment is None:
                return None
            specs = list(logical.aggregates)
            distinct_count = sum(
                1 for spec in specs if spec.func == "count_distinct"
            )
            if distinct_count == 0 or (distinct_count == 1 and len(specs) == 1):
                return self._attach_backend(
                    ParallelAggregate(
                        fragment.build,
                        fragment.template(),
                        fragment.morsels,
                        self.parallelism,
                        list(logical.group_by),
                        specs,
                    ),
                    fragment,
                )
            # Mixed count_distinct shapes: parallelize the scan only.
            return HashAggregate(
                self._attach_backend(
                    Exchange(
                        fragment.build,
                        fragment.template(),
                        fragment.morsels,
                        self.parallelism,
                    ),
                    fragment,
                ),
                list(logical.group_by),
                specs,
            )
        fragment = self._match_fragment(logical)
        if fragment is not None:
            return self._attach_backend(
                Exchange(
                    fragment.build,
                    fragment.template(),
                    fragment.morsels,
                    self.parallelism,
                ),
                fragment,
            )
        return None

    def _attach_backend(self, operator: Any, fragment: _Fragment) -> Operator:
        """Route one parallel operator to the fragment's backend."""
        if fragment.transport is not None:
            fragment.transport.partial = operator.partial_spec()
            operator.backend = fragment.transport
        return operator

    def _match_fragment(self, logical: lp.LogicalPlan) -> _Fragment | None:
        """Match a Filter/Project chain over (PatchSelect over) a scan,
        and accept it for parallel execution if the cost model agrees."""
        nodes: list[lp.LogicalPlan] = []
        patch: lp.LogicalPatchSelect | None = None
        current = logical
        while True:
            if isinstance(current, lp.LogicalScan):
                scan = current
                break
            if isinstance(current, lp.LogicalPatchSelect):
                patch = current
                scan = current.child
                break
            if isinstance(current, (lp.LogicalFilter, lp.LogicalProject)):
                nodes.append(current)
                current = current.child
                continue
            return None

        ranges = (
            list(scan.scan_ranges) if scan.scan_ranges is not None else None
        )
        if (
            ranges is None
            and self.derive_scan_ranges
            and patch is None
            and nodes
            and isinstance(nodes[-1], lp.LogicalFilter)
        ):
            # Same rule as the serial path: block-prune only when the
            # filter sits directly on the scan.
            ranges = self._ranges_for_predicate(scan, nodes[-1].predicate)
        normalized = normalize_ranges(ranges, scan.table.row_count)
        covered = (
            sum(stop - start for start, stop in normalized)
            if normalized is not None
            else scan.table.row_count
        )

        def build(
            morsel_ranges: list[tuple[int, int]] | None,
        ) -> Operator:
            operator: Operator = TableScan(
                scan.table,
                list(scan.columns) if scan.columns is not None else None,
                scan_ranges=morsel_ranges,
                with_tid=scan.with_tid,
                batch_size=self.batch_size,
            )
            if patch is not None:
                mode = (
                    PatchSelectMode.USE_PATCHES
                    if patch.use_patches
                    else PatchSelectMode.EXCLUDE_PATCHES
                )
                operator = PatchSelect(operator, patch.index, mode)
            for node in reversed(nodes):
                if isinstance(node, lp.LogicalFilter):
                    operator = Filter(operator, node.predicate)
                else:
                    operator = Project(operator, list(node.outputs))
            return operator

        morsels = morsels_for_table(scan.table, normalized, self.morsel_size)
        backend = self._resolve_backend(scan.table, covered, len(morsels))
        if backend is None:
            return None
        transport = (
            self._process_transport(scan, patch, nodes)
            if backend == "process"
            else None
        )
        return _Fragment(build, normalized, covered, morsels, transport)

    def _resolve_backend(
        self, table: "Table", covered: int, morsel_count: int
    ) -> str | None:
        """Pick the execution backend for one fragment, or None = serial.

        ``process`` needs a durable, catalog-live table another process
        can attach by name; a MemoryEngine table (or a bare Table never
        installed in the database) silently falls back to threads.  Each
        backend is gated by its own cost curve — the process backend's
        heavier fan-out keeps mid-size scans on threads under ``auto``.
        The curves also see the table's storage state: the decode work
        of encoded (RSEG2) segments parallelizes, so cold encoded scans
        cross the breakeven earlier, while a warm block cache pulls the
        weight back to the raw-scan baseline.
        """
        engine = self.database.engine if self.database is not None else None
        encoded_fraction = (
            engine.encoded_fraction(table.name) if engine is not None else 0.0
        )
        cache_hit_ratio = (
            engine.cache_hit_ratio() if engine is not None else 0.0
        )

        def gate(backend: str) -> bool:
            return self.cost_model.should_parallelize(
                covered,
                self.parallelism,
                morsel_count,
                backend,
                encoded_fraction=encoded_fraction,
                cache_hit_ratio=cache_hit_ratio,
            )

        attachable = self._process_attachable(table)
        if self.backend == "process" and attachable:
            return "process" if gate("process") else None
        if self.backend == "auto" and attachable and gate("process"):
            return "process"
        return "thread" if gate("thread") else None

    def _process_attachable(self, table: "Table") -> bool:
        database = self.database
        if database is None or not isinstance(database.engine, DurableEngine):
            return False
        return (
            database.catalog.has_table(table.name)
            and database.catalog.table(table.name) is table
        )

    def _process_transport(
        self,
        scan: lp.LogicalScan,
        patch: lp.LogicalPatchSelect | None,
        nodes: list[lp.LogicalPlan],
    ) -> ProcessTransport:
        """Describe the fragment as picklable specs plus the snapshot."""
        database = self.database
        if database is None:  # unreachable after _resolve_backend
            raise PlanError("process backend requires a database")
        ops: list[OpSpec] = []
        for node in reversed(nodes):
            if isinstance(node, lp.LogicalFilter):
                ops.append(OpSpec("filter", predicate=node.predicate))
            elif isinstance(node, lp.LogicalProject):
                ops.append(OpSpec("project", outputs=tuple(node.outputs)))
        patch_spec: PatchSpec | None = None
        if patch is not None:
            index = patch.index
            patch_spec = PatchSpec(
                name=index.name,
                kind=index.kind,
                column=index.column_name,
                design=index.design,
                threshold=index.threshold,
                ascending=index.ascending,
                strict=index.strict,
                scope=index.scope,
                use_patches=patch.use_patches,
                partition_rowids=tuple(
                    index.partition_patches(k)
                    .rowids()
                    .astype(np.int64, copy=False)
                    .tobytes()
                    for k in range(scan.table.partition_count)
                ),
            )
        fragment_spec = FragmentSpec(
            table=scan.table.name,
            columns=(
                tuple(scan.columns) if scan.columns is not None else None
            ),
            with_tid=scan.with_tid,
            batch_size=self.batch_size,
            patch=patch_spec,
            ops=tuple(ops),
        )
        engine = database.engine
        if not isinstance(engine, DurableEngine):  # unreachable, see above
            raise PlanError("process backend requires a durable engine")
        snapshot = EngineSnapshot(
            str(engine.root), bool(engine.mmap), database.wal.last_lsn
        )
        return ProcessTransport(
            snapshot, fragment_spec, self.parallelism, metrics=database.obs
        )

    # -- scans & filters ---------------------------------------------------

    def _plan_scan(self, logical: lp.LogicalScan) -> TableScan:
        if not isinstance(logical, lp.LogicalScan):
            raise PlanError("PatchSelect child must plan to a scan")
        return TableScan(
            logical.table,
            list(logical.columns) if logical.columns is not None else None,
            scan_ranges=(
                list(logical.scan_ranges)
                if logical.scan_ranges is not None
                else None
            ),
            with_tid=logical.with_tid,
            batch_size=self.batch_size,
        )

    def _plan_filter(self, logical: lp.LogicalFilter) -> Operator:
        child = logical.child
        if (
            self.derive_scan_ranges
            and isinstance(child, lp.LogicalScan)
            and child.scan_ranges is None
        ):
            ranges = self._ranges_for_predicate(child, logical.predicate)
            if ranges is not None:
                child = lp.LogicalScan(
                    child.table,
                    child.columns,
                    child.with_tid,
                    scan_ranges=tuple(ranges),
                )
                return Filter(self._plan_scan(child), logical.predicate)
        return Filter(self.plan(child), logical.predicate)

    def _ranges_for_predicate(
        self, scan: lp.LogicalScan, predicate: Expression
    ) -> list[tuple[int, int]] | None:
        """Block-prune using one ``col <op> literal`` conjunct, if any."""
        conjunct = _find_prunable_conjunct(predicate, scan)
        if conjunct is None:
            return None
        column, op, literal_value = conjunct
        ranges: list[tuple[int, int]] = []
        for partition in scan.table.partitions:
            for start, stop in partition.scan_ranges_for_predicate(
                column, op, literal_value
            ):
                ranges.append(
                    (partition.base_rowid + start, partition.base_rowid + stop)
                )
        return ranges

    # -- joins ------------------------------------------------------------------

    def _plan_join(self, logical: lp.LogicalJoin) -> Operator:
        left = self.plan(logical.left)
        right = self.plan(logical.right)
        if logical.join_type == "left_outer":
            # Outer semantics pin the probe side to the preserved input.
            return HashJoin(
                left, right, logical.left_key, logical.right_key, "left_outer"
            )
        if self.choose_build_side:
            left_rows = estimate_rows(logical.left)
            right_rows = estimate_rows(logical.right)
        else:
            left_rows, right_rows = 1, 0  # keep right as build side
        if right_rows <= left_rows:
            return HashJoin(left, right, logical.left_key, logical.right_key)
        # Build on the (smaller) left side; restore column order after.
        swapped = HashJoin(right, left, logical.right_key, logical.left_key)
        outputs = [
            (name, ColumnRef(name)) for name in logical.schema.names
        ]
        return Project(swapped, outputs)


def _find_prunable_conjunct(
    predicate: Expression, scan: lp.LogicalScan
) -> tuple[str, str, object] | None:
    """First ``ColumnRef <op> Literal`` conjunct usable for block pruning."""
    if isinstance(predicate, And):
        found = _find_prunable_conjunct(predicate.left, scan)
        if found is not None:
            return found
        return _find_prunable_conjunct(predicate.right, scan)
    if not isinstance(predicate, Comparison):
        return None
    left, right, op = predicate.left, predicate.right, predicate.op
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = _flip(op)
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    if right.value is None:
        return None
    if left.name not in scan.schema:
        return None
    dtype = scan.schema.field(left.name).dtype
    try:
        literal_value = coerce_scalar(right.value, dtype)
    except Exception:
        return None
    if literal_value is None:
        return None
    return (left.name, op, literal_value)


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!=", "<>": "<>"}[op]
