"""Physical planning: logical plan → executable operator tree.

Mostly a 1:1 mapping, plus two physical decisions:

- **Scan-range derivation**: a filter directly above a scan with a
  ``column <op> literal`` conjunct is evaluated against the per-block
  min/max sketches, and the surviving rowid ranges are pushed into the
  scan (the filter itself is kept — block pruning is conservative).
  This is the paper's "small materialized aggregates" scan-range path
  that the PatchSelect then merges with (§VI-A3).
- **Hash-join build-side choice**: the smaller estimated input builds
  the hash table (§VI-B3); a projection restores the original column
  order when the sides were swapped.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.exec.batch import DEFAULT_BATCH_SIZE
from repro.exec.expressions import And, ColumnRef, Comparison, Expression, Literal
from repro.exec.operators import (
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    MergeJoin,
    MergeUnion,
    Operator,
    PatchSelect,
    PatchSelectMode,
    Project,
    Sort,
    TableScan,
    TopN,
    UnionAll,
)
from repro.plan import logical as lp
from repro.plan.cardinality import estimate_rows
from repro.types.datatypes import coerce_scalar


class PhysicalPlanner:
    """Translate logical plans into operator trees."""

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        derive_scan_ranges: bool = True,
        choose_build_side: bool = True,
    ):
        self.batch_size = batch_size
        self.derive_scan_ranges = derive_scan_ranges
        self.choose_build_side = choose_build_side

    def plan(self, logical: lp.LogicalPlan) -> Operator:
        if isinstance(logical, lp.LogicalScan):
            return self._plan_scan(logical)
        if isinstance(logical, lp.LogicalPatchSelect):
            scan = self._plan_scan(logical.child)
            mode = (
                PatchSelectMode.USE_PATCHES
                if logical.use_patches
                else PatchSelectMode.EXCLUDE_PATCHES
            )
            return PatchSelect(scan, logical.index, mode)
        if isinstance(logical, lp.LogicalFilter):
            return self._plan_filter(logical)
        if isinstance(logical, lp.LogicalProject):
            return Project(self.plan(logical.child), list(logical.outputs))
        if isinstance(logical, lp.LogicalDistinct):
            return Distinct(self.plan(logical.child))
        if isinstance(logical, lp.LogicalAggregate):
            return HashAggregate(
                self.plan(logical.child),
                list(logical.group_by),
                list(logical.aggregates),
            )
        if isinstance(logical, lp.LogicalSort):
            return Sort(self.plan(logical.child), list(logical.keys))
        if isinstance(logical, lp.LogicalLimit):
            if isinstance(logical.child, lp.LogicalSort):
                # Fuse ORDER BY + LIMIT into a partial-sort TopN.
                return TopN(
                    self.plan(logical.child.child),
                    list(logical.child.keys),
                    logical.limit,
                    logical.offset,
                )
            return Limit(self.plan(logical.child), logical.limit, logical.offset)
        if isinstance(logical, lp.LogicalJoin):
            return self._plan_join(logical)
        if isinstance(logical, lp.LogicalMergeJoin):
            return MergeJoin(
                self.plan(logical.left),
                self.plan(logical.right),
                logical.left_key,
                logical.right_key,
            )
        if isinstance(logical, lp.LogicalUnionAll):
            return UnionAll([self.plan(child) for child in logical.inputs])
        if isinstance(logical, lp.LogicalMergeUnion):
            return MergeUnion(
                self.plan(logical.left),
                self.plan(logical.right),
                list(logical.keys),
            )
        raise PlanError(f"cannot plan logical node {type(logical).__name__}")

    # -- scans & filters ---------------------------------------------------

    def _plan_scan(self, logical: lp.LogicalScan) -> TableScan:
        if not isinstance(logical, lp.LogicalScan):
            raise PlanError("PatchSelect child must plan to a scan")
        return TableScan(
            logical.table,
            list(logical.columns) if logical.columns is not None else None,
            scan_ranges=(
                list(logical.scan_ranges)
                if logical.scan_ranges is not None
                else None
            ),
            with_tid=logical.with_tid,
            batch_size=self.batch_size,
        )

    def _plan_filter(self, logical: lp.LogicalFilter) -> Operator:
        child = logical.child
        if (
            self.derive_scan_ranges
            and isinstance(child, lp.LogicalScan)
            and child.scan_ranges is None
        ):
            ranges = self._ranges_for_predicate(child, logical.predicate)
            if ranges is not None:
                child = lp.LogicalScan(
                    child.table,
                    child.columns,
                    child.with_tid,
                    scan_ranges=tuple(ranges),
                )
                return Filter(self._plan_scan(child), logical.predicate)
        return Filter(self.plan(child), logical.predicate)

    def _ranges_for_predicate(
        self, scan: lp.LogicalScan, predicate: Expression
    ) -> list[tuple[int, int]] | None:
        """Block-prune using one ``col <op> literal`` conjunct, if any."""
        conjunct = _find_prunable_conjunct(predicate, scan)
        if conjunct is None:
            return None
        column, op, literal_value = conjunct
        ranges: list[tuple[int, int]] = []
        for partition in scan.table.partitions:
            for start, stop in partition.scan_ranges_for_predicate(
                column, op, literal_value
            ):
                ranges.append(
                    (partition.base_rowid + start, partition.base_rowid + stop)
                )
        return ranges

    # -- joins ------------------------------------------------------------------

    def _plan_join(self, logical: lp.LogicalJoin) -> Operator:
        left = self.plan(logical.left)
        right = self.plan(logical.right)
        if logical.join_type == "left_outer":
            # Outer semantics pin the probe side to the preserved input.
            return HashJoin(
                left, right, logical.left_key, logical.right_key, "left_outer"
            )
        if self.choose_build_side:
            left_rows = estimate_rows(logical.left)
            right_rows = estimate_rows(logical.right)
        else:
            left_rows, right_rows = 1, 0  # keep right as build side
        if right_rows <= left_rows:
            return HashJoin(left, right, logical.left_key, logical.right_key)
        # Build on the (smaller) left side; restore column order after.
        swapped = HashJoin(right, left, logical.right_key, logical.left_key)
        outputs = [
            (name, ColumnRef(name)) for name in logical.schema.names
        ]
        return Project(swapped, outputs)


def _find_prunable_conjunct(
    predicate: Expression, scan: lp.LogicalScan
) -> tuple[str, str, object] | None:
    """First ``ColumnRef <op> Literal`` conjunct usable for block pruning."""
    if isinstance(predicate, And):
        found = _find_prunable_conjunct(predicate.left, scan)
        if found is not None:
            return found
        return _find_prunable_conjunct(predicate.right, scan)
    if not isinstance(predicate, Comparison):
        return None
    left, right, op = predicate.left, predicate.right, predicate.op
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = _flip(op)
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    if right.value is None:
        return None
    if left.name not in scan.schema:
        return None
    dtype = scan.schema.field(left.name).dtype
    try:
        literal_value = coerce_scalar(right.value, dtype)
    except Exception:
        return None
    if literal_value is None:
        return None
    return (left.name, op, literal_value)


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!=", "<>": "<>"}[op]
