"""Logical plan nodes.

The logical plan is what the SQL binder produces and what the optimizer
rewrites.  Nodes are immutable trees; each node derives its output
schema from its children against a catalog-resolved base (scans resolve
table schemas at construction).

Three nodes exist purely for the PatchIndex rewrites —
:class:`LogicalPatchSelect`, :class:`LogicalMergeUnion` and
:class:`LogicalMergeJoin` (the blue operators of the paper's Figure 3).
The binder never creates them; only the optimizer introduces them, and
the physical planner maps them 1:1 onto their operators.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import PlanError
from repro.exec.expressions import Expression
from repro.exec.operators.aggregate import AggregateSpec
from repro.exec.operators.scan import TID_COLUMN
from repro.exec.operators.sort import SortKey
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.patch_index import PatchIndex


class LogicalPlan(abc.ABC):
    """Base class for logical plan nodes."""

    @property
    @abc.abstractmethod
    def schema(self) -> Schema:
        """Output schema of the node."""

    @abc.abstractmethod
    def children(self) -> list["LogicalPlan"]:
        """Input nodes."""

    @abc.abstractmethod
    def with_children(self, children: list["LogicalPlan"]) -> "LogicalPlan":
        """Rebuild this node with replaced children (same arity)."""

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


def _require_arity(children: list[LogicalPlan], arity: int) -> None:
    if len(children) != arity:
        raise PlanError(f"expected {arity} children, got {len(children)}")


@dataclass(frozen=True)
class LogicalScan(LogicalPlan):
    """Scan of a base table, optionally projecting columns / adding tid.

    ``scan_ranges`` restricts the scan to global rowid intervals; the
    optimizer uses it both for block-pruned predicate scans and for the
    per-partition branches of the NSC sort rewrite.
    """

    table: Table
    columns: tuple[str, ...] | None = None
    with_tid: bool = False
    scan_ranges: tuple[tuple[int, int], ...] | None = None

    @property
    def schema(self) -> Schema:
        names = (
            list(self.columns)
            if self.columns is not None
            else list(self.table.schema.names)
        )
        fields = [self.table.schema.field(name) for name in names]
        if self.with_tid:
            fields.append(Field(TID_COLUMN, DataType.INT64, nullable=False))
        return Schema(fields)

    def children(self) -> list[LogicalPlan]:
        return []

    def with_children(self, children: list[LogicalPlan]) -> "LogicalScan":
        _require_arity(children, 0)
        return self

    def label(self) -> str:
        suffix = " +tid" if self.with_tid else ""
        if self.scan_ranges is not None:
            suffix += f" ranges={len(self.scan_ranges)}"
        return f"Scan({self.table.name}{suffix})"


@dataclass(frozen=True)
class LogicalFilter(LogicalPlan):
    child: LogicalPlan
    predicate: Expression

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalFilter":
        _require_arity(children, 1)
        return LogicalFilter(children[0], self.predicate)

    def label(self) -> str:
        return f"Filter({self.predicate})"


@dataclass(frozen=True)
class LogicalProject(LogicalPlan):
    child: LogicalPlan
    outputs: tuple[tuple[str, Expression], ...]

    @property
    def schema(self) -> Schema:
        child_schema = self.child.schema
        return Schema(
            Field(alias, expression.output_type(child_schema))
            for alias, expression in self.outputs
        )

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalProject":
        _require_arity(children, 1)
        return LogicalProject(children[0], self.outputs)

    def label(self) -> str:
        rendered = ", ".join(
            f"{expression} AS {alias}" for alias, expression in self.outputs
        )
        return f"Project({rendered})"


@dataclass(frozen=True)
class LogicalDistinct(LogicalPlan):
    child: LogicalPlan

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalDistinct":
        _require_arity(children, 1)
        return LogicalDistinct(children[0])

    def label(self) -> str:
        return "Distinct"


@dataclass(frozen=True)
class LogicalAggregate(LogicalPlan):
    child: LogicalPlan
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]

    @property
    def schema(self) -> Schema:
        child_schema = self.child.schema
        fields = [child_schema.field(name) for name in self.group_by]
        fields.extend(spec.output_field(child_schema) for spec in self.aggregates)
        return Schema(fields)

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalAggregate":
        _require_arity(children, 1)
        return LogicalAggregate(children[0], self.group_by, self.aggregates)

    def label(self) -> str:
        keys = ", ".join(self.group_by) if self.group_by else "<global>"
        aggs = ", ".join(
            f"{spec.func}({spec.column or '*'})" for spec in self.aggregates
        )
        return f"Aggregate(by=[{keys}], [{aggs}])"


@dataclass(frozen=True)
class LogicalSort(LogicalPlan):
    child: LogicalPlan
    keys: tuple[SortKey, ...]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalSort":
        _require_arity(children, 1)
        return LogicalSort(children[0], self.keys)

    def label(self) -> str:
        return f"Sort({', '.join(str(key) for key in self.keys)})"


@dataclass(frozen=True)
class LogicalLimit(LogicalPlan):
    child: LogicalPlan
    limit: int
    offset: int = 0

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalLimit":
        _require_arity(children, 1)
        return LogicalLimit(children[0], self.limit, self.offset)

    def label(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


@dataclass(frozen=True)
class LogicalJoin(LogicalPlan):
    """Equi-join (``inner`` or ``left_outer``).  ``left`` is the probe
    side in the default hash-join realization; ``right`` is the build
    side.  Left-outer joins preserve unmatched left rows and make the
    right columns nullable."""

    left: LogicalPlan
    right: LogicalPlan
    left_key: str
    right_key: str
    join_type: str = "inner"

    @property
    def schema(self) -> Schema:
        right_fields = list(self.right.schema.fields)
        if self.join_type == "left_outer":
            right_fields = [
                Field(field.name, field.dtype, True) for field in right_fields
            ]
        return Schema(list(self.left.schema.fields) + right_fields)

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalJoin":
        _require_arity(children, 2)
        return LogicalJoin(
            children[0], children[1], self.left_key, self.right_key, self.join_type
        )

    def label(self) -> str:
        return f"Join({self.left_key} = {self.right_key}, {self.join_type})"


@dataclass(frozen=True)
class LogicalUnionAll(LogicalPlan):
    inputs: tuple[LogicalPlan, ...]

    @property
    def schema(self) -> Schema:
        return self.inputs[0].schema

    def children(self) -> list[LogicalPlan]:
        return list(self.inputs)

    def with_children(self, children: list[LogicalPlan]) -> "LogicalUnionAll":
        _require_arity(children, len(self.inputs))
        return LogicalUnionAll(tuple(children))

    def label(self) -> str:
        return f"UnionAll({len(self.inputs)})"


# -- optimizer-introduced nodes (the blue operators of Figure 3) -----------------


@dataclass(frozen=True)
class LogicalPatchSelect(LogicalPlan):
    """PatchSelect directly above a scan (child must be a LogicalScan)."""

    child: LogicalPlan
    index: "PatchIndex" = field(repr=False)
    use_patches: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.child, LogicalScan):
            raise PlanError("LogicalPatchSelect child must be a scan")

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalPatchSelect":
        _require_arity(children, 1)
        return LogicalPatchSelect(children[0], self.index, self.use_patches)

    def label(self) -> str:
        mode = "use_patches" if self.use_patches else "exclude_patches"
        return f"PatchSelect({mode}, index={self.index.name})"


@dataclass(frozen=True)
class LogicalMergeUnion(LogicalPlan):
    left: LogicalPlan
    right: LogicalPlan
    keys: tuple[SortKey, ...]

    @property
    def schema(self) -> Schema:
        return self.left.schema

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalMergeUnion":
        _require_arity(children, 2)
        return LogicalMergeUnion(children[0], children[1], self.keys)

    def label(self) -> str:
        return f"MergeUnion({', '.join(str(key) for key in self.keys)})"


@dataclass(frozen=True)
class LogicalMergeJoin(LogicalPlan):
    left: LogicalPlan
    right: LogicalPlan
    left_key: str
    right_key: str

    @property
    def schema(self) -> Schema:
        return Schema(
            list(self.left.schema.fields) + list(self.right.schema.fields)
        )

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def with_children(self, children: list[LogicalPlan]) -> "LogicalMergeJoin":
        _require_arity(children, 2)
        return LogicalMergeJoin(
            children[0], children[1], self.left_key, self.right_key
        )

    def label(self) -> str:
        return f"MergeJoin({self.left_key} = {self.right_key})"
