"""Plan pretty-printing helpers (logical and physical)."""

from __future__ import annotations

from repro.exec.operators.base import Operator
from repro.plan.cardinality import estimate_rows
from repro.plan.logical import LogicalPlan


def explain_logical(plan: LogicalPlan, with_estimates: bool = True) -> str:
    """Indented rendering of a logical plan tree.

    With *with_estimates* each node is annotated with the optimizer's
    cardinality estimate (exact for PatchSelect nodes, which read
    ``|P_c|`` straight from the index).
    """
    if not with_estimates:
        return plan.explain()
    lines: list[str] = []

    def render(node: LogicalPlan, indent: int) -> None:
        lines.append(
            "  " * indent + f"{node.label()}  [~{estimate_rows(node)} rows]"
        )
        for child in node.children():
            render(child, indent + 1)

    render(plan, 0)
    return "\n".join(lines)


def explain_physical(operator: Operator) -> str:
    """Indented rendering of a physical operator tree."""
    return operator.explain()


def explain_both(
    logical: LogicalPlan, physical: Operator, verified: bool = False
) -> str:
    """Combined EXPLAIN output: logical plan, then the physical plan.

    *verified* appends the ``verified: ok`` footer — the caller's
    statement that :func:`repro.check.plan_verifier.verify_plan`
    accepted the physical plan (the planner runs it on every plan it
    produces, so EXPLAIN output normally carries the line).
    """
    rendered = (
        "== logical plan ==\n"
        f"{explain_logical(logical)}\n"
        "== physical plan ==\n"
        f"{explain_physical(physical)}"
    )
    if verified:
        rendered += "\nverified: ok"
    return rendered
