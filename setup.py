"""Setuptools shim for legacy editable installs (offline, no wheel pkg)."""

from setuptools import setup

setup()
