"""EXPLAIN ANALYZE and query profiles: actuals, details, feedback."""

import numpy as np
import pytest

from repro import Database, QueryProfile
from repro.core.advisor import ConstraintAdvisor
from repro.core.cost_model import CostModel
from repro.exec.result import collect
from repro.obs import CardinalityFeedback
from repro.obs.profile import profile_collect
from repro.plan.optimizer import Optimizer
from repro.plan.physical import PhysicalPlanner
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement


@pytest.fixture
def db() -> Database:
    """Five rows, two of which are NUC patches on c (3 and the second 6)."""
    db = Database()
    db.sql("CREATE TABLE t (c BIGINT, v BIGINT)")
    db.sql("INSERT INTO t VALUES (1, 10), (3, 20), (3, 30), (6, 40), (6, 50)")
    db.sql("CREATE PATCHINDEX pi ON t(c) TYPE UNIQUE")
    return db


@pytest.fixture
def sorted_db() -> Database:
    """Nearly sorted 500-row column: the sort rewrite passes the cost
    model, so its plan carries *both* PatchSelect modes (MergeUnion of
    an exclude_patches scan and a use_patches sort)."""
    db = Database()
    db.sql("CREATE TABLE big (c BIGINT)")
    rows = ", ".join(f"({i})" for i in range(500))
    db.sql(f"INSERT INTO big VALUES {rows}")
    db.sql("INSERT INTO big VALUES (3)")
    db.sql("CREATE PATCHINDEX ps ON big(c) TYPE SORTED")
    return db


class TestExplainAnalyzeStatement:
    def test_returns_plan_rows_with_actuals(self, db):
        result = db.sql("EXPLAIN ANALYZE SELECT c FROM t WHERE c > 1")
        assert result.column_names == ("plan",)
        text = result.text()
        assert "== query profile ==" in text
        assert "actual rows=" in text
        assert "time=" in text
        assert isinstance(result.profile, QueryProfile)

    def test_actual_vs_estimated_cardinalities(self, db):
        text = db.sql("EXPLAIN ANALYZE SELECT c FROM t").text()
        # The scan sees all five rows, and the planner estimated them.
        assert "est~5" in text
        assert "actual rows=5" in text

    def test_exclude_patches_details(self, db):
        result = db.sql("EXPLAIN ANALYZE SELECT COUNT(DISTINCT c) AS n FROM t")
        text = result.text()
        assert "mode=exclude_patches" in text
        assert "index=pi" in text
        assert "design=" in text
        nodes = result.profile.find("PatchSelect")
        assert nodes
        exclude = [
            n for n in nodes if n.details["mode"] == "exclude_patches"
        ][0]
        # Four patch tuples (both 3s and both 6s) out of 5 rows in.
        assert exclude.details["rows_in"] == 5
        assert exclude.details["patch_hits"] == 4
        assert exclude.rows == 1

    def test_both_modes_in_sort_rewrite(self, sorted_db):
        result = sorted_db.sql("EXPLAIN ANALYZE SELECT c FROM big ORDER BY c")
        text = result.text()
        assert "mode=exclude_patches" in text
        assert "mode=use_patches" in text
        assert "patch_hits=" in text
        modes = {
            node.details["mode"]
            for node in result.profile.find("PatchSelect")
        }
        assert modes == {"exclude_patches", "use_patches"}
        # Both branches partition the same scan: rows out sum to the table.
        assert (
            sum(n.rows for n in result.profile.find("PatchSelect")) == 501
        )

    def test_explain_without_analyze_has_no_actuals(self, db):
        result = db.sql("EXPLAIN SELECT c FROM t")
        assert "actual rows=" not in result.text()
        assert result.profile is None

    def test_explain_method_analyze_keyword(self, db):
        text = db.explain("SELECT c FROM t WHERE c > 3", analyze=True)
        assert "== query profile ==" in text
        assert "actual rows=2" in text


class TestProfileFlag:
    def test_profile_attaches_query_profile(self, db):
        result = db.sql("SELECT c FROM t WHERE c > 1", profile=True)
        assert isinstance(result.profile, QueryProfile)
        assert result.profile.total_seconds > 0
        scans = result.profile.find("TableScan")
        assert scans and scans[0].details["table"] == "t"
        assert scans[0].details["table_rows"] == 5

    def test_profile_off_by_default(self, db):
        assert db.sql("SELECT c FROM t").profile is None

    def test_profiled_results_match_unprofiled(self, sorted_db):
        query = "SELECT c FROM big ORDER BY c"
        plain = sorted_db.sql(query)
        profiled = sorted_db.sql(query, profile=True)
        assert plain.to_pylist() == profiled.to_pylist()

    def test_scan_observations(self, db):
        result = db.sql("SELECT c FROM t WHERE c >= 6", profile=True)
        observations = result.profile.scan_observations()
        assert observations == [("t", 5, 2)]


class TestParallelProfile:
    def test_parallel_operator_details(self):
        from repro.storage.schema import Field, Schema
        from repro.types import DataType

        db = Database()
        db.create_table_from_pydict(
            "p",
            Schema([Field("c", DataType.INT64)]),
            {"c": list(range(400))},
            partition_count=3,
        )
        force = CostModel(
            parallel_startup_weight=0.0, morsel_dispatch_weight=0.0
        )
        planner = PhysicalPlanner(
            parallelism=4, morsel_size=16, cost_model=force
        )

        def plan(sql):
            statement = parse_statement(sql)
            logical = Optimizer(db.catalog).optimize(
                Binder(db.catalog).bind_select(statement)
            )
            return planner.plan(logical)

        sql = "SELECT c FROM p WHERE c > 100"
        operator = plan(sql)
        assert "dop=" in operator.explain()
        result, profile = profile_collect(operator, sql)
        assert result.to_pylist() == collect(plan(sql)).to_pylist()

        [node] = [
            n for n in profile.root.walk() if "dop_used" in n.details
        ]
        assert node.details["dop"] == 4
        assert 1 <= node.details["dop_used"] <= 4
        assert node.details["morsels_run"] == node.details["morsels"] > 1
        assert node.details["queue_wait_s"] >= 0.0
        assert node.details["busy_s"] > 0.0
        # Worker fragment actuals were merged into the template subtree.
        template = node.children[0]
        assert sum(n.rows for n in template.walk()) > 0


class TestCardinalityFeedback:
    def test_ewma_smoothing(self):
        feedback = CardinalityFeedback(alpha=0.3)
        feedback.record_scan("t", 100, 60)
        feedback.record_scan("t", 100, 40)
        feedback.record_scan("t", 100, 80)
        expected = 0.3 * 0.8 + 0.7 * (0.3 * 0.4 + 0.7 * 0.6)
        assert feedback.selectivity("t") == pytest.approx(expected)
        assert feedback.observations("t") == 3

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            CardinalityFeedback(alpha=0.0)

    def test_profiled_queries_feed_database_feedback(self, db):
        assert db.feedback.selectivity("t") is None
        db.sql("SELECT c FROM t WHERE c >= 6", profile=True)
        assert db.feedback.selectivity("t") == pytest.approx(0.4)

    def test_advisor_consumes_observed_selectivity(self):
        rng = np.random.default_rng(5)
        n = 2000
        values = rng.permutation(n).astype(np.int64)
        values[rng.choice(n, 10, replace=False)] = 7
        db = Database()
        db.sql("CREATE TABLE w (u BIGINT)")
        rows = ", ".join(f"({int(v)})" for v in values)
        db.sql(f"INSERT INTO w VALUES {rows}")
        db.sql("SELECT u FROM w WHERE u < 200", profile=True)
        assert db.feedback.selectivity("w") is not None

        advisor = ConstraintAdvisor(db, nuc_threshold=0.05)
        proposals = advisor.analyze_all()
        assert proposals
        assert proposals[0].observed_selectivity == pytest.approx(
            db.feedback.selectivity("w")
        )
        assert "observed scan selectivity" in proposals[0].describe()
