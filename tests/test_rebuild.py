"""Tests for drift tracking and index rebuilds (self-management upkeep)."""


from repro import Database
from repro.core.advisor import ConstraintAdvisor
from repro.core.patch_index import PatchIndex
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(values):
    return Table.from_pydict(
        "t", Schema([Field("c", DataType.INT64)]), {"c": values}
    )


class TestDrift:
    def test_no_mutations_no_drift(self):
        table = make_table([1, 2, 3])
        index = PatchIndex.create("pi", table, "c", "unique")
        assert index.maintenance_stats() is None
        assert index.drift_rate() == 0.0

    def test_drift_counts_added_patches(self):
        table = make_table(list(range(100)))
        index = PatchIndex.create("pi", table, "c", "unique")
        for value in range(10):
            table.insert_rows([[value]])  # each demotes a kept row
        assert index.maintenance_stats() is not None
        assert index.drift_rate() > 0.1

    def test_rebuild_restores_minimality(self):
        table = make_table(list(range(50)))
        index = PatchIndex.create("pi", table, "c", "sorted")
        # Updates conservatively demote rows even when the result stays
        # sorted-compatible.
        table.update_rowid(10, "c", 10)  # same value: still a patch now
        assert index.patch_count == 1
        index.rebuild()
        assert index.patch_count == 0

    def test_rebuild_resets_design_choice(self):
        table = make_table(list(range(200)))
        index = PatchIndex.create("pi", table, "c", "unique")
        assert index.design == "identifier"  # zero patches
        # Make most rows duplicates via appends.
        table.insert_rows([[1]] * 150)
        index.rebuild()
        assert index.design == "bitmap"
        assert index.exception_rate > 0.4


class TestAdvisorUpkeep:
    def test_recommend_and_rebuild(self):
        db = Database()
        db.sql("CREATE TABLE t (c BIGINT)")
        rows = ", ".join(f"({i})" for i in range(100))
        db.sql(f"INSERT INTO t VALUES {rows}")
        db.sql("CREATE PATCHINDEX pi ON t(c) TYPE SORTED")
        advisor = ConstraintAdvisor(db)
        assert advisor.recommend_rebuilds() == []
        # Ten conservative same-value updates: drift without real
        # disorder.
        for rowid in range(10):
            db.table("t").update_rowid(rowid, "c", rowid)
        assert advisor.recommend_rebuilds(max_drift=0.05) == ["pi"]
        rebuilt = advisor.rebuild_drifted(max_drift=0.05)
        assert rebuilt == ["pi"]
        assert db.catalog.index("pi").patch_count == 0
        assert advisor.recommend_rebuilds(max_drift=0.05) == []
