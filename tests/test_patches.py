"""Unit and property tests for the two patch-set designs.

The identifier-based and bitmap-based designs must be observationally
identical; memory accounting must match the paper's numbers (64 bit per
identifier, 1 bit per tuple, crossover at 1/64).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.patches import (
    CROSSOVER_RATE,
    BitmapPatches,
    IdentifierPatches,
    PatchSet,
)
from repro.errors import StorageError


def both_designs(rowids, row_count):
    rowids = np.asarray(rowids, dtype=np.int64)
    return (
        IdentifierPatches(rowids, row_count),
        BitmapPatches.from_rowids(rowids, row_count),
    )


patch_sets = st.integers(0, 200).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.integers(0, max(0, n - 1)), max_size=n, unique=True).map(sorted),
    )
)


class TestConstruction:
    def test_build_dispatch(self):
        rowids = np.array([1, 5], dtype=np.int64)
        assert PatchSet.build(rowids, 10, "identifier").design == "identifier"
        assert PatchSet.build(rowids, 10, "bitmap").design == "bitmap"
        with pytest.raises(StorageError):
            PatchSet.build(rowids, 10, "btree")

    def test_unsorted_rowids_rejected(self):
        with pytest.raises(StorageError):
            IdentifierPatches(np.array([5, 1], dtype=np.int64), 10)

    def test_duplicate_rowids_rejected(self):
        with pytest.raises(StorageError):
            IdentifierPatches(np.array([3, 3], dtype=np.int64), 10)

    def test_out_of_range_rejected(self):
        with pytest.raises(StorageError):
            IdentifierPatches(np.array([10], dtype=np.int64), 10)
        with pytest.raises(StorageError):
            BitmapPatches.from_rowids(np.array([-1], dtype=np.int64), 10)

    def test_empty(self):
        for patches in both_designs([], 10):
            assert patches.patch_count() == 0
            assert patches.exception_rate() == 0.0
            assert not patches.mask_for_range(0, 10).any()


class TestObservationalEquivalence:
    @given(patch_sets)
    @settings(max_examples=150)
    def test_designs_agree(self, case):
        row_count, rowids = case
        ident, bitmap = both_designs(rowids, row_count)
        assert ident.patch_count() == bitmap.patch_count() == len(rowids)
        assert ident.rowids().tolist() == bitmap.rowids().tolist() == rowids
        full_ident = ident.mask_for_range(0, row_count)
        full_bitmap = bitmap.mask_for_range(0, row_count)
        assert full_ident.tolist() == full_bitmap.tolist()
        for rowid in range(row_count):
            expected = rowid in set(rowids)
            assert ident.contains(rowid) == expected
            assert bitmap.contains(rowid) == expected

    @given(patch_sets, st.data())
    @settings(max_examples=100)
    def test_subrange_masks_agree(self, case, data):
        row_count, rowids = case
        start = data.draw(st.integers(0, row_count))
        stop = data.draw(st.integers(start, row_count))
        ident, bitmap = both_designs(rowids, row_count)
        expected = [start + i in set(rowids) for i in range(stop - start)]
        assert ident.mask_for_range(start, stop).tolist() == expected
        assert bitmap.mask_for_range(start, stop).tolist() == expected

    def test_mask_out_of_bounds(self):
        for patches in both_designs([1], 4):
            with pytest.raises(StorageError):
                patches.mask_for_range(0, 5)


class TestMemoryAccounting:
    def test_identifier_is_8_bytes_per_patch(self):
        patches = IdentifierPatches(np.arange(100, dtype=np.int64), 1000)
        assert patches.memory_usage_bytes() == 800

    def test_bitmap_is_row_count_bits(self):
        patches = BitmapPatches.from_rowids(np.array([0], dtype=np.int64), 1000)
        assert patches.memory_usage_bytes() == 125  # 1000 bits
        # Independent of the patch count.
        dense = BitmapPatches.from_rowids(
            np.arange(999, dtype=np.int64), 1000
        )
        assert dense.memory_usage_bytes() == 125

    def test_crossover_rate(self):
        # 1 bit vs 64 bit per element (paper §V).
        assert CROSSOVER_RATE == pytest.approx(1 / 64)
        n = 64_000
        at_crossover = int(n * CROSSOVER_RATE)
        ident = IdentifierPatches(
            np.arange(at_crossover, dtype=np.int64), n
        )
        bitmap = BitmapPatches.from_rowids(
            np.arange(at_crossover, dtype=np.int64), n
        )
        assert ident.memory_usage_bytes() == bitmap.memory_usage_bytes()


class TestMaintenanceMutations:
    @pytest.mark.parametrize("design", ["identifier", "bitmap"])
    def test_extend(self, design):
        patches = PatchSet.build(np.array([2], dtype=np.int64), 5, design)
        patches.extend(8, np.array([6, 7], dtype=np.int64))
        assert patches.row_count == 8
        assert patches.rowids().tolist() == [2, 6, 7]

    @pytest.mark.parametrize("design", ["identifier", "bitmap"])
    def test_extend_rejects_old_rowids(self, design):
        patches = PatchSet.build(np.array([2], dtype=np.int64), 5, design)
        with pytest.raises(StorageError):
            patches.extend(8, np.array([3], dtype=np.int64))

    @pytest.mark.parametrize("design", ["identifier", "bitmap"])
    def test_add(self, design):
        patches = PatchSet.build(np.array([2], dtype=np.int64), 5, design)
        patches.add(np.array([0, 2, 4], dtype=np.int64))
        assert patches.rowids().tolist() == [0, 2, 4]

    @pytest.mark.parametrize("design", ["identifier", "bitmap"])
    def test_remap_after_delete(self, design):
        # rows 0..9, patches {1, 4, 8}; delete rows {0, 4, 7}
        patches = PatchSet.build(np.array([1, 4, 8], dtype=np.int64), 10, design)
        patches.remap_after_delete(np.array([0, 4, 7], dtype=np.int64))
        # survivors: 1,2,3,5,6,8,9 -> new ids 0..6; patch 1->0, 8->5
        assert patches.row_count == 7
        assert patches.rowids().tolist() == [0, 5]

    @given(patch_sets, st.data())
    @settings(max_examples=100)
    def test_remap_property(self, case, data):
        row_count, rowids = case
        deleted = data.draw(
            st.lists(
                st.integers(0, max(0, row_count - 1)),
                max_size=row_count,
                unique=True,
            ).map(sorted)
        )
        if row_count == 0:
            return
        expected_survivors = [r for r in range(row_count) if r not in set(deleted)]
        renumber = {old: new for new, old in enumerate(expected_survivors)}
        expected = [renumber[r] for r in rowids if r in renumber]
        for design in ("identifier", "bitmap"):
            patches = PatchSet.build(np.asarray(rowids, dtype=np.int64), row_count, design)
            patches.remap_after_delete(np.asarray(deleted, dtype=np.int64))
            assert patches.rowids().tolist() == expected
            assert patches.row_count == row_count - len(deleted)


class TestDunder:
    def test_len_and_contains(self):
        patches = IdentifierPatches(np.array([3], dtype=np.int64), 5)
        assert len(patches) == 1
        assert 3 in patches
        assert 2 not in patches
        assert "x" not in patches


class TestBitmapPatchCountCache:
    """patch_count() must stay correct across every mutation — the
    cached popcount must never go stale."""

    def test_from_rowids_seeds_cache(self):
        patches = BitmapPatches.from_rowids(
            np.array([1, 5, 9], dtype=np.int64), 16
        )
        assert patches._patch_count == 3
        assert patches.patch_count() == 3

    def test_lazy_recount_after_add(self):
        patches = BitmapPatches.from_rowids(
            np.array([1, 5], dtype=np.int64), 16
        )
        patches.add(np.array([3, 5, 5], dtype=np.int64))  # 5 re-marked
        assert patches._patch_count is None  # invalidated, not guessed
        assert patches.patch_count() == 3  # {1, 3, 5}
        assert patches._patch_count == 3  # recount now cached

    def test_extend_without_new_patches_keeps_cache(self):
        patches = BitmapPatches.from_rowids(
            np.array([0, 7], dtype=np.int64), 8
        )
        assert patches.patch_count() == 2
        patches.extend(24, np.array([], dtype=np.int64))
        # Zero-padded growth cannot change the popcount.
        assert patches._patch_count == 2
        assert patches.patch_count() == 2

    def test_extend_with_new_patches_recounts(self):
        patches = BitmapPatches.from_rowids(
            np.array([0, 7], dtype=np.int64), 8
        )
        patches.extend(16, np.array([9, 12], dtype=np.int64))
        assert patches.patch_count() == 4

    def test_remap_after_delete_updates_cache(self):
        patches = BitmapPatches.from_rowids(
            np.array([1, 4, 8], dtype=np.int64), 10
        )
        patches.remap_after_delete(np.array([4], dtype=np.int64))
        assert patches._patch_count == 2
        assert patches.patch_count() == 2
        assert patches.rowids().tolist() == [1, 7]

    def test_cached_count_matches_identifier_design(self):
        rowids = np.array([2, 3, 11, 30], dtype=np.int64)
        identifier, bitmap = both_designs(rowids, 40)
        for design in (identifier, bitmap):
            design.add(np.array([5], dtype=np.int64))
            design.extend(48, np.array([41], dtype=np.int64))
            design.remap_after_delete(np.array([3, 45], dtype=np.int64))
        assert bitmap.patch_count() == identifier.patch_count()
        assert bitmap.rowids().tolist() == identifier.rowids().tolist()


class TestIdentifierExtendFastPath:
    def test_sorted_append_skips_sort(self, monkeypatch):
        patches = IdentifierPatches(np.array([1, 3], dtype=np.int64), 8)

        def fail_sort(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("np.sort called on presorted input")

        monkeypatch.setattr(np, "sort", fail_sort)
        patches.extend(16, np.array([9, 12, 15], dtype=np.int64))
        assert patches.rowids().tolist() == [1, 3, 9, 12, 15]
        assert patches.row_count == 16

    def test_unsorted_append_still_sorted(self):
        patches = IdentifierPatches(np.array([1, 3], dtype=np.int64), 8)
        patches.extend(16, np.array([15, 9, 12], dtype=np.int64))
        assert patches.rowids().tolist() == [1, 3, 9, 12, 15]

    def test_duplicate_appended_rowids_rejected(self):
        patches = IdentifierPatches(np.array([1], dtype=np.int64), 8)
        with pytest.raises(StorageError):
            patches.extend(16, np.array([9, 9], dtype=np.int64))

    def test_empty_extend_only_grows_row_count(self):
        patches = IdentifierPatches(np.array([1], dtype=np.int64), 8)
        patches.extend(20, np.array([], dtype=np.int64))
        assert patches.row_count == 20
        assert patches.rowids().tolist() == [1]
