"""Sessions and snapshot views: knobs, delegation, pin lifecycle."""

import os

import pytest

import repro
from repro.errors import ExecutionError, StorageError
from repro.sql.session import Session, statement_kind


@pytest.fixture
def db():
    db = repro.connect()
    db.sql("CREATE TABLE t (c BIGINT, v VARCHAR(5))")
    db.sql("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    return db


@pytest.fixture
def durable(tmp_path):
    db = repro.connect(tmp_path / "data", parallelism=1)
    db.sql("CREATE TABLE t (c BIGINT, v VARCHAR(5))")
    db.sql("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    return db


class TestStatementKind:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("SELECT 1", "read"),
            ("  select c from t", "read"),
            ("EXPLAIN SELECT c FROM t", "read"),
            ("explain analyze select 1", "read"),
            ("CHECKPOINT", "checkpoint"),
            ("checkpoint;", "write"),  # conservative: token is 'checkpoint;'
            ("INSERT INTO t VALUES (1)", "write"),
            ("CREATE TABLE u (x BIGINT)", "write"),
            ("DELETE FROM t", "write"),
            ("DROP TABLE t", "write"),
            ("", "write"),
        ],
    )
    def test_classification(self, text, expected):
        assert statement_kind(text) == expected


class TestSessionBasics:
    def test_database_session_returns_session(self, db):
        session = db.session()
        assert isinstance(session, Session)
        assert session.sql("SELECT c FROM t").rowcount == 3
        session.close()

    def test_context_manager_closes(self, db):
        with db.session() as session:
            session.sql("SELECT c FROM t")
        assert session.closed
        with pytest.raises(ExecutionError, match="closed"):
            session.sql("SELECT c FROM t")

    def test_close_is_idempotent(self, db):
        session = db.session()
        session.close()
        session.close()

    def test_explain_goes_through_session(self, db):
        with db.session(parallelism=1) as session:
            assert "logical plan" in session.explain("SELECT c FROM t")

    def test_sticky_parallelism_knob(self, db):
        with db.session(parallelism=1) as session:
            result = session.sql("SELECT c FROM t", profile=True)
        dop_values = [
            node.details.get("dop_used")
            for node in result.profile.root.walk()
            if "dop_used" in node.details
        ]
        assert all(value == 1 for value in dop_values)

    def test_sticky_profile_knob(self, db):
        with db.session(profile=True) as session:
            assert session.sql("SELECT c FROM t").profile is not None
            # Per-statement override wins over the session knob.
            assert session.sql("SELECT c FROM t", profile=False).profile is None

    def test_session_counts_statements(self, db):
        with db.session(label="job1") as session:
            session.sql("SELECT c FROM t")
            session.sql("SELECT v FROM t")
            assert session.statements == 2
        assert db.obs.counter("session.job1.statements").value == 2
        assert db.obs.counter("session.opened").value == 1
        assert db.obs.counter("session.closed").value == 1

    def test_database_sql_uses_implicit_session(self, db):
        db.sql("SELECT c FROM t")
        assert db.obs.counter("session.statements").value >= 1
        # The implicit session does not count as an opened session.
        assert db.obs.counter("session.opened").value == 0

    def test_snapshot_reads_degrade_on_memory_engine(self, db):
        with db.session(snapshot_reads=True) as session:
            assert session.snapshot_reads is False
            assert session.sql("SELECT c FROM t").rowcount == 3


class TestSnapshotView:
    def test_snapshot_requires_durable_engine(self, db):
        with pytest.raises(StorageError, match="durable"):
            db.snapshot()

    def test_snapshot_is_stable_across_writes(self, durable):
        with durable.snapshot() as view:
            durable.sql("INSERT INTO t VALUES (4, 'd')")
            assert view.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3
        assert durable.sql("SELECT COUNT(*) AS n FROM t").scalar() == 4

    def test_snapshot_is_stable_across_checkpoint(self, durable):
        with durable.snapshot() as view:
            durable.sql("INSERT INTO t VALUES (4, 'd')")
            durable.checkpoint()
            assert view.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3
            assert sorted(view.sql("SELECT v FROM t").column("v").to_pylist()) == [
                "a",
                "b",
                "c",
            ]

    def test_snapshot_rejects_writes(self, durable):
        with durable.snapshot() as view:
            with pytest.raises(ExecutionError, match="read-only"):
                view.sql("INSERT INTO t VALUES (9, 'z')")

    def test_snapshot_view_closed_is_idempotent(self, durable):
        view = durable.snapshot()
        view.close()
        view.close()
        with pytest.raises(ExecutionError, match="closed"):
            view.sql("SELECT c FROM t")

    def test_same_state_shares_one_handle(self, durable):
        first = durable.snapshot()
        second = durable.snapshot()
        assert first.handle is second.handle
        assert first.handle.pins == 2
        first.close()
        second.close()
        assert first.handle.pins == 0

    def test_snapshot_explain(self, durable):
        with durable.snapshot() as view:
            assert "logical plan" in view.explain("SELECT c FROM t")

    def test_deferred_generation_gc(self, durable, tmp_path):
        durable.checkpoint()
        segments = tmp_path / "data" / "segments"
        old_generations = set(os.listdir(segments))
        view = durable.snapshot()
        durable.sql("INSERT INTO t VALUES (4, 'd')")
        durable.checkpoint()
        # The pinned generation survives the checkpoint that superseded it.
        assert old_generations <= set(os.listdir(segments))
        assert view.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3
        view.close()
        remaining = set(os.listdir(segments))
        assert old_generations.isdisjoint(remaining)
        assert len(remaining) == 1

    def test_snapshot_catalog_carries_pinned_patchindexes(self, durable):
        durable.sql("CREATE PATCHINDEX pi ON t(c) TYPE UNIQUE")
        with durable.snapshot() as view:
            # The snapshot builds its own index over the pinned tables —
            # never the live index, whose rowids track the moving state.
            snapshot_indexes = view.catalog.indexes_on("t")
            assert [index.name for index in snapshot_indexes] == ["pi"]
            assert snapshot_indexes[0] is not durable.catalog.index("pi")
            assert snapshot_indexes[0].delta_sink is None
            assert view.sql("SELECT COUNT(DISTINCT c) AS n FROM t").scalar() == 3

    def test_session_snapshot_reads_on_durable(self, durable):
        with durable.session(snapshot_reads=True) as session:
            assert session.snapshot_reads is True
            assert session.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3
            session.sql("INSERT INTO t VALUES (4, 'd')")
            assert session.sql("SELECT COUNT(*) AS n FROM t").scalar() == 4
        assert durable.obs.counter("storage.snapshot.pins").value >= 2


class TestGroupCommit:
    def test_deferred_sync_batches_fsyncs(self, durable):
        wal = durable.wal
        with wal.deferred_sync():
            durable.sql("INSERT INTO t VALUES (10, 'x')")
            durable.sql("INSERT INTO t VALUES (11, 'y')")
        assert durable.obs.counter("wal.group_commit.batches").value == 1
        assert durable.obs.counter("wal.group_commit.records").value == 2

    def test_deferred_sync_is_reentrant(self, durable):
        wal = durable.wal
        with wal.deferred_sync():
            with wal.deferred_sync():
                durable.sql("INSERT INTO t VALUES (10, 'x')")
        assert durable.obs.counter("wal.group_commit.batches").value == 1

    def test_records_survive_reopen_after_deferred_sync(self, tmp_path):
        db = repro.connect(tmp_path / "gc", parallelism=1)
        db.sql("CREATE TABLE t (c BIGINT)")
        with db.wal.deferred_sync():
            db.sql("INSERT INTO t VALUES (1)")
            db.sql("INSERT INTO t VALUES (2)")
        db.close()
        reopened = repro.connect(tmp_path / "gc", parallelism=1)
        assert reopened.sql("SELECT COUNT(*) AS n FROM t").scalar() == 2
