"""Tests for the PatchIndex query rewrites (paper §VI-B, Figure 3).

The central property: for every rewrite, the optimized plan returns the
same multiset of rows as the unoptimized plan, across random data,
exception rates, partition counts and pipeline shapes.
"""

from hypothesis import given, settings, strategies as st

from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.exec.expressions import ColumnRef, Comparison, Literal
from repro.exec.operators.aggregate import AggregateSpec
from repro.exec.operators.sort import SortKey
from repro.exec.result import collect
from repro.plan import logical as lp
from repro.plan.optimizer import Optimizer, OptimizerOptions, match_scan_pipeline
from repro.plan.physical import PhysicalPlanner
from repro.storage.catalog import Catalog
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def build_catalog(
    values, kind, partition_count=2, mode=PatchIndexMode.AUTO, scope="global"
):
    table = Table.from_pydict(
        "t",
        Schema([Field("c", DataType.INT64), Field("pay", DataType.INT64)]),
        {"c": values, "pay": list(range(len(values)))},
        partition_count=partition_count,
    )
    catalog = Catalog()
    catalog.add_table(table)
    index = PatchIndex.create("pi", table, "c", kind, mode=mode, scope=scope)
    catalog.add_index(index)
    return catalog, table, index


def run(plan):
    return collect(PhysicalPlanner().plan(plan))


def optimizer(catalog, always=True, **kwargs):
    return Optimizer(catalog, OptimizerOptions(always_rewrite=always, **kwargs))


def plan_contains(plan, node_type) -> bool:
    if isinstance(plan, node_type):
        return True
    return any(plan_contains(child, node_type) for child in plan.children())


class TestPipelineMatcher:
    def test_matches_scan(self):
        catalog, table, __ = build_catalog([1, 2], "unique")
        pipeline = match_scan_pipeline(lp.LogicalScan(table))
        assert pipeline is not None
        assert pipeline.column_map == {"c": "c", "pay": "pay"}

    def test_matches_filter_project_chain(self):
        catalog, table, __ = build_catalog([1, 2], "unique")
        plan = lp.LogicalProject(
            lp.LogicalFilter(
                lp.LogicalScan(table),
                Comparison(">", ColumnRef("c"), Literal(0)),
            ),
            (("renamed", ColumnRef("c")),),
        )
        pipeline = match_scan_pipeline(plan)
        assert pipeline is not None
        assert pipeline.column_map == {"renamed": "c"}

    def test_rejects_computed_projection(self):
        from repro.exec.expressions import Arithmetic

        catalog, table, __ = build_catalog([1, 2], "unique")
        plan = lp.LogicalProject(
            lp.LogicalScan(table),
            (("x", Arithmetic("+", ColumnRef("c"), Literal(1))),),
        )
        assert match_scan_pipeline(plan) is None

    def test_rejects_aggregate(self):
        catalog, table, __ = build_catalog([1, 2], "unique")
        plan = lp.LogicalAggregate(
            lp.LogicalScan(table), (), (AggregateSpec("count_star", None, "n"),)
        )
        assert match_scan_pipeline(plan) is None


class TestDistinctRewrite:
    def test_plan_shape(self):
        catalog, table, __ = build_catalog([1, 1, 2, 3], "unique")
        plan = lp.LogicalDistinct(lp.LogicalScan(table, ("c",)))
        optimized = optimizer(catalog).optimize(plan)
        assert isinstance(optimized, lp.LogicalUnionAll)
        assert plan_contains(optimized, lp.LogicalPatchSelect)

    def test_disabled_by_option(self):
        catalog, table, __ = build_catalog([1, 1, 2, 3], "unique")
        plan = lp.LogicalDistinct(lp.LogicalScan(table, ("c",)))
        options = OptimizerOptions(rewrite_distinct=False, always_rewrite=True)
        optimized = Optimizer(catalog, options).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalPatchSelect)

    def test_no_index_no_rewrite(self):
        catalog, table, index = build_catalog([1, 1, 2, 3], "sorted")
        plan = lp.LogicalDistinct(lp.LogicalScan(table, ("c",)))
        optimized = optimizer(catalog).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalPatchSelect)

    def test_cost_model_gates_high_rates(self):
        # Every value duplicated: the patched plan cannot win.
        catalog, table, __ = build_catalog([1, 1, 2, 2], "unique")
        plan = lp.LogicalDistinct(lp.LogicalScan(table, ("c",)))
        optimized = optimizer(catalog, always=False).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalPatchSelect)

    def test_multi_column_distinct_uses_any_nuc(self):
        catalog, table, __ = build_catalog([1, 1, 2, 3], "unique")
        plan = lp.LogicalDistinct(lp.LogicalScan(table))  # (c, pay)
        optimized = optimizer(catalog).optimize(plan)
        assert plan_contains(optimized, lp.LogicalPatchSelect)
        got = sorted(run(optimized).to_pylist())
        expected = sorted(run(plan).to_pylist())
        assert got == expected

    @given(
        st.lists(st.one_of(st.none(), st.integers(0, 10)), max_size=60),
        st.integers(1, 3),
        st.sampled_from([PatchIndexMode.IDENTIFIER, PatchIndexMode.BITMAP]),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_equivalence(self, values, partitions, mode, with_filter):
        catalog, table, __ = build_catalog(
            values, "unique", partition_count=partitions, mode=mode
        )
        child: lp.LogicalPlan = lp.LogicalScan(table, ("c",))
        if with_filter:
            child = lp.LogicalFilter(
                child, Comparison(">", ColumnRef("c"), Literal(2))
            )
        plan = lp.LogicalDistinct(child)
        optimized = optimizer(catalog).optimize(plan)
        assert plan_contains(optimized, lp.LogicalPatchSelect) == bool(values) or not values
        got = sorted(run(optimized).column("c").to_pylist(), key=str)
        expected = sorted(run(plan).column("c").to_pylist(), key=str)
        assert got == expected


class TestCountDistinctRewrite:
    def make_plan(self, table):
        return lp.LogicalAggregate(
            lp.LogicalScan(table, ("c",)),
            (),
            (AggregateSpec("count_distinct", "c", "n"),),
        )

    def test_plan_shape(self):
        catalog, table, __ = build_catalog([1, 1, 2, 3], "unique")
        optimized = optimizer(catalog).optimize(self.make_plan(table))
        assert isinstance(optimized, lp.LogicalAggregate)
        assert optimized.aggregates[0].func == "count"
        assert plan_contains(optimized, lp.LogicalPatchSelect)

    def test_group_by_not_rewritten(self):
        catalog, table, __ = build_catalog([1, 1, 2, 3], "unique")
        plan = lp.LogicalAggregate(
            lp.LogicalScan(table),
            ("pay",),
            (AggregateSpec("count_distinct", "c", "n"),),
        )
        optimized = optimizer(catalog).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalPatchSelect)

    @given(st.lists(st.one_of(st.none(), st.integers(0, 8)), max_size=60), st.integers(1, 3))
    @settings(max_examples=80, deadline=None)
    def test_equivalence(self, values, partitions):
        catalog, table, __ = build_catalog(
            values, "unique", partition_count=partitions
        )
        plan = self.make_plan(table)
        optimized = optimizer(catalog).optimize(plan)
        assert run(optimized).scalar() == run(plan).scalar()


class TestSortRewrite:
    def test_plan_shape_single_partition(self):
        catalog, table, __ = build_catalog([1, 9, 2, 3], "sorted", partition_count=1)
        plan = lp.LogicalSort(lp.LogicalScan(table, ("c",)), (SortKey("c"),))
        optimized = optimizer(catalog).optimize(plan)
        assert isinstance(optimized, lp.LogicalMergeUnion)

    def test_partition_scope_multi_partition_merges_runs(self):
        catalog, table, __ = build_catalog(
            list(range(8)), "sorted", partition_count=3, scope="partition"
        )
        plan = lp.LogicalSort(lp.LogicalScan(table, ("c",)), (SortKey("c"),))
        optimized = optimizer(catalog).optimize(plan)
        assert isinstance(optimized, lp.LogicalMergeUnion)
        # Partition-local patch sets leave per-partition sorted runs;
        # the exclude branch carries a run-merging Sort on top of the
        # PatchSelect (a K-way merge in this serial engine).
        exclude_branch = optimized.left
        assert isinstance(exclude_branch, lp.LogicalSort)
        assert plan_contains(exclude_branch, lp.LogicalPatchSelect)

    def test_global_scope_needs_no_run_merge(self):
        catalog, table, __ = build_catalog(
            list(range(8)), "sorted", partition_count=3, scope="global"
        )
        plan = lp.LogicalSort(lp.LogicalScan(table, ("c",)), (SortKey("c"),))
        optimized = optimizer(catalog).optimize(plan)
        assert isinstance(optimized, lp.LogicalMergeUnion)
        assert not isinstance(optimized.left, lp.LogicalSort)

    def test_single_partition_needs_no_run_merge(self):
        catalog, table, __ = build_catalog(
            list(range(8)), "sorted", partition_count=1, scope="partition"
        )
        plan = lp.LogicalSort(lp.LogicalScan(table, ("c",)), (SortKey("c"),))
        optimized = optimizer(catalog).optimize(plan)
        assert isinstance(optimized, lp.LogicalMergeUnion)
        assert not isinstance(optimized.left, lp.LogicalSort)

    def test_direction_mismatch_no_rewrite(self):
        catalog, table, __ = build_catalog([1, 9, 2, 3], "sorted")
        plan = lp.LogicalSort(
            lp.LogicalScan(table, ("c",)), (SortKey("c", ascending=False),)
        )
        optimized = optimizer(catalog).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalPatchSelect)

    def test_multi_key_not_rewritten(self):
        catalog, table, __ = build_catalog([1, 9, 2, 3], "sorted")
        plan = lp.LogicalSort(
            lp.LogicalScan(table), (SortKey("c"), SortKey("pay"))
        )
        optimized = optimizer(catalog).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalPatchSelect)

    @given(
        st.lists(st.one_of(st.none(), st.integers(0, 30)), max_size=60),
        st.integers(1, 4),
        st.sampled_from([PatchIndexMode.IDENTIFIER, PatchIndexMode.BITMAP]),
        st.booleans(),
        st.sampled_from(["global", "partition"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_equivalence(self, values, partitions, mode, with_filter, scope):
        catalog, table, __ = build_catalog(
            values, "sorted", partition_count=partitions, mode=mode, scope=scope
        )
        child: lp.LogicalPlan = lp.LogicalScan(table, ("c",))
        if with_filter:
            child = lp.LogicalFilter(
                child, Comparison("<", ColumnRef("c"), Literal(20))
            )
        plan = lp.LogicalSort(child, (SortKey("c"),))
        optimized = optimizer(catalog).optimize(plan)
        got = run(optimized).column("c").to_pylist()
        expected = run(plan).column("c").to_pylist()
        assert got == expected


class TestJoinRewrite:
    def make_catalog(self, fact_values, dim_keys, partitions=2):
        catalog, fact, index = build_catalog(
            fact_values, "sorted", partition_count=partitions
        )
        dim = Table.from_pydict(
            "d",
            Schema([Field("k", DataType.INT64), Field("label", DataType.INT64)]),
            {"k": dim_keys, "label": [i * 10 for i in range(len(dim_keys))]},
        )
        catalog.add_table(dim)
        return catalog, fact, dim

    def test_plan_shape(self):
        catalog, fact, dim = self.make_catalog([1, 9, 2, 3], sorted({1, 2, 3, 9}))
        plan = lp.LogicalJoin(
            lp.LogicalScan(fact, ("c",)), lp.LogicalScan(dim), "c", "k"
        )
        optimized = optimizer(catalog).optimize(plan)
        assert isinstance(optimized, lp.LogicalUnionAll)
        assert plan_contains(optimized, lp.LogicalMergeJoin)

    def test_unsorted_other_side_no_rewrite(self):
        catalog, fact, dim = self.make_catalog([1, 9, 2, 3], [9, 1, 3, 2])
        plan = lp.LogicalJoin(
            lp.LogicalScan(fact, ("c",)), lp.LogicalScan(dim), "c", "k"
        )
        optimized = optimizer(catalog).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalMergeJoin)

    def test_left_outer_not_rewritten(self):
        catalog, fact, dim = self.make_catalog([1, 2], [1, 2])
        plan = lp.LogicalJoin(
            lp.LogicalScan(fact, ("c",)),
            lp.LogicalScan(dim),
            "c",
            "k",
            "left_outer",
        )
        optimized = optimizer(catalog).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalMergeJoin)

    def test_output_column_order_preserved(self):
        catalog, fact, dim = self.make_catalog([1, 9, 2, 3], [1, 2, 3, 9])
        plan = lp.LogicalJoin(
            lp.LogicalScan(fact, ("c",)), lp.LogicalScan(dim), "c", "k"
        )
        optimized = optimizer(catalog).optimize(plan)
        assert optimized.schema.names == plan.schema.names

    def test_index_on_right_side_also_matches(self):
        catalog, fact, dim = self.make_catalog([1, 9, 2, 3], [1, 2, 3, 9])
        plan = lp.LogicalJoin(
            lp.LogicalScan(dim), lp.LogicalScan(fact, ("c",)), "k", "c"
        )
        optimized = optimizer(catalog).optimize(plan)
        assert plan_contains(optimized, lp.LogicalMergeJoin)
        got = sorted(run(optimized).to_pylist())
        expected = sorted(run(plan).to_pylist())
        assert got == expected

    @given(
        st.lists(st.one_of(st.none(), st.integers(0, 20)), max_size=50),
        st.lists(st.integers(0, 20), max_size=20, unique=True).map(sorted),
        st.integers(1, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_equivalence(self, fact_values, dim_keys, partitions):
        catalog, fact, dim = self.make_catalog(
            fact_values, dim_keys, partitions
        )
        plan = lp.LogicalJoin(
            lp.LogicalScan(fact, ("c",)), lp.LogicalScan(dim), "c", "k"
        )
        optimized = optimizer(catalog).optimize(plan)
        got = sorted(run(optimized).to_pylist())
        expected = sorted(run(plan).to_pylist())
        assert got == expected


class TestOptimizerOptions:
    def test_use_patch_indexes_master_switch(self):
        catalog, table, __ = build_catalog([1, 1, 2, 3], "unique")
        plan = lp.LogicalDistinct(lp.LogicalScan(table, ("c",)))
        options = OptimizerOptions(use_patch_indexes=False, always_rewrite=True)
        optimized = Optimizer(catalog, options).optimize(plan)
        assert not plan_contains(optimized, lp.LogicalPatchSelect)
