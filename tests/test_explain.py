"""Tests for plan explain rendering (estimates, EXPLAIN statement)."""

from repro import Database
from repro.plan import logical as lp
from repro.plan.explain import explain_both, explain_logical
from repro.plan.physical import PhysicalPlanner
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_scan():
    table = Table.from_pydict(
        "t", Schema([Field("a", DataType.INT64)]), {"a": list(range(10))}
    )
    return lp.LogicalScan(table)


class TestExplainLogical:
    def test_estimates_annotated(self):
        text = explain_logical(make_scan())
        assert "[~10 rows]" in text

    def test_estimates_can_be_disabled(self):
        text = explain_logical(make_scan(), with_estimates=False)
        assert "rows]" not in text

    def test_patch_select_estimate_is_exact(self):
        from repro.core.patch_index import PatchIndex

        table = Table.from_pydict(
            "t", Schema([Field("a", DataType.INT64)]), {"a": [1, 1, 2, 3]}
        )
        index = PatchIndex.create("pi", table, "a", "unique")
        plan = lp.LogicalPatchSelect(
            lp.LogicalScan(table), index, use_patches=True
        )
        assert "[~2 rows]" in explain_logical(plan)


class TestExplainBoth:
    def test_sections(self):
        scan = make_scan()
        operator = PhysicalPlanner().plan(scan)
        text = explain_both(scan, operator)
        assert "== logical plan ==" in text
        assert "== physical plan ==" in text
        assert "TableScan(t)" in text


class TestExplainStatement:
    def test_explain_through_sql(self):
        db = Database()
        db.sql("CREATE TABLE t (a BIGINT)")
        db.sql("INSERT INTO t VALUES (1), (2)")
        text = db.explain("SELECT a FROM t WHERE a > 1 ORDER BY a LIMIT 1")
        assert "TopN" in text
        assert "Filter" in text
        assert "rows]" in text
