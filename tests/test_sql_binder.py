"""Unit tests for the binder: name resolution, aggregation normalization."""

import pytest

from repro import Database
from repro.errors import BindError
from repro.plan import logical as lp
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement


@pytest.fixture
def db() -> Database:
    db = Database()
    db.sql("CREATE TABLE t (a BIGINT, b VARCHAR(10), c DOUBLE)")
    db.sql("CREATE TABLE u (a BIGINT, d BIGINT)")
    db.sql("INSERT INTO t VALUES (1, 'x', 0.5), (2, 'y', 1.5)")
    db.sql("INSERT INTO u VALUES (1, 10), (3, 30)")
    return db


def bind(db, sql):
    return Binder(db.catalog).bind_select(parse_statement(sql))


class TestResolution:
    def test_simple_columns(self, db):
        plan = bind(db, "SELECT a, b FROM t")
        assert plan.schema.names == ("a", "b")

    def test_select_star(self, db):
        plan = bind(db, "SELECT * FROM t")
        assert plan.schema.names == ("a", "b", "c")

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT nope FROM t")

    def test_unknown_table(self, db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            bind(db, "SELECT a FROM missing")

    def test_qualified_resolution(self, db):
        plan = bind(db, "SELECT t.a, u.d FROM t JOIN u ON t.a = u.a")
        # Standard SQL: the output name of a qualified reference is bare.
        assert plan.schema.names == ("a", "d")

    def test_ambiguous_column_in_join(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT a FROM t JOIN u ON t.a = u.a")

    def test_alias_binding(self, db):
        plan = bind(db, "SELECT x.a FROM t AS x")
        assert plan.schema.names == ("a",)

    def test_wrong_qualifier(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT z.a FROM t AS x")

    def test_join_keys_either_order(self, db):
        # ON u.a = t.a (reversed) resolves too.
        plan = bind(db, "SELECT t.b FROM t JOIN u ON u.a = t.a")
        assert plan.schema.names == ("b",)

    def test_select_without_from_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT 1")


class TestTid:
    def test_tid_reference_enables_virtual_column(self, db):
        plan = bind(db, "SELECT tid FROM t")
        assert plan.schema.names == ("tid",)

    def test_qualified_tid(self, db):
        plan = bind(db, "SELECT t.tid FROM t WHERE t.a > 1")
        assert plan.schema.names == ("tid",)

    def test_no_tid_no_virtual_column(self, db):
        plan = bind(db, "SELECT a FROM t")

        def has_tid_scan(node):
            if isinstance(node, lp.LogicalScan) and node.with_tid:
                return True
            return any(has_tid_scan(child) for child in node.children())

        assert not has_tid_scan(plan)


class TestAggregation:
    def test_count_star(self, db):
        plan = bind(db, "SELECT COUNT(*) AS n FROM t")
        assert plan.schema.names == ("n",)

    def test_group_by_and_having(self, db):
        plan = bind(
            db, "SELECT b, COUNT(*) AS n FROM t GROUP BY b HAVING COUNT(*) > 0"
        )
        assert plan.schema.names == ("b", "n")

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT a, COUNT(*) FROM t GROUP BY b")

    def test_shared_aggregate_between_select_and_having(self, db):
        plan = bind(
            db,
            "SELECT b, COUNT(*) AS n FROM t GROUP BY b HAVING COUNT(*) > 1",
        )
        # One aggregate call collected, referenced twice.
        def find_aggregate(node):
            if isinstance(node, lp.LogicalAggregate):
                return node
            for child in node.children():
                found = find_aggregate(child)
                if found is not None:
                    return found
            return None

        aggregate = find_aggregate(plan)
        assert len(aggregate.aggregates) == 1

    def test_aggregate_expression_arithmetic(self, db):
        plan = bind(db, "SELECT SUM(a) / COUNT(*) AS ratio FROM t")
        assert plan.schema.names == ("ratio",)

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT a FROM t WHERE COUNT(*) > 1")

    def test_sum_distinct_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT SUM(DISTINCT a) FROM t")

    def test_default_output_names(self, db):
        plan = bind(db, "SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
        assert plan.schema.names == ("count(*)", "count(distinct a)")


class TestOrderBy:
    def test_by_output_alias(self, db):
        plan = bind(db, "SELECT a AS x FROM t ORDER BY x")
        assert isinstance(plan, lp.LogicalSort)

    def test_by_source_column_in_output(self, db):
        plan = bind(db, "SELECT a, b FROM t ORDER BY b DESC")
        assert isinstance(plan, lp.LogicalSort)
        assert not plan.keys[0].ascending

    def test_missing_from_output_rejected(self, db):
        with pytest.raises(BindError):
            bind(db, "SELECT a FROM t ORDER BY c")

    def test_qualified_order_by_star_join(self, db):
        plan = bind(db, "SELECT * FROM t JOIN u ON t.a = u.a ORDER BY d")
        assert isinstance(plan, lp.LogicalSort)
        assert plan.keys[0].column == "u.d"


class TestDerivedTables:
    def test_subquery_binds_in_own_scope(self, db):
        plan = bind(
            db,
            "SELECT sub.a FROM (SELECT a FROM t WHERE a > 1) AS sub",
        )
        assert plan.schema.names == ("a",)

    def test_join_with_subquery(self, db):
        plan = bind(
            db,
            "SELECT t.a FROM t JOIN (SELECT a FROM u) AS s ON t.a = s.a",
        )
        assert plan.schema.names == ("a",)
