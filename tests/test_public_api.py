"""Public API surface: connect(), QueryResult ergonomics, deprecations."""

import pytest

import repro
from repro import Database
from repro.exec.result import QueryResult
from repro.sql.parser import parse_statement
from repro.sql.session import execute_sql, run_select


@pytest.fixture
def db() -> Database:
    db = repro.connect()
    db.sql("CREATE TABLE t (c BIGINT, v VARCHAR(5))")
    db.sql("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    return db


class TestConnect:
    def test_connect_returns_database(self):
        assert isinstance(repro.connect(), Database)

    def test_connect_with_wal_file_is_deprecated(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with pytest.warns(DeprecationWarning, match="durable directory"):
            db = repro.connect(wal)
        db.sql("CREATE TABLE t (c BIGINT)")
        assert wal.exists()

    def test_connect_with_existing_wal_file_is_deprecated(self, tmp_path):
        # An existing file triggers the legacy path regardless of suffix.
        wal = tmp_path / "metadata"
        wal.touch()
        with pytest.warns(DeprecationWarning):
            db = repro.connect(wal)
        db.sql("CREATE TABLE t (c BIGINT)")
        assert wal.read_text() != ""

    def test_connect_with_directory_opens_durable(self, tmp_path):
        db = repro.connect(tmp_path / "data", parallelism=1)
        assert db.engine.name == "durable"
        db.sql("CREATE TABLE t (c BIGINT)")
        db.sql("INSERT INTO t VALUES (7)")
        db.checkpoint()
        db.close()
        reopened = repro.connect(tmp_path / "data", parallelism=1)
        assert reopened.sql("SELECT c FROM t").scalar() == 7

    def test_connect_rejects_target_and_path(self, tmp_path):
        with pytest.raises(repro.ReproError):
            repro.connect(tmp_path / "a", path=tmp_path / "b")

    def test_connect_uri_rejects_storage_knobs(self):
        with pytest.raises(repro.ReproError, match="storage knobs"):
            repro.connect("repro://localhost:1", mmap=True)

    def test_parallelism_is_keyword_only(self):
        with pytest.raises(TypeError):
            repro.connect(None, 4)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_symbols_exported(self):
        for name in (
            "connect",
            "Database",
            "QueryProfile",
            "MetricsRegistry",
            "CardinalityFeedback",
        ):
            assert name in repro.__all__


class TestKeywordOnlyKnobs:
    def test_sql_rejects_positional_knobs(self, db):
        with pytest.raises(TypeError):
            db.sql("SELECT c FROM t", 1)

    def test_explain_rejects_positional_knobs(self, db):
        with pytest.raises(TypeError):
            db.explain("SELECT c FROM t", True)

    def test_sql_accepts_keyword_knobs(self, db):
        result = db.sql("SELECT c FROM t", parallelism=1, profile=True)
        assert result.row_count == 3
        assert result.profile is not None


class TestDeprecatedShims:
    def test_execute_sql_warns_and_works(self, db):
        with pytest.warns(DeprecationWarning, match="Database.sql"):
            result = execute_sql(db, "SELECT c FROM t")
        assert result.row_count == 3

    def test_run_select_warns_and_works(self, db):
        statement = parse_statement("SELECT v FROM t WHERE c = 2")
        with pytest.warns(DeprecationWarning, match="Database.sql"):
            result = run_select(db, statement)
        assert result.column("v").to_pylist() == ["b"]


class TestQueryResultErgonomics:
    def test_iter_and_len(self, db):
        result = db.sql("SELECT c, v FROM t")
        assert len(result) == 3
        assert list(result) == [(1, "a"), (2, "b"), (3, "c")]

    def test_rows_alias(self, db):
        result = db.sql("SELECT c FROM t WHERE c > 1")
        assert result.rows() == result.to_pylist() == [(2,), (3,)]

    def test_column_by_name(self, db):
        result = db.sql("SELECT c, v FROM t")
        assert result.column("v").to_pylist() == ["a", "b", "c"]

    def test_to_dicts(self, db):
        result = db.sql("SELECT c, v FROM t WHERE c < 3")
        assert result.to_dicts() == [
            {"c": 1, "v": "a"},
            {"c": 2, "v": "b"},
        ]

    def test_text_joins_single_column(self, db):
        result = db.sql("SELECT v FROM t")
        assert result.text() == "a\nb\nc"

    def test_text_rejects_multiple_columns(self, db):
        with pytest.raises(ValueError):
            db.sql("SELECT c, v FROM t").text()

    def test_message_result(self):
        result = QueryResult.message("3 rows inserted")
        assert result.column_names == ("status",)
        assert result.scalar() == "3 rows inserted"

    def test_from_lines(self):
        result = QueryResult.from_lines("plan", ["a", "b"])
        assert result.column("plan").to_pylist() == ["a", "b"]
        assert result.text() == "a\nb"

    def test_ddl_and_dml_return_query_results(self, db):
        created = db.sql("CREATE TABLE u (x BIGINT)")
        assert isinstance(created, QueryResult)
        assert "created" in created.scalar()
        inserted = db.sql("INSERT INTO u VALUES (1)")
        assert "1 rows inserted" in inserted.scalar()

    def test_explain_returns_query_result(self, db):
        result = db.sql("EXPLAIN SELECT c FROM t")
        assert isinstance(result, QueryResult)
        assert result.column_names == ("plan",)
        assert len(result) > 1


class TestDbApiCursorSurface:
    def test_rowcount(self, db):
        assert db.sql("SELECT c FROM t").rowcount == 3
        assert db.sql("SELECT c FROM t WHERE c > 99").rowcount == 0

    def test_fetchone_walks_rows_then_none(self, db):
        result = db.sql("SELECT c FROM t")
        assert result.fetchone() == (1,)
        assert result.fetchone() == (2,)
        assert result.fetchone() == (3,)
        assert result.fetchone() is None
        assert result.fetchone() is None

    def test_fetchmany_chunks(self, db):
        result = db.sql("SELECT c, v FROM t")
        assert result.fetchmany(2) == [(1, "a"), (2, "b")]
        assert result.fetchmany(2) == [(3, "c")]
        assert result.fetchmany(2) == []

    def test_fetchmany_default_size_is_one(self, db):
        result = db.sql("SELECT c FROM t")
        assert result.fetchmany() == [(1,)]

    def test_fetchmany_rejects_negative(self, db):
        with pytest.raises(ValueError):
            db.sql("SELECT c FROM t").fetchmany(-1)

    def test_fetchall_returns_remaining(self, db):
        result = db.sql("SELECT c FROM t")
        result.fetchone()
        assert result.fetchall() == [(2,), (3,)]
        assert result.fetchall() == []

    def test_getitem_by_column_name(self, db):
        result = db.sql("SELECT c, v FROM t")
        assert result["v"].to_pylist() == ["a", "b", "c"]
        assert "v" in result
        assert "nope" not in result

    def test_getitem_unknown_column_lists_names(self, db):
        with pytest.raises(KeyError, match="columns are"):
            db.sql("SELECT c FROM t")["nope"]

    def test_getitem_rejects_integers(self, db):
        with pytest.raises(TypeError):
            db.sql("SELECT c FROM t")[0]
