"""Unit and property tests for ColumnVector."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError, TypeMismatchError
from repro.storage.column import ColumnVector
from repro.types import DataType

int_or_none = st.one_of(st.none(), st.integers(-(2**31), 2**31))


class TestConstruction:
    def test_from_pylist_no_nulls(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [1, 2, 3])
        assert len(vector) == 3
        assert not vector.has_nulls
        assert vector.to_pylist() == [1, 2, 3]

    def test_from_pylist_with_nulls(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [1, None, 3])
        assert vector.has_nulls
        assert vector.null_count() == 1
        assert vector.to_pylist() == [1, None, 3]

    def test_all_valid_mask_normalized_to_none(self):
        vector = ColumnVector(
            DataType.INT64,
            np.array([1, 2], dtype=np.int64),
            np.array([True, True]),
        )
        assert vector.validity is None

    def test_dtype_mismatch_raises(self):
        with pytest.raises(TypeMismatchError):
            ColumnVector(DataType.INT64, np.array([1.0, 2.0]))

    def test_validity_length_mismatch_raises(self):
        with pytest.raises(StorageError):
            ColumnVector(
                DataType.INT64,
                np.array([1, 2], dtype=np.int64),
                np.array([True]),
            )

    def test_string_column(self):
        vector = ColumnVector.from_pylist(DataType.STRING, ["x", None, "z"])
        assert vector.to_pylist() == ["x", None, "z"]

    def test_empty(self):
        vector = ColumnVector.empty(DataType.FLOAT64)
        assert len(vector) == 0
        assert vector.to_pylist() == []


class TestTransforms:
    def test_slice(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [1, None, 3, 4])
        assert vector.slice(1, 3).to_pylist() == [None, 3]

    def test_take(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [10, 20, 30])
        taken = vector.take(np.array([2, 0]))
        assert taken.to_pylist() == [30, 10]

    def test_filter(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [1, 2, 3, 4])
        kept = vector.filter(np.array([True, False, True, False]))
        assert kept.to_pylist() == [1, 3]

    def test_filter_bad_mask_type(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [1])
        with pytest.raises(TypeMismatchError):
            vector.filter(np.array([1]))

    def test_filter_length_mismatch(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [1, 2])
        with pytest.raises(StorageError):
            vector.filter(np.array([True]))

    def test_concat(self):
        left = ColumnVector.from_pylist(DataType.INT64, [1, None])
        right = ColumnVector.from_pylist(DataType.INT64, [3])
        merged = ColumnVector.concat([left, right])
        assert merged.to_pylist() == [1, None, 3]

    def test_concat_type_mismatch(self):
        left = ColumnVector.from_pylist(DataType.INT64, [1])
        right = ColumnVector.from_pylist(DataType.STRING, ["x"])
        with pytest.raises(TypeMismatchError):
            ColumnVector.concat([left, right])

    def test_concat_empty_list_raises(self):
        with pytest.raises(StorageError):
            ColumnVector.concat([])


class TestNullHandling:
    def test_fill_nulls_for_compare(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [5, None, 7])
        filled = vector.fill_nulls_for_compare()
        assert filled.tolist() == [5, 0, 7]
        # The original is untouched.
        assert vector.to_pylist() == [5, None, 7]

    def test_is_valid(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [5, None])
        assert vector.is_valid(0)
        assert not vector.is_valid(1)

    def test_validity_or_all_true(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [5, 6])
        assert vector.validity_or_all_true().all()


class TestProperties:
    @given(st.lists(int_or_none, max_size=60))
    def test_roundtrip(self, items):
        vector = ColumnVector.from_pylist(DataType.INT64, items)
        assert vector.to_pylist() == items

    @given(st.lists(int_or_none, max_size=60), st.data())
    def test_slice_matches_pylist(self, items, data):
        vector = ColumnVector.from_pylist(DataType.INT64, items)
        start = data.draw(st.integers(0, len(items)))
        stop = data.draw(st.integers(start, len(items)))
        assert vector.slice(start, stop).to_pylist() == items[start:stop]

    @given(st.lists(int_or_none, min_size=1, max_size=60), st.data())
    def test_take_matches_pylist(self, items, data):
        vector = ColumnVector.from_pylist(DataType.INT64, items)
        indices = data.draw(
            st.lists(st.integers(0, len(items) - 1), max_size=30)
        )
        taken = vector.take(np.array(indices, dtype=np.int64))
        assert taken.to_pylist() == [items[i] for i in indices]

    @given(st.lists(st.booleans(), max_size=60))
    def test_filter_matches_pylist(self, mask):
        items = list(range(len(mask)))
        vector = ColumnVector.from_pylist(DataType.INT64, items)
        kept = vector.filter(np.array(mask, dtype=np.bool_))
        assert kept.to_pylist() == [i for i, keep in zip(items, mask) if keep]
