"""Seeded-mutation corpus for the lock-graph analyzer (L11-L13).

Each rule is proven live by planting deliberately broken modules in a
temp tree and asserting the analyzer fires on every injected violation
— and proven quiet by running it over the shipped source tree, which
must stay finding-free (the CI ``sanitize`` job enforces the same).
The repro_lint driver's ``--select`` / ``--format`` plumbing is
exercised through real subprocess invocations.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import lockgraph  # noqa: E402
import repro_lint  # noqa: E402


def analyze_source(tmp_path: Path, source: str, name: str = "seeded.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lockgraph.analyze([path])


def rules_of(findings) -> list[str]:
    return [finding.rule for finding in findings]


# -- L11: lock-order cycles ---------------------------------------------------


class TestL11LockOrder:
    def test_inverted_pair_is_a_cycle(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._accounts = threading.Lock()
                    self._audit = threading.Lock()

                def debit(self):
                    with self._accounts:
                        with self._audit:
                            pass

                def audit(self):
                    with self._audit:
                        with self._accounts:
                            pass
            """,
        )
        assert rules_of(findings) == ["L11", "L11"]
        assert any("cycle" in finding.message for finding in findings)

    def test_nonreentrant_self_nesting_deadlocks(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
        )
        assert rules_of(findings) == ["L11"]
        assert "self-deadlock" in findings[0].message

    def test_reentrant_self_nesting_is_fine(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.RLock()

                def bump(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
        )
        assert findings == []

    def test_cycle_through_one_call_hop(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class Pool:
                def __init__(self):
                    self._queue = threading.Lock()
                    self._stats = threading.Lock()

                def submit(self):
                    with self._queue:
                        self.record()

                def record(self):
                    with self._stats:
                        pass

                def report(self):
                    with self._stats:
                        with self._queue:
                            pass
            """,
        )
        assert "L11" in rules_of(findings)

    def test_consistent_order_is_fine(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class Ledger:
                def __init__(self):
                    self._accounts = threading.Lock()
                    self._audit = threading.Lock()

                def debit(self):
                    with self._accounts:
                        with self._audit:
                            pass

                def credit(self):
                    with self._accounts:
                        with self._audit:
                            pass
            """,
        )
        assert findings == []


# -- L12: blocking under a lock -----------------------------------------------


class TestL12BlockingUnderLock:
    def test_fsync_and_sleep_under_lock(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import os
            import threading
            import time

            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self, fd):
                    with self._lock:
                        os.fsync(fd)

                def retry(self):
                    with self._lock:
                        time.sleep(0.1)
            """,
        )
        assert rules_of(findings) == ["L12", "L12"]
        messages = " ".join(finding.message for finding in findings)
        assert "os.fsync" in messages and "time.sleep" in messages

    def test_await_under_threading_lock(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class Bridge:
                def __init__(self):
                    self._lock = threading.Lock()

                async def relay(self, coro):
                    with self._lock:
                        await coro
            """,
        )
        assert rules_of(findings) == ["L12"]
        assert "await" in findings[0].message

    def test_await_under_asyncio_lock_is_fine(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import asyncio

            class Bridge:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def relay(self, coro):
                    async with self._lock:
                        await coro
            """,
        )
        assert findings == []

    def test_blocking_one_call_hop_deep(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import os
            import threading

            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self, fd):
                    with self._lock:
                        self.sync(fd)

                def sync(self, fd):
                    os.fsync(fd)
            """,
        )
        assert rules_of(findings) == ["L12"]
        assert "via" in findings[0].message

    def test_lock_ok_on_with_line_blesses_block(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import os
            import threading

            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self, fd):
                    with self._lock:  # lock-ok: flip atomicity demands it
                        os.fsync(fd)
            """,
        )
        assert findings == []


# -- L13: guarded attribute access --------------------------------------------


class TestL13GuardedAttributes:
    def test_unlocked_write_and_read_of_rebound_attr(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class State:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._current = None

                def install(self, value):
                    with self._lock:
                        self._current = value

                def sneak(self, value):
                    self._current = value

                def peek(self):
                    return self._current
            """,
        )
        assert rules_of(findings) == ["L13", "L13"]

    def test_unlocked_container_mutation(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def sneak(self, key):
                    self._entries.pop(key, None)

                def peek(self, key):
                    return self._entries.get(key)
            """,
        )
        # In-place mutation outside the lock fires; plain reads of a
        # container-guarded attribute stay legal.
        assert rules_of(findings) == ["L13"]
        assert "'_entries'" in findings[0].message

    def test_locked_suffix_method_called_without_lock(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = None

                def _advance_locked(self):
                    self._state = object()

                def step(self):
                    with self._lock:
                        self._advance_locked()

                def sneak(self):
                    self._advance_locked()
            """,
        )
        assert rules_of(findings) == ["L13"]
        assert "_advance_locked" in findings[0].message

    def test_lock_ok_suppresses(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            class State:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._current = None

                def install(self, value):
                    with self._lock:
                        self._current = value

                def peek(self):
                    return self._current  # lock-ok: torn reads are fine here
            """,
        )
        assert findings == []

    def test_module_global_guarded_by_module_lock(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import threading

            _lock = threading.Lock()
            _cache = None

            def install(value):
                global _cache
                with _lock:
                    _cache = value

            def sneak(value):
                global _cache
                _cache = value
            """,
        )
        assert rules_of(findings) == ["L13"]


# -- the shipped tree must be quiet -------------------------------------------


class TestCleanTree:
    def test_source_tree_has_no_findings(self):
        files = lockgraph.iter_python_files([str(REPO / "src")])
        findings = lockgraph.analyze(files)
        rendered = "\n".join(finding.render() for finding in findings)
        if rendered:
            pytest.fail(f"lock-graph findings on shipped tree:\n{rendered}")


# -- repro_lint driver plumbing ----------------------------------------------


def run_lint(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "repro_lint.py"), *argv],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


@pytest.fixture()
def violation_file(tmp_path):
    path = tmp_path / "planted.py"
    path.write_text(
        textwrap.dedent(
            """
            import os
            import threading

            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self, fd):
                    with self._lock:
                        os.fsync(fd)
            """
        ),
        encoding="utf-8",
    )
    return path


class TestLintDriver:
    def test_single_file_select_hits(self, violation_file):
        proc = run_lint("--select", "L12", str(violation_file))
        assert proc.returncode == 1
        assert "L12" in proc.stdout

    def test_select_filters_out(self, violation_file):
        proc = run_lint("--select", "L11", str(violation_file))
        assert proc.returncode == 0
        assert proc.stdout.strip() == ""

    def test_unknown_rule_rejected(self, violation_file):
        proc = run_lint("--select", "L99", str(violation_file))
        assert proc.returncode != 0
        assert "unknown rule" in (proc.stdout + proc.stderr)

    def test_json_format(self, violation_file):
        proc = run_lint("--format", "json", str(violation_file))
        findings = json.loads(proc.stdout)
        assert findings and findings[0]["rule"] == "L12"
        assert findings[0]["line"] > 0

    def test_github_format(self, violation_file):
        proc = run_lint("--format", "github", str(violation_file))
        assert "::error file=" in proc.stdout
        assert "title=L12" in proc.stdout

    def test_parse_select_roundtrip(self):
        selected = repro_lint._parse_select("L2, l11")
        assert selected == frozenset({"L2", "L11"})
        assert repro_lint._parse_select(None) == frozenset(
            repro_lint.ALL_RULES
        )
