"""Tests for the PatchSelect operator.

Key properties:

- the vectorized operator agrees with the paper's Algorithm 1
  (tuple-at-a-time merge strategy) used as an oracle;
- identifier-based and bitmap-based designs are observationally equal;
- ``use`` and ``exclude`` partition the scan exactly;
- scan ranges compose correctly (paper §VI-A3);
- placement directly on the scan is enforced.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.errors import PlanError
from repro.exec.operators.filter import Filter
from repro.exec.operators.patch_select import (
    PatchSelect,
    PatchSelectMode,
    exclude_patches_scalar,
    use_patches_scalar,
)
from repro.exec.operators.scan import TableScan
from repro.exec.expressions import ColumnRef, Comparison, Literal
from repro.exec.result import collect
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_indexed_table(values, partition_count=2, mode=PatchIndexMode.AUTO):
    table = Table.from_pydict(
        "t",
        Schema([Field("c", DataType.INT64)]),
        {"c": values},
        partition_count=partition_count,
    )
    index = PatchIndex.create("pi", table, "c", "unique", mode=mode)
    return table, index


class TestAlgorithm1Oracle:
    """The scalar generators transcribe the paper's Algorithm 1."""

    def test_exclude_matches_paper_example(self):
        tuples = [(i, v) for i, v in enumerate("abcdefgh")]
        patches = np.array([1, 3, 5, 7], dtype=np.int64)
        kept = list(exclude_patches_scalar(tuples, patches))
        assert [v for __, v in kept] == ["a", "c", "e", "g"]

    def test_use_matches(self):
        tuples = [(i, v) for i, v in enumerate("abcdefgh")]
        patches = np.array([1, 3, 5, 7], dtype=np.int64)
        used = list(use_patches_scalar(tuples, patches))
        assert [v for __, v in used] == ["b", "d", "f", "h"]

    def test_no_patches(self):
        tuples = [(0, "a"), (1, "b")]
        empty = np.array([], dtype=np.int64)
        assert len(list(exclude_patches_scalar(tuples, empty))) == 2
        assert len(list(use_patches_scalar(tuples, empty))) == 0

    @given(
        st.integers(0, 60).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.integers(0, max(0, n - 1)), max_size=n, unique=True
                ).map(sorted),
            )
        )
    )
    @settings(max_examples=120)
    def test_vectorized_operator_matches_algorithm1(self, case):
        n, patch_list = case
        values = list(range(n))
        table = Table.from_pydict(
            "t", Schema([Field("c", DataType.INT64)]), {"c": values}
        )
        # Build an index with an arbitrary (not discovered) patch set by
        # constructing the patch sets directly.
        from repro.core.patches import PatchSet
        from repro.core.constraints import ConstraintKind

        patches = np.array(patch_list, dtype=np.int64)
        index = PatchIndex(
            "pi",
            table,
            "c",
            ConstraintKind.UNIQUE,
            [PatchSet.build(patches, n, "identifier")],
            threshold=1.0,
        )
        tuples = [(i, v) for i, v in enumerate(values)]
        oracle_excluded = [v for __, v in exclude_patches_scalar(tuples, patches)]
        oracle_used = [v for __, v in use_patches_scalar(tuples, patches)]
        got_excluded = collect(
            PatchSelect(
                TableScan(table, batch_size=7), index, PatchSelectMode.EXCLUDE_PATCHES
            )
        ).column("c").to_pylist()
        got_used = collect(
            PatchSelect(
                TableScan(table, batch_size=7), index, PatchSelectMode.USE_PATCHES
            )
        ).column("c").to_pylist()
        assert got_excluded == oracle_excluded
        assert got_used == oracle_used


class TestModes:
    def test_partitioning_of_dataflow(self):
        values = [1, 3, 4, 3, 2, 6, 7, 6]
        table, index = make_indexed_table(values)
        excluded = collect(
            PatchSelect(TableScan(table), index, PatchSelectMode.EXCLUDE_PATCHES)
        ).column("c").to_pylist()
        used = collect(
            PatchSelect(TableScan(table), index, PatchSelectMode.USE_PATCHES)
        ).column("c").to_pylist()
        assert excluded == [1, 4, 2, 7]
        assert used == [3, 3, 6, 6]
        assert sorted(excluded + used) == sorted(values)

    @pytest.mark.parametrize(
        "mode", [PatchIndexMode.IDENTIFIER, PatchIndexMode.BITMAP]
    )
    def test_designs_equivalent(self, mode):
        # Duplicated values 5, 2 and 0 are all patches; 1 and 9 survive.
        values = [5, 5, 1, 2, 2, 9, 0, 0]
        table, index = make_indexed_table(values, mode=mode)
        assert index.design == mode.value
        excluded = collect(
            PatchSelect(TableScan(table), index, PatchSelectMode.EXCLUDE_PATCHES)
        ).column("c").to_pylist()
        assert excluded == [1, 9]

    def test_small_batches_across_partitions(self):
        values = list(range(50))
        values[10] = 5  # duplicate
        table, index = make_indexed_table(values, partition_count=4)
        excluded = collect(
            PatchSelect(
                TableScan(table, batch_size=3), index, PatchSelectMode.EXCLUDE_PATCHES
            )
        )
        assert excluded.row_count == 50 - index.patch_count


class TestScanRangeComposition:
    def test_ranges_merge_with_patches(self):
        # Paper §VI-A3: pruning rows never invalidates the patch set.
        values = [1, 3, 4, 3, 2, 6, 7, 6]  # patches for NUC: {1,3,5,7}
        table, index = make_indexed_table(values, partition_count=1)
        result = collect(
            PatchSelect(
                TableScan(table, scan_ranges=[(2, 7)]),
                index,
                PatchSelectMode.EXCLUDE_PATCHES,
            )
        )
        # rows 2..6 minus patches {3, 5} -> rowids 2, 4, 6
        assert result.column("c").to_pylist() == [4, 2, 7]

    def test_use_patches_with_ranges(self):
        values = [1, 3, 4, 3, 2, 6, 7, 6]
        table, index = make_indexed_table(values, partition_count=1)
        result = collect(
            PatchSelect(
                TableScan(table, scan_ranges=[(0, 4)]),
                index,
                PatchSelectMode.USE_PATCHES,
            )
        )
        assert result.column("c").to_pylist() == [3, 3]


class TestPlacementEnforcement:
    def test_must_sit_on_scan(self):
        table, index = make_indexed_table([1, 2, 2])
        child = Filter(
            TableScan(table), Comparison(">", ColumnRef("c"), Literal(0))
        )
        with pytest.raises(PlanError):
            PatchSelect(child, index, PatchSelectMode.USE_PATCHES)

    def test_scan_of_other_table_rejected(self):
        table, index = make_indexed_table([1, 2, 2])
        other = Table.from_pydict(
            "other", Schema([Field("c", DataType.INT64)]), {"c": [1]}
        )
        with pytest.raises(PlanError):
            PatchSelect(TableScan(other), index, PatchSelectMode.USE_PATCHES)

    def test_enforcement_can_be_relaxed_for_tests(self):
        table, index = make_indexed_table([1, 2, 2], partition_count=1)
        child = Filter(
            TableScan(table), Comparison(">", ColumnRef("c"), Literal(0))
        )
        operator = PatchSelect(
            child, index, PatchSelectMode.USE_PATCHES, enforce_scan_child=False
        )
        result = collect(operator)  # filter keeps everything: rowids contiguous
        assert result.column("c").to_pylist() == [2, 2]
