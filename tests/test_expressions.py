"""Unit tests for vectorized expression evaluation."""

import datetime as dt

import pytest

from repro.errors import ExecutionError, TypeMismatchError
from repro.exec.batch import RecordBatch
from repro.exec.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    IsNull,
    Literal,
    Not,
    Or,
    literal,
    predicate_mask,
)
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.types import DataType


@pytest.fixture
def batch() -> RecordBatch:
    schema = Schema(
        [
            Field("i", DataType.INT64),
            Field("f", DataType.FLOAT64),
            Field("s", DataType.STRING),
            Field("d", DataType.DATE),
        ]
    )
    return RecordBatch(
        schema,
        {
            "i": ColumnVector.from_pylist(DataType.INT64, [1, 2, None, 4]),
            "f": ColumnVector.from_pylist(DataType.FLOAT64, [0.5, 1.5, 2.5, 3.5]),
            "s": ColumnVector.from_pylist(DataType.STRING, ["a", "b", "c", None]),
            "d": ColumnVector.from_pylist(
                DataType.DATE,
                [dt.date(2020, 1, 1), dt.date(2020, 6, 1), dt.date(2021, 1, 1), None],
            ),
        },
    )


class TestColumnRefAndLiteral:
    def test_column_ref(self, batch):
        result = ColumnRef("i").evaluate(batch)
        assert result.to_pylist() == [1, 2, None, 4]
        assert ColumnRef("i").output_type(batch.schema) == DataType.INT64
        assert ColumnRef("i").referenced_columns() == {"i"}

    def test_literal_broadcast(self, batch):
        result = Literal(7).evaluate(batch)
        assert result.to_pylist() == [7, 7, 7, 7]

    def test_null_literal_needs_dtype(self, batch):
        with pytest.raises(TypeMismatchError):
            Literal(None).evaluate(batch)
        result = Literal(None, DataType.INT64).evaluate(batch)
        assert result.to_pylist() == [None] * 4

    def test_literal_helper_coerces_dates(self):
        expression = literal(dt.date(2020, 6, 1))
        assert expression.dtype == DataType.DATE
        assert isinstance(expression.value, int)


class TestComparisons:
    def test_int_comparison_with_nulls(self, batch):
        result = Comparison(">", ColumnRef("i"), Literal(1)).evaluate(batch)
        assert result.to_pylist() == [False, True, None, True]

    def test_predicate_mask_null_is_false(self, batch):
        mask = predicate_mask(Comparison(">", ColumnRef("i"), Literal(1)), batch)
        assert mask.tolist() == [False, True, False, True]

    def test_mixed_numeric_widening(self, batch):
        result = Comparison("<", ColumnRef("i"), ColumnRef("f")).evaluate(batch)
        assert result.to_pylist() == [False, False, None, False]

    def test_string_comparison(self, batch):
        result = Comparison("=", ColumnRef("s"), Literal("b")).evaluate(batch)
        assert result.to_pylist() == [False, True, False, None]

    def test_date_comparison(self, batch):
        result = Comparison(
            ">=", ColumnRef("d"), literal(dt.date(2020, 6, 1))
        ).evaluate(batch)
        assert result.to_pylist() == [False, True, True, None]

    def test_incompatible_types(self, batch):
        with pytest.raises(TypeMismatchError):
            Comparison("=", ColumnRef("s"), Literal(1)).evaluate(batch)

    def test_unknown_operator(self):
        with pytest.raises(ExecutionError):
            Comparison("~", ColumnRef("i"), Literal(1))

    def test_all_operators(self, batch):
        for op, expected in [
            ("=", [False, True, None, False]),
            ("!=", [True, False, None, True]),
            ("<", [True, False, None, False]),
            ("<=", [True, True, None, False]),
            (">", [False, False, None, True]),
            (">=", [False, True, None, True]),
        ]:
            result = Comparison(op, ColumnRef("i"), Literal(2)).evaluate(batch)
            assert result.to_pylist() == expected, op


class TestBooleanLogic:
    def test_and_kleene(self, batch):
        # i > 1 is [F, T, NULL, T]; f < 2 is [T, T, F, F]
        result = And(
            Comparison(">", ColumnRef("i"), Literal(1)),
            Comparison("<", ColumnRef("f"), Literal(2.0)),
        ).evaluate(batch)
        # NULL AND False -> False (definite), others standard.
        assert result.to_pylist() == [False, True, False, False]

    def test_or_kleene(self, batch):
        # i > 1 is [F, T, NULL, T]; f > 2 is [F, F, T, T]
        result = Or(
            Comparison(">", ColumnRef("i"), Literal(1)),
            Comparison(">", ColumnRef("f"), Literal(2.0)),
        ).evaluate(batch)
        # NULL OR True -> True (definite).
        assert result.to_pylist() == [False, True, True, True]

    def test_not(self, batch):
        result = Not(Comparison(">", ColumnRef("i"), Literal(1))).evaluate(batch)
        assert result.to_pylist() == [True, False, None, False]

    def test_is_null(self, batch):
        assert IsNull(ColumnRef("i")).evaluate(batch).to_pylist() == [
            False,
            False,
            True,
            False,
        ]
        assert IsNull(ColumnRef("i"), negated=True).evaluate(batch).to_pylist() == [
            True,
            True,
            False,
            True,
        ]


class TestArithmetic:
    def test_add_int(self, batch):
        result = Arithmetic("+", ColumnRef("i"), Literal(10)).evaluate(batch)
        assert result.dtype == DataType.INT64
        assert result.to_pylist() == [11, 12, None, 14]

    def test_divide_promotes_to_float(self, batch):
        result = Arithmetic("/", ColumnRef("i"), Literal(2)).evaluate(batch)
        assert result.dtype == DataType.FLOAT64
        assert result.to_pylist() == [0.5, 1.0, None, 2.0]

    def test_divide_by_zero_is_null(self, batch):
        result = Arithmetic("/", ColumnRef("i"), Literal(0)).evaluate(batch)
        assert result.to_pylist() == [None, None, None, None]

    def test_multiply_mixed(self, batch):
        result = Arithmetic("*", ColumnRef("i"), ColumnRef("f")).evaluate(batch)
        assert result.dtype == DataType.FLOAT64
        assert result.to_pylist() == [0.5, 3.0, None, 14.0]

    def test_string_arithmetic_rejected(self, batch):
        with pytest.raises(TypeMismatchError):
            Arithmetic("+", ColumnRef("s"), Literal(1)).evaluate(batch)

    def test_output_type(self, batch):
        assert Arithmetic("+", ColumnRef("i"), Literal(1)).output_type(
            batch.schema
        ) == DataType.INT64
        assert Arithmetic("/", ColumnRef("i"), Literal(1)).output_type(
            batch.schema
        ) == DataType.FLOAT64


class TestStr:
    def test_rendering(self):
        expression = And(
            Comparison(">", ColumnRef("x"), Literal(1)),
            IsNull(ColumnRef("y"), negated=True),
        )
        assert str(expression) == "((x > 1) AND (y IS NOT NULL))"
