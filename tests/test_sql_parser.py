"""Unit tests for the SQL parser."""

import datetime as dt

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.parser import parse_statement


class TestSelect:
    def test_simple(self):
        statement = parse_statement("SELECT a, b FROM t")
        assert isinstance(statement, ast.SqlSelect)
        assert [item.expression.name for item in statement.items] == ["a", "b"]
        assert statement.from_table.name == "t"

    def test_star(self):
        statement = parse_statement("SELECT * FROM t")
        assert statement.items == ()

    def test_star_without_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT *")

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_aliases(self):
        statement = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.from_table.alias == "u"

    def test_where_precedence(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE a > 1 AND b < 2 OR NOT c = 3"
        )
        where = statement.where
        assert isinstance(where, ast.SqlBinary) and where.op == "or"
        assert isinstance(where.left, ast.SqlBinary) and where.left.op == "and"
        assert isinstance(where.right, ast.SqlNot)

    def test_is_null(self):
        statement = parse_statement("SELECT a FROM t WHERE a IS NOT NULL")
        assert isinstance(statement.where, ast.SqlIsNull)
        assert statement.where.negated

    def test_arithmetic_precedence(self):
        statement = parse_statement("SELECT a + b * 2 FROM t")
        expression = statement.items[0].expression
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_unary_minus(self):
        statement = parse_statement("SELECT a FROM t WHERE a > -5")
        assert statement.where.right.value == -5

    def test_group_by_having(self):
        statement = parse_statement(
            "SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) > 1"
        )
        assert [column.name for column in statement.group_by] == ["g"]
        assert isinstance(statement.having, ast.SqlBinary)

    def test_order_limit_offset(self):
        statement = parse_statement(
            "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5"
        )
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True
        assert statement.limit == 10
        assert statement.offset == 5

    def test_aggregates(self):
        statement = parse_statement(
            "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), MIN(c), MAX(d), AVG(e) FROM t"
        )
        aggs = [item.expression for item in statement.items]
        assert aggs[0].argument is None
        assert aggs[1].distinct and aggs[1].argument.name == "a"
        assert [agg.func for agg in aggs] == [
            "count",
            "count",
            "sum",
            "min",
            "max",
            "avg",
        ]

    def test_joins(self):
        statement = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.y LEFT OUTER JOIN c ON b.y = c.z"
        )
        assert [join.kind for join in statement.joins] == ["inner", "left_outer"]
        assert statement.joins[0].on_left.qualifier == "a"

    def test_inner_join_keyword(self):
        statement = parse_statement("SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert statement.joins[0].kind == "inner"

    def test_non_equi_join_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT * FROM a JOIN b ON a.x < b.y")

    def test_derived_table(self):
        statement = parse_statement(
            "SELECT * FROM (SELECT a FROM t GROUP BY a) AS sub"
        )
        assert isinstance(statement.from_table, ast.SqlDerivedTable)
        assert statement.from_table.alias == "sub"

    def test_literals(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE a = 1 OR a = 1.5 OR b = 'x' OR c = TRUE "
            "OR d = DATE '2020-01-02' OR e IS NULL"
        )
        assert statement.where is not None

    def test_date_literal(self):
        statement = parse_statement("SELECT a FROM t WHERE d > DATE '2020-06-01'")
        assert statement.where.right.value == dt.date(2020, 6, 1)

    def test_bad_date_literal(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a FROM t WHERE d > DATE 'not-a-date'")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT a FROM t garbage !")

    def test_trailing_semicolon_ok(self):
        parse_statement("SELECT a FROM t;")


class TestDdl:
    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE t (a BIGINT NOT NULL, b VARCHAR(10), c DATE) PARTITIONS 4"
        )
        assert isinstance(statement, ast.SqlCreateTable)
        assert statement.partitions == 4
        assert statement.columns[0].nullable is False
        assert statement.columns[1].type_name == "varchar"

    def test_create_patchindex_full(self):
        statement = parse_statement(
            "CREATE PATCHINDEX pi ON t(c) TYPE SORTED MODE BITMAP THRESHOLD 0.05"
        )
        assert isinstance(statement, ast.SqlCreatePatchIndex)
        assert statement.kind == "sorted"
        assert statement.mode == "bitmap"
        assert statement.threshold == 0.05

    def test_create_patchindex_defaults(self):
        statement = parse_statement("CREATE PATCHINDEX pi ON t(c) TYPE UNIQUE")
        assert statement.mode == "auto"
        assert statement.threshold == 1.0

    def test_drop_statements(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.SqlDropTable)
        assert isinstance(
            parse_statement("DROP PATCHINDEX pi"), ast.SqlDropPatchIndex
        )

    def test_insert(self):
        statement = parse_statement(
            "INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', 3.5)"
        )
        assert isinstance(statement, ast.SqlInsert)
        assert statement.rows == ((1, "a", None), (2, "b", 3.5))

    def test_insert_with_columns(self):
        statement = parse_statement("INSERT INTO t (b, a) VALUES ('x', 1)")
        assert statement.columns == ("b", "a")

    def test_insert_non_literal_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("INSERT INTO t VALUES (a + 1)")

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, ast.SqlDelete)
        assert statement.where is not None

    def test_explain(self):
        statement = parse_statement("EXPLAIN SELECT a FROM t")
        assert isinstance(statement, ast.SqlExplain)

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("VACUUM t")

    def test_checkpoint(self):
        statement = parse_statement("CHECKPOINT")
        assert isinstance(statement, ast.SqlCheckpoint)

    def test_checkpoint_usable_as_table_name(self):
        statement = parse_statement("SELECT c FROM checkpoint")
        assert isinstance(statement, ast.SqlSelect)
