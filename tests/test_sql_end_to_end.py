"""End-to-end SQL tests: full statements through parse/bind/optimize/execute."""

import datetime as dt

import pytest

from repro import Database
from repro.core.discovery import discover_nuc_patches


@pytest.fixture
def db() -> Database:
    db = Database()
    db.sql("CREATE TABLE tab (c BIGINT, v VARCHAR(10), f DOUBLE) PARTITIONS 2")
    db.sql(
        "INSERT INTO tab VALUES "
        "(1,'a',0.1), (3,'b',0.2), (4,'c',0.3), (3,'d',0.4), "
        "(2,'e',0.5), (6,'f',0.6), (7,'g',0.7), (6,'h',0.8), (NULL,'i',0.9)"
    )
    return db


class TestBasicQueries:
    def test_select_star(self, db):
        result = db.sql("SELECT * FROM tab")
        assert result.row_count == 9
        assert result.column_names == ("c", "v", "f")

    def test_where(self, db):
        result = db.sql("SELECT v FROM tab WHERE c > 3 AND c < 7")
        assert sorted(result.column("v").to_pylist()) == ["c", "f", "h"]

    def test_order_by_limit(self, db):
        result = db.sql("SELECT c FROM tab ORDER BY c DESC LIMIT 3")
        assert result.column("c").to_pylist() == [None, 7, 6]

    def test_aggregates(self, db):
        result = db.sql(
            "SELECT COUNT(*) AS n, COUNT(c) AS nc, SUM(c) AS s, "
            "MIN(c) AS mn, MAX(c) AS mx, AVG(c) AS av FROM tab"
        )
        assert result.to_pylist() == [(9, 8, 32, 1, 7, 4.0)]

    def test_group_by_having(self, db):
        result = db.sql(
            "SELECT c, COUNT(*) AS n FROM tab GROUP BY c "
            "HAVING COUNT(*) > 1 ORDER BY c"
        )
        assert result.to_pylist() == [(3, 2), (6, 2)]

    def test_distinct(self, db):
        result = db.sql("SELECT DISTINCT c FROM tab WHERE c IS NOT NULL")
        assert sorted(result.column("c").to_pylist()) == [1, 2, 3, 4, 6, 7]

    def test_arithmetic_projection(self, db):
        result = db.sql("SELECT c * 2 + 1 AS x FROM tab WHERE c = 4")
        assert result.column("x").to_pylist() == [9]

    def test_is_null(self, db):
        result = db.sql("SELECT v FROM tab WHERE c IS NULL")
        assert result.column("v").to_pylist() == ["i"]


class TestJoins:
    @pytest.fixture
    def joined_db(self, db):
        db.sql("CREATE TABLE dim (k BIGINT, name VARCHAR(10))")
        db.sql(
            "INSERT INTO dim VALUES (1,'one'), (2,'two'), (3,'three'), "
            "(6,'six'), (7,'seven')"
        )
        return db

    def test_inner_join(self, joined_db):
        result = joined_db.sql(
            "SELECT tab.v, dim.name FROM tab JOIN dim ON tab.c = dim.k "
            "ORDER BY name"
        )
        assert result.row_count == 7  # 1,3,3,2,6,7,6

    def test_left_outer_join(self, joined_db):
        result = joined_db.sql(
            "SELECT tab.c, dim.name FROM tab LEFT OUTER JOIN dim "
            "ON tab.c = dim.k"
        )
        assert result.row_count == 9
        names = result.column("name").to_pylist()
        assert names.count(None) == 2  # c=4 and c=NULL

    def test_derived_table_join(self, joined_db):
        result = joined_db.sql(
            "SELECT t.c FROM tab t JOIN "
            "(SELECT k FROM dim WHERE k > 2) AS big ON t.c = big.k"
        )
        assert sorted(result.column("c").to_pylist()) == [3, 3, 6, 6, 7]


class TestPaperDiscoveryQuery:
    def test_matches_engine_discovery(self, db):
        query = """
        select tab.tid from tab
        left outer join
                (select c from tab
                group by c
                having count(*) > 1)
                as temp
        on tab.c = temp.c
        where temp.c is not null
        or tab.c is null
        """
        tids = sorted(db.sql(query).column("tid").to_pylist())
        engine = discover_nuc_patches(db.table("tab").read_column("c")).tolist()
        assert tids == engine


class TestPatchIndexDdl:
    def test_create_and_use(self, db):
        db.sql("CREATE PATCHINDEX pi ON tab(c) TYPE UNIQUE")
        assert db.catalog.has_index("pi")
        result = db.sql("SELECT COUNT(DISTINCT c) AS n FROM tab")
        assert result.scalar() == 6
        plan = db.explain("SELECT COUNT(DISTINCT c) AS n FROM tab")
        assert "PatchSelect" in plan

    def test_rewrite_preserves_results(self, db):
        baseline = db.sql("SELECT DISTINCT c FROM tab")
        db.sql("CREATE PATCHINDEX pi ON tab(c) TYPE UNIQUE")
        rewritten = db.sql("SELECT DISTINCT c FROM tab")
        assert sorted(baseline.column("c").to_pylist(), key=str) == sorted(
            rewritten.column("c").to_pylist(), key=str
        )

    def test_sorted_index_and_order_by(self, db):
        db.sql("CREATE PATCHINDEX ps ON tab(c) TYPE SORTED")
        result = db.sql("SELECT c FROM tab ORDER BY c")
        assert result.column("c").to_pylist() == [1, 2, 3, 3, 4, 6, 6, 7, None]

    def test_threshold_rejection(self, db):
        from repro.errors import ThresholdExceededError

        with pytest.raises(ThresholdExceededError):
            db.sql("CREATE PATCHINDEX pi ON tab(c) TYPE UNIQUE THRESHOLD 0.1")

    def test_drop(self, db):
        db.sql("CREATE PATCHINDEX pi ON tab(c) TYPE UNIQUE")
        db.sql("DROP PATCHINDEX pi")
        assert not db.catalog.has_index("pi")
        assert "PatchSelect" not in db.explain("SELECT DISTINCT c FROM tab")


class TestDml:
    def test_insert_returns_count(self, db):
        result = db.sql("INSERT INTO tab VALUES (10, 'j', 1.0)")
        assert "1 rows inserted" in result.scalar()

    def test_insert_with_column_list(self, db):
        db.sql("INSERT INTO tab (v, c) VALUES ('k', 11)")
        result = db.sql("SELECT f FROM tab WHERE c = 11")
        assert result.column("f").to_pylist() == [None]

    def test_delete_where(self, db):
        db.sql("DELETE FROM tab WHERE c = 3")
        assert db.sql("SELECT COUNT(*) AS n FROM tab").scalar() == 7

    def test_delete_all(self, db):
        db.sql("DELETE FROM tab")
        assert db.sql("SELECT COUNT(*) AS n FROM tab").scalar() == 0

    def test_dml_maintains_indexes(self, db):
        db.sql("CREATE PATCHINDEX pi ON tab(c) TYPE UNIQUE")
        before = db.sql("SELECT COUNT(DISTINCT c) AS n FROM tab").scalar()
        db.sql("INSERT INTO tab VALUES (1, 'dup', 0.0)")  # duplicates c=1
        after = db.sql("SELECT COUNT(DISTINCT c) AS n FROM tab").scalar()
        assert before == after == 6

    def test_date_columns(self):
        db = Database()
        db.sql("CREATE TABLE ev (d DATE, n BIGINT)")
        db.sql(
            "INSERT INTO ev VALUES (DATE '2020-01-01', 1), (DATE '2020-06-01', 2)"
        )
        result = db.sql("SELECT n FROM ev WHERE d > DATE '2020-03-01'")
        assert result.column("n").to_pylist() == [2]
        first = db.sql("SELECT d FROM ev ORDER BY d LIMIT 1")
        assert first.scalar() == dt.date(2020, 1, 1)


class TestExplain:
    def test_explain_statement(self, db):
        result = db.sql("EXPLAIN SELECT c FROM tab WHERE c > 1")
        assert result.column_names == ("plan",)
        assert "logical plan" in result.text()

    def test_explain_shows_rewrite(self):
        # A low exception rate, so the cost model accepts the rewrite.
        db = Database()
        db.sql("CREATE TABLE big (c BIGINT)")
        rows = ", ".join(f"({i})" for i in range(500))
        db.sql(f"INSERT INTO big VALUES {rows}")
        db.sql("INSERT INTO big VALUES (3)")  # one late arrival
        db.sql("CREATE PATCHINDEX pi ON big(c) TYPE SORTED")
        text = db.explain("SELECT c FROM big ORDER BY c")
        assert "MergeUnion" in text
        assert "exclude_patches" in text
        assert "use_patches" in text

    def test_explain_cost_model_gates_high_rates(self, db):
        # tab's column c is 44% disordered: the sort rewrite does not pay.
        db.sql("CREATE PATCHINDEX pi ON tab(c) TYPE SORTED")
        text = db.explain("SELECT c FROM tab ORDER BY c")
        assert "MergeUnion" not in text
