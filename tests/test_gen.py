"""Tests for the data generators: the paper's column properties must hold."""

import numpy as np
import pytest

from repro import Database
from repro.core.discovery import (
    discover_nsc_patches,
    discover_nuc_patches,
    discover_table_nsc,
    discover_table_nuc,
)
from repro.gen.synthetic import (
    sorted_with_exceptions,
    synthetic_table,
    unique_with_exceptions,
)
from repro.gen.tpcds import TpcdsGenerator, load_tpcds


class TestUniqueWithExceptions:
    @pytest.mark.parametrize("rate", [0.0, 0.01, 0.1, 0.5, 0.9])
    def test_discovered_rate_matches(self, rate):
        n = 10_000
        column = unique_with_exceptions(n, rate, seed=1)
        discovered = len(discover_nuc_patches(column)) / n
        assert discovered == pytest.approx(rate, abs=0.01)

    def test_deterministic(self):
        first = unique_with_exceptions(1000, 0.1, seed=7)
        second = unique_with_exceptions(1000, 0.1, seed=7)
        assert first.to_pylist() == second.to_pylist()

    def test_null_injection(self):
        column = unique_with_exceptions(1000, 0.0, null_rate=0.05, seed=2)
        assert column.null_count() == 50

    def test_group_pool_size(self):
        column = unique_with_exceptions(10_000, 0.5, n_groups=10, seed=3)
        values = column.values
        exceptions = values[values >= 10_000]
        assert len(np.unique(exceptions)) <= 10

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            unique_with_exceptions(10, 1.5)


class TestSortedWithExceptions:
    @pytest.mark.parametrize("rate", [0.0, 0.01, 0.1, 0.3])
    def test_discovered_rate_close(self, rate):
        # The paper reports ±0.1% jitter; random replacements can fit by
        # chance, so allow a slightly wider tolerance at small n.
        n = 10_000
        column = sorted_with_exceptions(n, rate, seed=4)
        discovered = len(discover_nsc_patches(column)) / n
        assert discovered == pytest.approx(rate, abs=0.02)

    def test_zero_rate_is_sorted(self):
        column = sorted_with_exceptions(1000, 0.0)
        assert len(discover_nsc_patches(column)) == 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            sorted_with_exceptions(10, -0.1)


class TestSyntheticTable:
    def test_shape_and_rates(self):
        table = synthetic_table(
            "syn",
            5000,
            unique_exception_rate=0.05,
            sorted_exception_rate=0.05,
            partition_count=3,
            seed=5,
        )
        assert table.row_count == 5000
        assert table.partition_count == 3
        nuc = discover_table_nuc(table, "u")
        assert nuc.exception_rate == pytest.approx(0.05, abs=0.01)
        nsc = discover_table_nsc(table, "s")
        assert nsc.exception_rate <= 0.06


class TestTpcds:
    def test_date_dim_sorted_pk(self):
        generator = TpcdsGenerator()
        columns = generator.date_dim(n_days=400)
        sk = columns["d_date_sk"].values
        assert (np.diff(sk) == 1).all()
        assert columns["d_year"].values[0] == 1998

    def test_catalog_sales_nearly_sorted(self):
        generator = TpcdsGenerator()
        columns = generator.catalog_sales(20_000, sold_date_exception_rate=0.005)
        rate = len(discover_nsc_patches(columns["cs_sold_date_sk"])) / 20_000
        assert rate == pytest.approx(0.005, abs=0.002)

    def test_customer_exception_rates_match_table1(self):
        generator = TpcdsGenerator()
        columns = generator.customer(20_000)
        email_rate = len(discover_nuc_patches(columns["c_email_address"])) / 20_000
        addr_rate = len(discover_nuc_patches(columns["c_current_addr_sk"])) / 20_000
        assert email_rate == pytest.approx(0.036, abs=0.005)
        assert addr_rate == pytest.approx(0.865, abs=0.02)

    def test_load_tpcds(self):
        db = Database()
        tables = load_tpcds(
            db, catalog_sales_rows=5000, customer_rows=2000, n_days=365
        )
        assert set(tables) == {"date_dim", "customer", "catalog_sales"}
        assert db.table("catalog_sales").row_count == 5000
        # Every sold date joins a dimension row.
        result = db.sql(
            "SELECT COUNT(*) AS n FROM catalog_sales cs "
            "JOIN date_dim d ON cs.cs_sold_date_sk = d.d_date_sk"
        )
        assert result.scalar() == 5000

    def test_ship_after_sold(self):
        generator = TpcdsGenerator()
        columns = generator.catalog_sales(1000)
        sold = columns["cs_sold_date_sk"].values
        ship = columns["cs_ship_date_sk"].values
        assert (ship > sold).all()
