"""Unit and property tests for HashAggregate and Distinct."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError, TypeMismatchError
from repro.exec.operators.aggregate import AggregateSpec, HashAggregate
from repro.exec.operators.distinct import Distinct
from repro.exec.operators.scan import TableScan
from repro.exec.result import collect
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(data, schema=None, partition_count=2):
    if schema is None:
        schema = Schema(
            [Field("g", DataType.STRING), Field("v", DataType.INT64)]
        )
    return Table.from_pydict("t", schema, data, partition_count=partition_count)


@pytest.fixture
def grouped_table():
    return make_table(
        {
            "g": ["a", "b", "a", "b", "a", None, "c"],
            "v": [1, 2, 3, None, 5, 6, None],
        }
    )


class TestAggregateSpec:
    def test_validation(self):
        with pytest.raises(PlanError):
            AggregateSpec("median", "v", "m")
        with pytest.raises(PlanError):
            AggregateSpec("count_star", "v", "n")
        with pytest.raises(PlanError):
            AggregateSpec("sum", None, "s")

    def test_output_types(self):
        schema = Schema([Field("v", DataType.INT64)])
        assert AggregateSpec("count", "v", "n").output_field(schema).dtype == DataType.INT64
        assert AggregateSpec("avg", "v", "a").output_field(schema).dtype == DataType.FLOAT64
        assert AggregateSpec("sum", "v", "s").output_field(schema).dtype == DataType.INT64
        assert AggregateSpec("min", "v", "m").output_field(schema).dtype == DataType.INT64

    def test_sum_requires_numeric(self):
        schema = Schema([Field("s", DataType.STRING)])
        with pytest.raises(TypeMismatchError):
            AggregateSpec("sum", "s", "x").output_field(schema)


class TestGlobalAggregates:
    def test_all_functions(self, grouped_table):
        result = collect(
            HashAggregate(
                TableScan(grouped_table),
                [],
                [
                    AggregateSpec("count_star", None, "n"),
                    AggregateSpec("count", "v", "cv"),
                    AggregateSpec("count_distinct", "v", "dv"),
                    AggregateSpec("sum", "v", "sv"),
                    AggregateSpec("min", "v", "mn"),
                    AggregateSpec("max", "v", "mx"),
                    AggregateSpec("avg", "v", "av"),
                ],
            )
        )
        row = result.to_pylist()[0]
        assert row == (7, 5, 5, 17, 1, 6, 3.4)

    def test_empty_input(self):
        table = make_table({"g": [], "v": []})
        result = collect(
            HashAggregate(
                TableScan(table),
                [],
                [
                    AggregateSpec("count_star", None, "n"),
                    AggregateSpec("sum", "v", "s"),
                    AggregateSpec("min", "v", "m"),
                ],
            )
        )
        assert result.to_pylist() == [(0, None, None)]

    def test_all_null_column(self):
        table = make_table({"g": ["a"], "v": [None]})
        result = collect(
            HashAggregate(
                TableScan(table),
                [],
                [
                    AggregateSpec("count", "v", "c"),
                    AggregateSpec("avg", "v", "a"),
                ],
            )
        )
        assert result.to_pylist() == [(0, None)]


class TestGroupedAggregates:
    def test_group_by_string(self, grouped_table):
        result = collect(
            HashAggregate(
                TableScan(grouped_table),
                ["g"],
                [
                    AggregateSpec("count_star", None, "n"),
                    AggregateSpec("sum", "v", "s"),
                ],
            )
        )
        rows = {row[0]: row[1:] for row in result.to_pylist()}
        assert rows["a"] == (3, 9)
        assert rows["b"] == (2, 2)
        assert rows["c"] == (1, None)  # v is NULL for c
        assert rows[None] == (1, 6)  # NULL keys form one group

    def test_multi_key_grouping(self):
        table = make_table(
            {
                "g": ["a", "a", "b", "a"],
                "v": [1, 1, 1, 2],
            }
        )
        result = collect(
            HashAggregate(
                TableScan(table),
                ["g", "v"],
                [AggregateSpec("count_star", None, "n")],
            )
        )
        rows = {(row[0], row[1]): row[2] for row in result.to_pylist()}
        assert rows == {("a", 1): 2, ("a", 2): 1, ("b", 1): 1}

    def test_count_distinct_per_group(self):
        table = make_table(
            {
                "g": ["a", "a", "a", "b", "b"],
                "v": [1, 1, 2, None, 3],
            }
        )
        result = collect(
            HashAggregate(
                TableScan(table),
                ["g"],
                [AggregateSpec("count_distinct", "v", "d")],
            )
        )
        rows = dict(result.to_pylist())
        assert rows == {"a": 2, "b": 1}

    def test_min_max_strings(self):
        table = make_table(
            {"g": ["x", "x", "y"], "v": [1, 2, 3]},
            schema=Schema([Field("g", DataType.STRING), Field("v", DataType.INT64)]),
        )
        result = collect(
            HashAggregate(
                TableScan(table),
                ["v"],
                [AggregateSpec("min", "g", "mn"), AggregateSpec("max", "g", "mx")],
            )
        )
        assert result.row_count == 3

    @given(st.lists(st.one_of(st.none(), st.integers(0, 5)), max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_grouped_count_matches_python(self, values):
        table = make_table({"g": ["k"] * len(values), "v": values})
        result = collect(
            HashAggregate(
                TableScan(table, batch_size=7),
                ["v"],
                [AggregateSpec("count_star", None, "n")],
            )
        )
        got = dict(result.to_pylist())
        expected: dict = {}
        for value in values:
            expected[value] = expected.get(value, 0) + 1
        assert got == expected


class TestDistinct:
    def test_distinct_single_column_value_order(self):
        # The single-column fast path emits value order (SQL leaves
        # DISTINCT order unspecified).
        table = make_table({"g": ["b", "a", "b", "c", "a"], "v": [1] * 5})
        result = collect(Distinct(TableScan(table, columns=["g"])))
        assert result.column("g").to_pylist() == ["a", "b", "c"]

    def test_distinct_multi_column_first_occurrence_order(self):
        table = make_table({"g": ["b", "a", "b", "a"], "v": [1, 2, 1, 2]})
        result = collect(Distinct(TableScan(table)))
        assert result.to_pylist() == [("b", 1), ("a", 2)]

    def test_distinct_multi_column(self):
        table = make_table({"g": ["a", "a", "a"], "v": [1, 2, 1]})
        result = collect(Distinct(TableScan(table)))
        assert sorted(result.to_pylist()) == [("a", 1), ("a", 2)]

    def test_distinct_with_nulls(self):
        table = make_table({"g": [None, "a", None], "v": [1, 1, 1]})
        result = collect(Distinct(TableScan(table, columns=["g"])))
        # Single-column path: values first, NULL last.
        assert result.column("g").to_pylist() == ["a", None]

    def test_distinct_empty(self):
        table = make_table({"g": [], "v": []})
        result = collect(Distinct(TableScan(table)))
        assert result.row_count == 0

    @given(st.lists(st.one_of(st.none(), st.integers(0, 10)), max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_distinct_matches_set_semantics(self, values):
        table = make_table({"g": ["k"] * len(values), "v": values})
        result = collect(Distinct(TableScan(table, columns=["v"], batch_size=9)))
        got = result.column("v").to_pylist()
        assert len(got) == len(set(values))
        assert set(map(str, got)) == set(map(str, set(values)))
