"""Unit and property tests for Sort and MergeUnion."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.exec.operators.merge_union import MergeUnion, merge_permutation
from repro.exec.operators.scan import TableScan
from repro.exec.operators.sort import Sort, SortKey
from repro.exec.result import collect
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def int_table(values, name="t", partition_count=1):
    return Table.from_pydict(
        name,
        Schema([Field("v", DataType.INT64), Field("tag", DataType.INT64)]),
        {"v": values, "tag": list(range(len(values)))},
        partition_count=partition_count,
    )


class TestSort:
    def test_ascending_with_nulls_last(self):
        table = int_table([3, None, 1, 2])
        result = collect(Sort(TableScan(table), [SortKey("v")]))
        assert result.column("v").to_pylist() == [1, 2, 3, None]

    def test_descending_nulls_first(self):
        table = int_table([3, None, 1, 2])
        result = collect(Sort(TableScan(table), [SortKey("v", ascending=False)]))
        assert result.column("v").to_pylist() == [None, 3, 2, 1]

    def test_stability_on_ties(self):
        table = int_table([2, 1, 2, 1])
        result = collect(Sort(TableScan(table), [SortKey("v")]))
        # Equal keys keep input order (tags 1, 3 then 0, 2).
        assert result.column("tag").to_pylist() == [1, 3, 0, 2]

    def test_descending_stability(self):
        table = int_table([2, 1, 2, 1])
        result = collect(
            Sort(TableScan(table), [SortKey("v", ascending=False)])
        )
        assert result.column("tag").to_pylist() == [0, 2, 1, 3]

    def test_multi_key(self):
        table = Table.from_pydict(
            "t",
            Schema([Field("a", DataType.INT64), Field("b", DataType.INT64)]),
            {"a": [1, 2, 1, 2], "b": [9, 8, 7, 6]},
        )
        result = collect(
            Sort(TableScan(table), [SortKey("a"), SortKey("b", ascending=False)])
        )
        assert result.to_pylist() == [(1, 9), (1, 7), (2, 8), (2, 6)]

    def test_strings(self):
        table = Table.from_pydict(
            "t",
            Schema([Field("s", DataType.STRING)]),
            {"s": ["b", None, "a"]},
        )
        result = collect(Sort(TableScan(table), [SortKey("s")]))
        assert result.column("s").to_pylist() == ["a", "b", None]

    def test_empty(self):
        table = int_table([])
        result = collect(Sort(TableScan(table), [SortKey("v")]))
        assert result.row_count == 0

    @given(st.lists(st.one_of(st.none(), st.integers(-100, 100)), max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_matches_python_sorted(self, values):
        table = int_table(values, partition_count=1)
        result = collect(Sort(TableScan(table, batch_size=9), [SortKey("v")]))
        got = result.column("v").to_pylist()
        non_null = sorted(v for v in values if v is not None)
        nulls = [None] * values.count(None)
        assert got == non_null + nulls


class TestMergePermutation:
    def test_basic_interleave(self):
        left = np.array([1.0, 3.0, 5.0])
        right = np.array([2.0, 3.0])
        left_pos, right_pos = merge_permutation(left, right)
        merged = np.empty(5)
        merged[left_pos] = left
        merged[right_pos] = right
        assert merged.tolist() == [1.0, 2.0, 3.0, 3.0, 5.0]

    def test_left_wins_ties(self):
        left = np.array([2.0])
        right = np.array([2.0])
        left_pos, right_pos = merge_permutation(left, right)
        assert left_pos.tolist() == [0]
        assert right_pos.tolist() == [1]

    def test_empty_sides(self):
        left_pos, right_pos = merge_permutation(np.array([]), np.array([1.0]))
        assert left_pos.tolist() == []
        assert right_pos.tolist() == [0]


class TestMergeUnion:
    def run_merge(self, left_values, right_values, ascending=True):
        left = int_table(left_values, name="l")
        right = int_table(right_values, name="r")
        key = [SortKey("v", ascending)]
        return collect(
            MergeUnion(
                Sort(TableScan(left), key),
                Sort(TableScan(right), key),
                key,
            )
        ).column("v").to_pylist()

    def test_merges_sorted_streams(self):
        assert self.run_merge([1, 5, 9], [2, 5, 10]) == [1, 2, 5, 5, 9, 10]

    def test_descending(self):
        assert self.run_merge([9, 5, 1], [10, 2], ascending=False) == [
            10,
            9,
            5,
            2,
            1,
        ]

    def test_one_side_empty(self):
        assert self.run_merge([], [3, 1]) == [1, 3]
        assert self.run_merge([3, 1], []) == [1, 3]
        assert self.run_merge([], []) == []

    def test_nulls_sort_last(self):
        got = self.run_merge([1, None], [2])
        assert got == [1, 2, None]

    @given(
        st.lists(st.integers(-50, 50), max_size=60),
        st.lists(st.integers(-50, 50), max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_sorted_concat(self, left_values, right_values):
        got = self.run_merge(left_values, right_values)
        assert got == sorted(left_values + right_values)

    def test_multi_key_object_path(self):
        schema = Schema([Field("s", DataType.STRING), Field("v", DataType.INT64)])
        left = Table.from_pydict("l", schema, {"s": ["a", "c"], "v": [1, 2]})
        right = Table.from_pydict("r", schema, {"s": ["b"], "v": [3]})
        keys = [SortKey("s"), SortKey("v")]
        result = collect(
            MergeUnion(TableScan(left), TableScan(right), keys)
        )
        assert result.column("s").to_pylist() == ["a", "b", "c"]
